//! Transpose a Matrix Market file on the simulated vector processor.
//!
//! Reads a `.mtx` coordinate file (the format of the collection the
//! paper's D-SAB suite is drawn from), transposes it with both kernels,
//! prints the cycle comparison, and writes the transposed matrix next to
//! the input. Without an argument, a demo matrix is generated and used.
//!
//! ```sh
//! cargo run --release --example mtx_transpose -- path/to/matrix.mtx
//! cargo run --release --example mtx_transpose            # demo matrix
//! ```

use hism_stm::hism::{build, HismImage};
use hism_stm::sparse::{gen, mm, Coo, Csr, MatrixMetrics};
use hism_stm::stm::kernels::{transpose_crs, transpose_hism};
use hism_stm::stm::StmConfig;
use hism_stm::vpsim::VpConfig;
use std::path::PathBuf;

fn load_or_demo() -> (Coo, PathBuf) {
    if let Some(path) = std::env::args().nth(1) {
        let path = PathBuf::from(path);
        let file = std::fs::File::open(&path)
            .unwrap_or_else(|e| panic!("cannot open {}: {e}", path.display()));
        let coo = mm::read_coo(std::io::BufReader::new(file))
            .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
        (coo, path)
    } else {
        println!("no input given — generating a demo matrix (use: ... -- file.mtx)\n");
        let coo = gen::blocks::block_band(1024, 16, 1, 0.8, 99);
        let path = std::env::temp_dir().join("stm_demo.mtx");
        let mut f = std::fs::File::create(&path).expect("write demo matrix");
        mm::write_coo(&mut f, &coo).expect("serialize demo matrix");
        (coo, path)
    }
}

fn main() {
    let (coo, path) = load_or_demo();
    let m = MatrixMetrics::compute(&coo);
    println!(
        "{}: {}x{}, nnz {}, locality {:.2}, anz {:.2}",
        path.display(),
        coo.rows(),
        coo.cols(),
        m.nnz,
        m.locality,
        m.avg_nnz_per_row
    );

    let vp = VpConfig::paper();
    let h = build::from_coo(&coo, 64).expect("matrix fits HiSM (dims < 64^q)");
    let image = HismImage::encode(&h);
    let (out, hism_report) =
        transpose_hism(&vp, StmConfig::default(), &image).expect("valid image");
    let transposed = build::to_coo(&out.decode().expect("valid output image"));
    assert_eq!(transposed, coo.transpose_canonical());

    let (_, crs_report) = transpose_crs(&vp, &Csr::from_coo(&coo)).expect("valid CSR");
    println!(
        "HiSM+STM: {} cycles ({:.2}/nnz)   CRS: {} cycles ({:.2}/nnz)   speedup {:.1}x",
        hism_report.cycles,
        hism_report.cycles_per_nnz(),
        crs_report.cycles,
        crs_report.cycles_per_nnz(),
        crs_report.cycles as f64 / hism_report.cycles as f64
    );

    let out_path = path.with_extension("transposed.mtx");
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    mm::write_coo(&mut f, &transposed).expect("write transposed matrix");
    println!("wrote {}", out_path.display());
}
