//! Quickstart: build a sparse matrix, store it hierarchically, and
//! transpose it on the simulated vector processor — once through the STM
//! functional unit (the paper's mechanism) and once through the
//! vectorized CRS baseline — then compare cycle counts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hism_stm::hism::{build, HismImage};
use hism_stm::sparse::{gen, Csr, MatrixMetrics};
use hism_stm::stm::kernels::{transpose_crs, transpose_hism};
use hism_stm::stm::StmConfig;
use hism_stm::vpsim::VpConfig;

fn main() {
    // A 512x512 matrix with scattered dense 32x32 blocks — the kind of
    // "high locality" structure the STM is designed for.
    let coo = gen::blocks::block_dense(512, 32, 24, 0.85, 42);
    let metrics = MatrixMetrics::compute(&coo);
    println!(
        "matrix: 512x512, nnz = {}, locality = {:.2}, avg nnz/row = {:.2}\n",
        metrics.nnz, metrics.locality, metrics.avg_nnz_per_row
    );

    // The machine of the paper's evaluation: section size 64, 4 lanes,
    // 20-cycle memory startup, chaining; STM with B = 4, L = 4.
    let vp = VpConfig::paper();
    let stm = StmConfig::default();

    // --- HiSM + STM ----------------------------------------------------
    let h = build::from_coo(&coo, stm.s).expect("matrix fits HiSM");
    let image = HismImage::encode(&h);
    let (out, hism_report) = transpose_hism(&vp, stm, &image).expect("valid image");

    // The transposition is functional: decode the simulated memory and
    // check it against the host-side oracle.
    let decoded = build::to_coo(&out.decode().expect("valid output image"));
    assert_eq!(
        decoded,
        coo.transpose_canonical(),
        "simulated transpose must be exact"
    );
    println!(
        "HiSM + STM : {:>9} cycles  ({:.2} cycles per non-zero, {} STM block sessions)",
        hism_report.cycles,
        hism_report.cycles_per_nnz(),
        hism_report.stm.unwrap().sessions
    );

    // --- CRS baseline ----------------------------------------------------
    let csr = Csr::from_coo(&coo);
    let (out_csr, crs_report) = transpose_crs(&vp, &csr).expect("valid CSR");
    assert_eq!(out_csr, csr.transpose_pissanetsky());
    println!(
        "CRS        : {:>9} cycles  ({:.2} cycles per non-zero)",
        crs_report.cycles,
        crs_report.cycles_per_nnz()
    );
    for p in &crs_report.phases {
        println!("             {:>9} cycles in {}", p.cycles, p.name);
    }

    println!(
        "\nspeedup: {:.1}x  (the paper reports 1.8x - 32.0x across its suite)",
        crs_report.cycles as f64 / hism_report.cycles as f64
    );
}
