//! PageRank over a synthetic web graph — a workload where sparse
//! transposition is on the critical path: the crawl produces the
//! *out-link* matrix `A`, but the power iteration needs *in-links*, i.e.
//! `Aᵀ`. The adjacency matrix is stored in HiSM, transposed on the
//! simulated vector processor through the STM, and then used for the
//! ranking iteration (software HiSM SpMV).
//!
//! ```sh
//! cargo run --release --example pagerank
//! ```

use hism_stm::hism::{build, spmv, HismImage};
use hism_stm::sparse::gen::rmat::{rmat, RmatProbs};
use hism_stm::sparse::Csr;
use hism_stm::stm::kernels::{transpose_crs, transpose_hism};
use hism_stm::stm::StmConfig;
use hism_stm::vpsim::VpConfig;

const DAMPING: f32 = 0.85;

fn main() {
    // A scale-12 R-MAT graph: 4096 pages, ~40k links, power-law degrees.
    let n = 4096usize;
    let mut adj = rmat(12, 40_000, RmatProbs::default(), 7);
    // Links are structural: weight 1.
    let links: Vec<(usize, usize, f32)> = adj.iter().map(|&(s, d, _)| (s, d, 1.0)).collect();
    adj = hism_stm::sparse::Coo::from_triplets(n, n, links).unwrap();
    adj.canonicalize();
    println!("web graph: {} pages, {} links", n, adj.nnz());

    // Out-degrees (for the column-stochastic normalization).
    let mut outdeg = vec![0f32; n];
    for &(src, _, _) in adj.iter() {
        outdeg[src] += 1.0;
    }

    // --- Transpose the crawl matrix on the simulated machine -----------
    let vp = VpConfig::paper();
    let h = build::from_coo(&adj, 64).expect("graph fits HiSM");
    let image = HismImage::encode(&h);
    let (out, report) = transpose_hism(&vp, StmConfig::default(), &image).expect("valid image");
    let at = out.decode().expect("valid output image"); // Aᵀ: rows are in-links
    assert_eq!(build::to_coo(&at), adj.transpose_canonical());

    let (_, crs_report) = transpose_crs(&vp, &Csr::from_coo(&adj)).expect("valid CSR");
    println!(
        "transpose on the VP: HiSM+STM {} cycles vs CRS {} cycles ({:.1}x)\n",
        report.cycles,
        crs_report.cycles,
        crs_report.cycles as f64 / report.cycles as f64
    );

    // --- Power iteration: x <- d * Aᵀ (x ./ outdeg) + (1-d)/n ------------
    let mut x = vec![1.0 / n as f32; n];
    let mut iterations = 0;
    loop {
        let scaled: Vec<f32> = x
            .iter()
            .zip(&outdeg)
            .map(|(&xi, &d)| if d > 0.0 { xi / d } else { 0.0 })
            .collect();
        let mut next = spmv::spmv(&at, &scaled).expect("shape matches");
        // Dangling mass + damping.
        let dangling: f32 = x
            .iter()
            .zip(&outdeg)
            .filter(|(_, &d)| d == 0.0)
            .map(|(&xi, _)| xi)
            .sum();
        for v in &mut next {
            *v = DAMPING * (*v + dangling / n as f32) + (1.0 - DAMPING) / n as f32;
        }
        let delta: f32 = next.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
        x = next;
        iterations += 1;
        if delta < 1e-7 || iterations >= 200 {
            break;
        }
    }
    println!("power iteration converged in {iterations} iterations");

    let mut ranked: Vec<(usize, f32)> = x.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top pages by rank:");
    for (page, score) in ranked.iter().take(5) {
        println!("  page {page:>5}  rank {score:.6}");
    }
    let total: f32 = x.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-3,
        "rank mass must be conserved, got {total}"
    );
}
