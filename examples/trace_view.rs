//! Pipeline-level view of one block transposition: enables the engine's
//! instruction trace, runs the STM write/read phases by hand (the
//! Fig. 7 instruction sequence), and prints every instruction with its
//! issue/completion cycles — showing the chaining, the fill-before-read
//! barrier, and the 3-stage pipelines at work.
//!
//! ```sh
//! cargo run --release --example trace_view
//! ```

use hism_stm::hism::{build, HismImage};
use hism_stm::sparse::Coo;
use hism_stm::stm::coproc::StmCoprocessor;
use hism_stm::stm::StmConfig;
use hism_stm::vpsim::{Engine, Fu, Memory, VpConfig};

fn main() {
    // One 8x8 block with a handful of entries (like the paper's Fig. 2).
    let coo = Coo::from_triplets(
        8,
        8,
        vec![
            (0, 1, 1.0),
            (0, 5, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 7, 5.0),
            (5, 5, 6.0),
            (7, 0, 7.0),
        ],
    )
    .unwrap();
    let h = build::from_coo(&coo, 8).unwrap();
    let image = HismImage::encode(&h);

    let mut vp = VpConfig::paper();
    vp.section_size = 8;
    let mut mem = Memory::new();
    mem.write_block(0, &image.words);
    let mut e = Engine::new(vp, mem);
    e.enable_trace(64);
    let mut stm = StmCoprocessor::new(StmConfig { s: 8, b: 4, l: 4 });

    // The Fig. 7 sequence for one block (single section: len <= s).
    let len = image.root.len as usize;
    stm.icm(&mut e); //                      icm
    let (vals, pos) = e.v_ld_pair(0, len); //  v_ldb  vr1, vr2
    stm.v_stcr(&mut e, &vals, &pos).unwrap(); // v_stcr vr1, vr2
    let (vals_t, pos_t) = stm.v_ldcc(&mut e, len); // v_ldcc vr1, vr2
    e.v_st_pair(0, &vals_t, &pos_t); //        v_stb  vr1, vr2

    println!("transposing one 8x8 block ({len} entries) with B=4, L=4:\n");
    println!("{}", e.trace().expect("tracing enabled").render());
    println!("total: {} cycles", e.cycles());
    println!(
        "memory port busy {} cycles, STM busy {} cycles",
        e.fu_busy().mem,
        e.fu_busy().stm
    );
    println!(
        "memory-port utilization: {:.0}%",
        100.0 * e.fu_busy().utilization(Fu::Mem, e.cycles())
    );

    // Show the result is really the transpose.
    let words = e.mem().read_block(0, image.words.len());
    let out = HismImage {
        words,
        root: image.root,
        pointer_sites: vec![],
        integrity: None,
    };
    let decoded = out.decode().expect("valid output image");
    println!("\ntransposed entries (row, col, value):");
    for &(r, c, v) in hism_stm::hism::build::to_coo(&decoded).entries() {
        println!("  ({r}, {c})  {v}");
    }
}
