//! Prints the synthetic D-SAB experiment sets — the 30 matrices the
//! evaluation runs on — with their metrics and the HiSM-vs-CRS storage
//! comparison (Section II's 8-bit-position argument and Section IV-A's
//! "upper levels are 2-5% of storage" claim).
//!
//! ```sh
//! cargo run --release --example suite_report            # full suite
//! cargo run --release --example suite_report -- --quick # smoke suite
//! ```

use hism_stm::dsab::{experiment_sets, full_catalogue, quick_catalogue};
use hism_stm::hism::{build, StorageStats};
use hism_stm::sparse::{viz, Csr};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (catalogue, per_set) = if quick {
        (quick_catalogue(), 6)
    } else {
        (full_catalogue(), 10)
    };
    println!(
        "catalogue: {} matrices, selecting {} per criterion\n",
        catalogue.len(),
        per_set
    );
    let sets = experiment_sets(&catalogue, per_set);

    for (title, set) in [
        ("sorted by locality (Fig. 11 set)", &sets.by_locality),
        ("sorted by avg nnz/row (Fig. 12 set)", &sets.by_anz),
        ("sorted by size (Fig. 13 set)", &sets.by_size),
    ] {
        println!("== {title} ==");
        println!(
            "{:<22} {:>9} {:>9} {:>8} {:>11} {:>11} {:>7}",
            "matrix", "nnz", "locality", "anz", "hism_bits", "crs_bits", "upper%"
        );
        for e in set {
            let h = build::from_coo(&e.coo, 64).expect("suite matrix");
            let st = StorageStats::compute(&h);
            let crs_bits = Csr::from_coo(&e.coo).storage_bits();
            println!(
                "{:<22} {:>9} {:>9.3} {:>8.2} {:>11} {:>11} {:>6.1}%",
                e.name,
                e.metrics.nnz,
                e.metrics.locality,
                e.metrics.avg_nnz_per_row,
                st.total_bits(),
                crs_bits,
                100.0 * st.upper_fraction()
            );
        }
        println!();
    }

    // Spy plots of the locality extremes: the patterns the STM sees.
    let lo = &sets.by_locality.first().expect("non-empty set");
    let hi = &sets.by_locality.last().expect("non-empty set");
    println!(
        "lowest locality: {} ({:.3})
{}",
        lo.name,
        lo.metrics.locality,
        viz::spy(&lo.coo, 48, 16)
    );
    println!(
        "highest locality: {} ({:.3})
{}",
        hi.name,
        hi.metrics.locality,
        viz::spy(&hi.coo, 48, 16)
    );
}
