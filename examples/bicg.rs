//! BiConjugate Gradient (BiCG) on a non-symmetric PDE operator — the
//! classic solver whose inner loop needs *both* `A·p` and `Aᵀ·p̃`
//! products. The shadow system's `Aᵀ` is obtained by transposing the
//! HiSM-stored operator on the simulated vector processor (the STM path),
//! exactly the scenario the paper's introduction motivates.
//!
//! The operator is a 2-D advection–diffusion discretization (5-point
//! stencil with upwinded convection), which is non-symmetric, so plain CG
//! does not apply.
//!
//! ```sh
//! cargo run --release --example bicg
//! ```

use hism_stm::hism::{build, spmv, HismImage, HismMatrix};
use hism_stm::sparse::Coo;
use hism_stm::stm::kernels::transpose_hism;
use hism_stm::stm::StmConfig;
use hism_stm::vpsim::VpConfig;

/// Builds the advection–diffusion operator on an `k x k` grid:
/// `-∆u + (vx, vy)·∇u` with first-order upwinding.
fn advection_diffusion(k: usize, vx: f32, vy: f32) -> Coo {
    let n = k * k;
    let idx = |x: usize, y: usize| y * k + x;
    let mut coo = Coo::new(n, n);
    // Upwind splits: convection strengthens the upstream coupling.
    let (ax_m, ax_p) = (1.0 + vx.max(0.0), 1.0 + (-vx).max(0.0));
    let (ay_m, ay_p) = (1.0 + vy.max(0.0), 1.0 + (-vy).max(0.0));
    for y in 0..k {
        for x in 0..k {
            let i = idx(x, y);
            coo.push(i, i, ax_m + ax_p + ay_m + ay_p);
            if x > 0 {
                coo.push(i, idx(x - 1, y), -ax_m);
            }
            if x + 1 < k {
                coo.push(i, idx(x + 1, y), -ax_p);
            }
            if y > 0 {
                coo.push(i, idx(x, y - 1), -ay_m);
            }
            if y + 1 < k {
                coo.push(i, idx(x, y + 1), -ay_p);
            }
        }
    }
    coo
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Unpreconditioned BiCG: solves `A x = b` using products with `A` and
/// `Aᵀ`. Returns `(solution, iterations, relative residual)`.
fn bicg(
    a: &HismMatrix,
    at: &HismMatrix,
    b: &[f32],
    tol: f32,
    max_iter: usize,
) -> (Vec<f32>, usize, f32) {
    let n = b.len();
    let mut x = vec![0.0f32; n];
    let mut r = b.to_vec();
    let mut rt = b.to_vec();
    let mut p = r.clone();
    let mut pt = rt.clone();
    let mut rho = dot(&rt, &r);
    let b_norm = norm(b).max(f32::MIN_POSITIVE);
    for it in 1..=max_iter {
        let ap = spmv::spmv(a, &p).expect("shape");
        let atpt = spmv::spmv(at, &pt).expect("shape");
        let alpha = rho / dot(&pt, &ap);
        axpy(&mut x, alpha, &p);
        axpy(&mut r, -alpha, &ap);
        axpy(&mut rt, -alpha, &atpt);
        let rel = norm(&r) / b_norm;
        if rel < tol {
            return (x, it, rel);
        }
        let rho_next = dot(&rt, &r);
        let beta = rho_next / rho;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
            pt[i] = rt[i] + beta * pt[i];
        }
        rho = rho_next;
    }
    let rel = norm(&r) / b_norm;
    (x, max_iter, rel)
}

fn main() {
    let k = 48usize;
    let coo = advection_diffusion(k, 0.8, -0.4);
    println!(
        "advection-diffusion operator: {}x{} grid, {} unknowns, {} non-zeros (non-symmetric)",
        k,
        k,
        k * k,
        coo.nnz()
    );

    // Store A hierarchically and obtain Aᵀ through the simulated STM.
    let a = build::from_coo(&coo, 64).expect("operator fits HiSM");
    let image = HismImage::encode(&a);
    let (out, report) =
        transpose_hism(&VpConfig::paper(), StmConfig::default(), &image).expect("valid image");
    let at = out.decode().expect("valid output image");
    assert_eq!(build::to_coo(&at), coo.transpose_canonical());
    println!(
        "Aᵀ computed on the simulated VP in {} cycles ({:.2} cycles/nnz)\n",
        report.cycles,
        report.cycles_per_nnz()
    );

    // Solve A x = b for a manufactured solution.
    let n = k * k;
    let x_true: Vec<f32> = (0..n).map(|i| ((i % 17) as f32 - 8.0) / 8.0).collect();
    let b = spmv::spmv(&a, &x_true).expect("shape");
    let (x, iters, rel) = bicg(&a, &at, &b, 1e-5, 2000);
    println!("BiCG converged in {iters} iterations, relative residual {rel:.2e}");

    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max |x - x_true| = {err:.3e}");
    assert!(rel < 1e-4, "solver failed to converge");
}
