//! The unified [`SparseFormat`] trait — one contract over every storage
//! format in this workspace — and the shared construction helpers the
//! per-format `from_coo` paths are built on.
//!
//! Every format is a different *encoding* of the same mathematical
//! object, so the trait is phrased around the canonical COO
//! interchange form: a format must convert to and from canonical COO,
//! and everything else (transpose, SpMV, the canonical digest) has a
//! correct default through that round-trip. Formats override the
//! defaults only where they own a structurally better algorithm
//! (CSR's Pissanetsky transpose, CSC's zero-cost reinterpretation,
//! SELL-C-σ's chunked SpMV).
//!
//! The shared helpers collapse what used to be per-struct copies:
//!
//! * [`compress_sorted`] — the count/prefix-sum/fill kernel behind both
//!   `Csr::from_coo` (outer = row) and `Csc::from_coo` (outer = column);
//! * [`length_sorted_perm`] — the windowed descending row-length sort.
//!   JD is the `window = rows` (global) case; SELL-C-σ is the
//!   `window = σ` case;
//! * [`row_lengths`] / [`row_buckets`] — per-row non-zero counts and
//!   `(col, value)` lists of a canonical COO matrix;
//! * [`canonical_digest`] — the byte digest every format's
//!   [`SparseFormat::digest`] reduces to, making digests comparable
//!   *across* formats.

use crate::{Coo, FormatError, Shape, Value};

/// The common contract of every sparse (and dense) matrix format.
///
/// Laws, property-tested in `tests/format_trait.rs` for every impl:
///
/// * `from_coo(a).to_coo()` equals `a` canonicalized (round-trip);
/// * `transpose(transpose(a))` equals `a` (involution, up to
///   canonical COO);
/// * `digest` of two formats holding the same matrix are equal.
pub trait SparseFormat: Sized {
    /// Short lowercase format name (`"coo"`, `"csr"`, …) — the same
    /// token the bench harness accepts for `--format`.
    const NAME: &'static str;

    /// Matrix shape `(rows, cols)`.
    fn shape(&self) -> Shape;

    /// Number of stored non-zeros (excluding any padding).
    fn nnz(&self) -> usize;

    /// Checks the format's structural invariants.
    fn validate(&self) -> Result<(), FormatError>;

    /// Builds the format from a COO matrix (canonicalizing first).
    fn from_coo(coo: &Coo) -> Result<Self, FormatError>;

    /// Converts to canonical COO (sorted row-major, duplicates summed,
    /// no explicit zeros).
    fn to_coo(&self) -> Coo;

    /// Returns the transpose, in the same format. Default: through
    /// canonical COO.
    fn transpose(&self) -> Result<Self, FormatError> {
        let mut t = SparseFormat::to_coo(self).transpose();
        t.canonicalize();
        Self::from_coo(&t)
    }

    /// Multiplies `y = A * x`. Default: through canonical COO.
    fn spmv(&self, x: &[Value]) -> Result<Vec<Value>, FormatError> {
        SparseFormat::to_coo(self).spmv(x)
    }

    /// Canonical byte digest of the *matrix* (not the encoding): equal
    /// across formats holding the same matrix. Default: FNV-1a over
    /// the canonical COO bytes ([`canonical_digest`]).
    fn digest(&self) -> u64 {
        canonical_digest(&SparseFormat::to_coo(self))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest of a matrix's canonical COO form: shape, then every
/// `(row, col, value-bits)` triplet in canonical order. Value *bits*
/// (not value equality), so `-0.0` and `+0.0` digest differently —
/// the same strictness the kernel-output digests use.
pub fn canonical_digest(coo: &Coo) -> u64 {
    let canon;
    let c = if coo.is_canonical() {
        coo
    } else {
        let mut m = coo.clone();
        m.canonicalize();
        canon = m;
        &canon
    };
    let mut h = FNV_OFFSET;
    h = fnv1a(h, &(c.rows() as u64).to_le_bytes());
    h = fnv1a(h, &(c.cols() as u64).to_le_bytes());
    for &(r, col, v) in c.iter() {
        h = fnv1a(h, &(r as u64).to_le_bytes());
        h = fnv1a(h, &(col as u64).to_le_bytes());
        h = fnv1a(h, &v.to_bits().to_le_bytes());
    }
    h
}

/// The shared compressed-format construction kernel: count outer
/// occurrences, exclusive-prefix-sum into a pointer array, and fill the
/// index/value arrays in input order.
///
/// `entries` must be sorted by outer index (row-major for CSR, where
/// outer = row and inner = column; column-major for CSC, where outer =
/// column and inner = row); the canonical-COO producers guarantee this.
/// Returns `(ptr, idx, values)` with `ptr.len() == n_outer + 1`.
pub fn compress_sorted(
    n_outer: usize,
    entries: impl Iterator<Item = (usize, usize, Value)>,
) -> (Vec<usize>, Vec<usize>, Vec<Value>) {
    let (lo, _) = entries.size_hint();
    let mut ptr = vec![0usize; n_outer + 1];
    let mut idx = Vec::with_capacity(lo);
    let mut vals = Vec::with_capacity(lo);
    for (o, i, v) in entries {
        ptr[o + 1] += 1;
        idx.push(i);
        vals.push(v);
    }
    for o in 0..n_outer {
        ptr[o + 1] += ptr[o];
    }
    (ptr, idx, vals)
}

/// Per-row non-zero counts of a canonical COO matrix.
pub fn row_lengths(coo: &Coo) -> Vec<usize> {
    let mut lens = vec![0usize; coo.rows()];
    for &(r, _, _) in coo.iter() {
        lens[r] += 1;
    }
    lens
}

/// Per-row `(col, value)` lists of a canonical COO matrix, columns
/// ascending within each row (canonical order preserved).
pub fn row_buckets(coo: &Coo) -> Vec<Vec<(usize, Value)>> {
    let mut rows: Vec<Vec<(usize, Value)>> = vec![Vec::new(); coo.rows()];
    for &(r, c, v) in coo.iter() {
        rows[r].push((c, v));
    }
    rows
}

/// The windowed descending row-length sort shared by JD and SELL-C-σ:
/// within each consecutive window of `window` rows, sort row indices by
/// descending length (stable — ties keep original row order). With
/// `window >= lengths.len()` this is JD's global sort; SELL-C-σ uses
/// `window = σ` to bound how far the permutation moves a row.
///
/// Every row index appears exactly once (empty rows included).
pub fn length_sorted_perm(lengths: &[usize], window: usize) -> Vec<usize> {
    assert!(window > 0, "sort window must be positive");
    let mut perm: Vec<usize> = (0..lengths.len()).collect();
    for chunk in perm.chunks_mut(window) {
        chunk.sort_by_key(|&r| std::cmp::Reverse(lengths[r]));
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn digest_is_encoding_independent() {
        let coo = gen::random::uniform(60, 40, 300, 7);
        let mut shuffled = Coo::new(60, 40);
        let mut entries = coo.entries().to_vec();
        entries.reverse();
        for (r, c, v) in entries {
            shuffled.push(r, c, v);
        }
        assert_eq!(canonical_digest(&coo), canonical_digest(&shuffled));
    }

    #[test]
    fn digest_distinguishes_signed_zero() {
        let a = Coo::from_triplets(1, 1, vec![(0, 0, 0.5)]).unwrap();
        let b = Coo::from_triplets(1, 1, vec![(0, 0, -0.5)]).unwrap();
        assert_ne!(canonical_digest(&a), canonical_digest(&b));
    }

    #[test]
    fn digest_depends_on_shape() {
        let a = Coo::new(2, 3);
        let b = Coo::new(3, 2);
        assert_ne!(canonical_digest(&a), canonical_digest(&b));
    }

    #[test]
    fn compress_sorted_matches_hand_result() {
        let entries = vec![(0usize, 0usize, 1.0f32), (0, 3, 2.0), (2, 1, 3.0)];
        let (ptr, idx, vals) = compress_sorted(3, entries.into_iter());
        assert_eq!(ptr, vec![0, 2, 2, 3]);
        assert_eq!(idx, vec![0, 3, 1]);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn length_sorted_perm_global_is_stable_descending() {
        let lens = [1usize, 3, 1, 2];
        assert_eq!(length_sorted_perm(&lens, 4), vec![1, 3, 0, 2]);
        // Larger windows than the input behave identically.
        assert_eq!(length_sorted_perm(&lens, 100), vec![1, 3, 0, 2]);
    }

    #[test]
    fn length_sorted_perm_windows_do_not_cross() {
        let lens = [1usize, 5, 2, 9];
        // Window 2: each pair sorts independently.
        assert_eq!(length_sorted_perm(&lens, 2), vec![1, 0, 3, 2]);
    }

    #[test]
    fn row_helpers_cover_empty_rows() {
        let coo = Coo::from_triplets(4, 4, vec![(1, 0, 1.0), (1, 2, 2.0), (3, 3, 3.0)]).unwrap();
        assert_eq!(row_lengths(&coo), vec![0, 2, 0, 1]);
        let buckets = row_buckets(&coo);
        assert_eq!(buckets[1], vec![(0, 1.0), (2, 2.0)]);
        assert!(buckets[0].is_empty());
    }
}
