//! Dense matrices, used as exhaustive oracles in small tests.

use crate::{Coo, FormatError, Value};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<Value>,
}

impl Dense {
    /// Creates a zero-filled `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<Value>) -> Result<Self, FormatError> {
        if data.len() != rows * cols {
            return Err(FormatError::ShapeMismatch {
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(Dense { rows, cols, data })
    }

    /// Builds a dense matrix from a COO matrix (duplicates summed).
    pub fn from_coo(coo: &Coo) -> Self {
        let mut d = Dense::zeros(coo.rows(), coo.cols());
        for &(r, c, v) in coo.iter() {
            d.data[r * d.cols + c] += v;
        }
        d
    }

    /// Converts to canonical COO, dropping zeros.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.data[r * self.cols + c];
                if v != 0.0 {
                    coo.push(r, c, v);
                }
            }
        }
        coo
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> Value {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, r: usize, c: usize, v: Value) {
        self.data[r * self.cols + c] = v;
    }

    /// The textbook dense transpose (strided copy) — the trivial case the
    /// paper's Section II contrasts sparse transposition against.
    pub fn transpose(&self) -> Dense {
        let mut t = Dense::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Count of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }
}

impl crate::SparseFormat for Dense {
    const NAME: &'static str = "dense";

    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn nnz(&self) -> usize {
        Dense::nnz(self)
    }

    fn validate(&self) -> Result<(), FormatError> {
        if self.data.len() != self.rows * self.cols {
            return Err(FormatError::ShapeMismatch {
                expected: (self.rows, self.cols),
                found: (self.data.len(), 1),
            });
        }
        Ok(())
    }

    fn from_coo(coo: &Coo) -> Result<Self, FormatError> {
        Ok(Dense::from_coo(coo))
    }

    fn to_coo(&self) -> Coo {
        Dense::to_coo(self)
    }

    fn transpose(&self) -> Result<Self, FormatError> {
        Ok(Dense::transpose(self))
    }

    fn spmv(&self, x: &[Value]) -> Result<Vec<Value>, FormatError> {
        if x.len() != self.cols {
            return Err(FormatError::ShapeMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *yr = row.iter().zip(x).map(|(d, xc)| d * xc).sum();
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_small() {
        let m = Dense::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.get(2, 0), 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn coo_round_trip() {
        let coo = Coo::from_triplets(2, 2, vec![(0, 1, 2.5), (1, 0, -1.0)]).unwrap();
        let d = Dense::from_coo(&coo);
        assert_eq!(d.nnz(), 2);
        let mut back = d.to_coo();
        back.canonicalize();
        let mut orig = coo;
        orig.canonicalize();
        assert_eq!(back, orig);
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(Dense::from_row_major(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn dense_transpose_agrees_with_coo_transpose() {
        let coo = Coo::from_triplets(3, 2, vec![(0, 0, 1.0), (2, 1, 7.0)]).unwrap();
        let via_dense = Dense::from_coo(&coo).transpose().to_coo();
        assert_eq!(via_dense, coo.transpose_canonical());
    }
}
