//! Compressed Row Storage — the paper's "CRS" baseline format.
//!
//! The paper (Fig. 8) names the three arrays `AN` (array of non-zeros),
//! `JA` (column positions) and `IA` (row pointers); here they are `values`,
//! `col_idx` and `row_ptr`. This module also hosts the *host-side* reference
//! implementation of Pissanetsky's transposition algorithm (paper Fig. 9) —
//! the same algorithm the simulated vectorized baseline executes — so the
//! simulator kernels can be validated against it.

use crate::{Coo, FormatError, Value};

/// A sparse matrix in Compressed Row Storage format.
///
/// Invariants (checked by [`Csr::validate`]):
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`, monotone non-decreasing,
///   `row_ptr[rows] == col_idx.len() == values.len()`;
/// * within each row, column indices are strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Value>,
}

impl Csr {
    /// Builds a CSR matrix from raw parts, validating all invariants.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        let m = Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    /// Builds a CSR matrix from raw parts *without* validating the
    /// invariants. The resulting matrix may violate every documented
    /// invariant; operations on it can return garbage (but must not
    /// panic or run unbounded).
    ///
    /// Exists for fault-injection and robustness testing — the only way
    /// to hand a simulated kernel deliberately corrupted CRS arrays. Use
    /// [`Csr::from_parts`] everywhere else.
    pub fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<Value>,
    ) -> Self {
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from a COO matrix. Duplicates are summed and the
    /// columns within each row are sorted (i.e. the input is canonicalized
    /// first). The pointer/index/value arrays are produced by the shared
    /// [`crate::format::compress_sorted`] helper (outer = row).
    pub fn from_coo(coo: &Coo) -> Self {
        let mut c = coo.clone();
        c.canonicalize();
        let (rows, cols) = c.shape();
        let (row_ptr, col_idx, values) = crate::format::compress_sorted(rows, c.iter().copied());
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Converts to COO (canonical order).
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                coo.push(r, self.col_idx[k], self.values[k]);
            }
        }
        coo
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (`IA` in the paper, 0-based here).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (`JA` in the paper).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array (`AN` in the paper).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The `(col_idx, values)` slice pair of one row.
    pub fn row(&self, r: usize) -> (&[usize], &[Value]) {
        let (a, b) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[a..b], &self.values[a..b])
    }

    /// Value at `(row, col)`, or `None` when the position is structurally
    /// zero. Binary-searches the row.
    pub fn get(&self, row: usize, col: usize) -> Option<Value> {
        let (cols, vals) = self.row(row);
        cols.binary_search(&col).ok().map(|k| vals[k])
    }

    /// Checks all structural invariants.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err(FormatError::BadPointerArray(format!(
                "row_ptr has length {}, expected {}",
                self.row_ptr.len(),
                self.rows + 1
            )));
        }
        if self.row_ptr.first() != Some(&0) {
            return Err(FormatError::BadPointerArray("row_ptr[0] != 0".into()));
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(FormatError::BadPointerArray("row_ptr not monotone".into()));
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len()
            || self.col_idx.len() != self.values.len()
        {
            return Err(FormatError::BadPointerArray(
                "row_ptr[rows] != col_idx.len() != values.len()".into(),
            ));
        }
        for r in 0..self.rows {
            let (cols, _) = self.row(r);
            for &c in cols {
                if c >= self.cols {
                    return Err(FormatError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        rows: self.rows,
                        cols: self.cols,
                    });
                }
            }
            if cols.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::UnsortedIndices { outer: r });
            }
        }
        Ok(())
    }

    /// Host-side reference of Pissanetsky's CRS transposition algorithm
    /// (paper Fig. 9). This is intentionally a line-by-line transliteration
    /// of the published pseudo-code (with 0-based indices):
    ///
    /// 1. count the non-zeros of each *column* into `IAT`;
    /// 2. exclusive scan-add over `IAT` to obtain the transposed row
    ///    pointers;
    /// 3. scatter pass: walk the rows of `A`, appending each element to the
    ///    (growing) transposed row it belongs to.
    ///
    /// The simulated, vectorized baseline in `stm-core` executes exactly
    /// these three phases and is checked against this function.
    ///
    /// ```
    /// use stm_sparse::{Coo, Csr};
    /// let coo = Coo::from_triplets(2, 3, vec![(0, 2, 5.0), (1, 0, 7.0)]).unwrap();
    /// let t = Csr::from_coo(&coo).transpose_pissanetsky();
    /// assert_eq!(t.shape(), (3, 2));
    /// assert_eq!(t.get(2, 0), Some(5.0));
    /// ```
    pub fn transpose_pissanetsky(&self) -> Csr {
        let nnz = self.nnz();
        // Phase 1: column histogram. iat[j+1] counts non-zeros of column j.
        let mut iat = vec![0usize; self.cols + 1];
        for &j in &self.col_idx {
            iat[j + 1] += 1;
        }
        // Phase 2: scan-add (exclusive prefix sum).
        for j in 0..self.cols {
            iat[j + 1] += iat[j];
        }
        let row_ptr_t = iat.clone();
        // Phase 3: scatter. `iat[j]` is the next free slot of transposed
        // row j and is bumped as elements are placed (paper lines 4-13).
        let mut jat = vec![0usize; nnz];
        let mut ant = vec![0.0; nnz];
        for i in 0..self.rows {
            for jp in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[jp];
                let k = iat[j];
                jat[k] = i;
                ant[k] = self.values[jp];
                iat[j] = k + 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr: row_ptr_t,
            col_idx: jat,
            values: ant,
        }
    }

    /// Multiplies `y = A * x`.
    pub fn spmv(&self, x: &[Value]) -> Result<Vec<Value>, FormatError> {
        if x.len() != self.cols {
            return Err(FormatError::ShapeMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            *yr = acc;
        }
        Ok(y)
    }

    /// Storage cost in bits, per the paper's accounting: a 32-bit word per
    /// value, a 32-bit column index per non-zero, and a 32-bit row pointer
    /// per row (plus one).
    pub fn storage_bits(&self) -> u64 {
        32 * (2 * self.nnz() as u64 + self.row_ptr.len() as u64)
    }

    /// Decomposes into `(rows, cols, row_ptr, col_idx, values)` — the
    /// inverse of [`Csr::from_parts`], used by the zero-cost CSR/CSC
    /// reinterpretations.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<Value>) {
        (
            self.rows,
            self.cols,
            self.row_ptr,
            self.col_idx,
            self.values,
        )
    }
}

impl crate::SparseFormat for Csr {
    const NAME: &'static str = "csr";

    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn nnz(&self) -> usize {
        Csr::nnz(self)
    }

    fn validate(&self) -> Result<(), FormatError> {
        Csr::validate(self)
    }

    fn from_coo(coo: &Coo) -> Result<Self, FormatError> {
        Ok(Csr::from_coo(coo))
    }

    fn to_coo(&self) -> Coo {
        Csr::to_coo(self)
    }

    fn transpose(&self) -> Result<Self, FormatError> {
        Ok(self.transpose_pissanetsky())
    }

    fn spmv(&self, x: &[Value]) -> Result<Vec<Value>, FormatError> {
        Csr::spmv(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> Coo {
        // 4x5 matrix, deliberately irregular.
        Coo::from_triplets(
            4,
            5,
            vec![
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
                (2, 4, 6.0),
                (3, 3, 7.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_coo_builds_expected_arrays() {
        let m = Csr::from_coo(&sample_coo());
        assert_eq!(m.row_ptr(), &[0, 2, 3, 6, 7]);
        assert_eq!(m.col_idx(), &[0, 3, 1, 0, 2, 4, 3]);
        assert_eq!(m.values(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        m.validate().unwrap();
    }

    #[test]
    fn coo_round_trip() {
        let coo = sample_coo();
        let mut back = Csr::from_coo(&coo).to_coo();
        back.sort_row_major();
        let mut orig = coo.clone();
        orig.canonicalize();
        assert_eq!(back, orig);
    }

    #[test]
    fn get_finds_entries_and_zeros() {
        let m = Csr::from_coo(&sample_coo());
        assert_eq!(m.get(2, 2), Some(5.0));
        assert_eq!(m.get(2, 3), None);
    }

    #[test]
    fn transpose_matches_coo_oracle() {
        let coo = sample_coo();
        let t = Csr::from_coo(&coo).transpose_pissanetsky();
        t.validate().unwrap();
        let mut got = t.to_coo();
        got.sort_row_major();
        assert_eq!(got, coo.transpose_canonical());
    }

    #[test]
    fn transpose_shape_swaps() {
        let t = Csr::from_coo(&sample_coo()).transpose_pissanetsky();
        assert_eq!(t.shape(), (5, 4));
    }

    #[test]
    fn double_transpose_is_identity() {
        let m = Csr::from_coo(&sample_coo());
        assert_eq!(m.transpose_pissanetsky().transpose_pissanetsky(), m);
    }

    #[test]
    fn transpose_keeps_rows_sorted() {
        // Pissanetsky's scatter emits each transposed row in increasing
        // source-row order, so the result must validate (sorted columns).
        let coo = sample_coo();
        let t = Csr::from_coo(&coo).transpose_pissanetsky();
        t.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_pointers() {
        let err = Csr::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, FormatError::BadPointerArray(_)));
    }

    #[test]
    fn validate_rejects_unsorted_columns() {
        let err = Csr::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, FormatError::UnsortedIndices { outer: 0 }));
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = sample_coo();
        let m = Csr::from_coo(&coo);
        let x = [1.0, -1.0, 2.0, 0.5, 3.0];
        assert_eq!(m.spmv(&x).unwrap(), coo.spmv(&x).unwrap());
    }

    #[test]
    fn empty_rows_and_cols_transpose() {
        let coo = Coo::from_triplets(3, 3, vec![(1, 1, 9.0)]).unwrap();
        let t = Csr::from_coo(&coo).transpose_pissanetsky();
        assert_eq!(t.row_ptr(), &[0, 0, 1, 1]);
        assert_eq!(t.get(1, 1), Some(9.0));
    }

    #[test]
    fn storage_bits_counts_paper_layout() {
        let m = Csr::from_coo(&sample_coo());
        assert_eq!(m.storage_bits(), 32 * (2 * 7 + 5));
    }
}
