//! Terminal visualization: ASCII "spy" plots of sparsity patterns and
//! simple bar charts — the quick-look tools for a format/reordering
//! library whose whole subject is *where the non-zeros sit*.

use crate::Coo;

/// Density ramp used by [`spy`], lightest to darkest.
const RAMP: [char; 5] = ['·', '░', '▒', '▓', '█'];

/// Renders the sparsity pattern as a `height`-line ASCII plot. Each
/// character cell aggregates a rectangle of the matrix; its glyph encodes
/// the cell's non-zero density relative to the densest cell (' ' = empty).
pub fn spy(coo: &Coo, width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0);
    let (rows, cols) = (coo.rows().max(1), coo.cols().max(1));
    let mut counts = vec![0u32; width * height];
    for &(r, c, _) in coo.iter() {
        let y = r * height / rows;
        let x = c * width / cols;
        counts[y.min(height - 1) * width + x.min(width - 1)] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::with_capacity((width + 3) * (height + 2));
    out.push('┌');
    out.push_str(&"─".repeat(width));
    out.push_str("┐\n");
    for y in 0..height {
        out.push('│');
        for x in 0..width {
            let c = counts[y * width + x];
            if c == 0 {
                out.push(' ');
            } else {
                let idx =
                    ((c as usize * RAMP.len()).div_ceil(max as usize + 1)).min(RAMP.len() - 1);
                out.push(RAMP[idx]);
            }
        }
        out.push_str("│\n");
    }
    out.push('└');
    out.push_str(&"─".repeat(width));
    out.push_str("┘\n");
    out
}

/// Renders a labelled horizontal bar chart (used by the experiment
/// binaries for quick cycle comparisons). Bars scale to `width` columns.
pub fn bar_chart(items: &[(&str, f64)], width: usize) -> String {
    assert!(width > 0);
    let max = items
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = items.iter().map(|&(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for &(label, value) in items {
        let bar = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:>label_w$}  {}{} {value:.2}\n",
            "█".repeat(bar),
            if bar == 0 { "▏" } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn spy_shows_diagonal() {
        let coo = gen::structured::diagonal(100);
        let s = spy(&coo, 10, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 12); // border + 10 rows + border
                                     // Diagonal cells are filled, off-diagonal are blank.
        for (k, line) in lines[1..11].iter().enumerate() {
            let chars: Vec<char> = line.chars().collect();
            assert_ne!(chars[1 + k], ' ', "diagonal cell {k} empty");
            if k > 1 {
                assert_eq!(chars[1], ' ', "off-diagonal cell filled in row {k}");
            }
        }
    }

    #[test]
    fn spy_handles_empty_matrix() {
        let s = spy(&Coo::new(10, 10), 8, 4);
        assert!(s.lines().count() == 6);
        assert!(!s.contains('█'));
    }

    #[test]
    fn spy_density_ramp_marks_dense_cells() {
        let coo = gen::blocks::block_dense(100, 50, 1, 1.0, 1);
        let s = spy(&coo, 10, 10);
        assert!(
            s.contains('█'),
            "a fully dense tile must hit the ramp top:\n{s}"
        );
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let s = bar_chart(&[("a", 10.0), ("b", 5.0), ("c", 0.0)], 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].matches('█').count(), 20);
        assert_eq!(lines[1].matches('█').count(), 10);
        assert_eq!(lines[2].matches('█').count(), 0);
        assert!(lines[2].contains('▏'));
    }
}
