//! R-MAT (recursive matrix) generator — self-similar graph adjacency
//! matrices with power-law-ish degree distributions and clustered blocks,
//! standing in for the web/graph matrices of the Matrix Market collection.

use super::{finish, nz_value, rng};
use crate::Coo;

/// The four quadrant probabilities of the R-MAT recursion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatProbs {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability (`1 - a - b - c`).
    pub d: f64,
}

impl Default for RmatProbs {
    /// The Graph500 parameters (a=0.57, b=c=0.19, d=0.05).
    fn default() -> Self {
        RmatProbs {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl RmatProbs {
    /// A flatter recursion (closer to uniform), for lower-locality variants.
    pub fn flat() -> Self {
        RmatProbs {
            a: 0.3,
            b: 0.25,
            c: 0.25,
            d: 0.2,
        }
    }

    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!(
            (s - 1.0).abs() < 1e-9,
            "R-MAT probabilities must sum to 1, got {s}"
        );
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "R-MAT probabilities must be non-negative"
        );
    }
}

/// Generates a `2^scale x 2^scale` R-MAT matrix with (up to) `nnz` entries;
/// duplicate coordinates merge, so skewed parameter sets land below `nnz`.
pub fn rmat(scale: u32, nnz: usize, probs: RmatProbs, seed: u64) -> Coo {
    probs.validate();
    let n = 1usize << scale;
    let mut r = rng(seed);
    let mut coo = Coo::new(n, n);
    for _ in 0..nnz {
        let (mut row, mut col) = (0usize, 0usize);
        for _ in 0..scale {
            row <<= 1;
            col <<= 1;
            let t: f64 = r.gen_f64();
            if t < probs.a {
                // top-left: nothing to add
            } else if t < probs.a + probs.b {
                col |= 1;
            } else if t < probs.a + probs.b + probs.c {
                row |= 1;
            } else {
                row |= 1;
                col |= 1;
            }
        }
        coo.push(row, col, nz_value(&mut r));
    }
    finish(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MatrixMetrics;

    #[test]
    fn shape_is_power_of_two() {
        let m = rmat(8, 1000, RmatProbs::default(), 1);
        assert_eq!(m.shape(), (256, 256));
    }

    #[test]
    fn skewed_probs_cluster_top_left() {
        let m = rmat(10, 5000, RmatProbs::default(), 2);
        let in_top_left = m.iter().filter(|&&(r, c, _)| r < 512 && c < 512).count();
        // a=0.57 at every level strongly biases to the top-left quadrant.
        assert!(in_top_left * 2 > m.nnz(), "{in_top_left} of {}", m.nnz());
    }

    #[test]
    fn default_probs_sum_to_one() {
        let p = RmatProbs::default();
        assert!((p.a + p.b + p.c + p.d - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probs_panic() {
        rmat(
            4,
            10,
            RmatProbs {
                a: 0.9,
                b: 0.9,
                c: 0.0,
                d: 0.0,
            },
            0,
        );
    }

    #[test]
    fn rmat_locality_exceeds_uniform() {
        let rm = MatrixMetrics::compute(&rmat(11, 8000, RmatProbs::default(), 3));
        let un = MatrixMetrics::compute(&super::super::random::uniform(2048, 2048, 8000, 3));
        assert!(
            rm.locality > un.locality,
            "{} vs {}",
            rm.locality,
            un.locality
        );
    }
}
