//! Structured generators: diagonals, bands, and PDE stencils.

use super::{finish, nz_value, rng};
use crate::Coo;

/// Pure diagonal matrix (`bcsstm20`-like): exactly one non-zero per row,
/// ANZ = 1, the worst case for a row-oriented format.
pub fn diagonal(n: usize) -> Coo {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0 + i as f32 * 0.25);
    }
    finish(coo)
}

/// Tridiagonal matrix (1-D Laplacian stencil).
pub fn tridiagonal(n: usize) -> Coo {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0);
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
        }
    }
    finish(coo)
}

/// Banded matrix with half-bandwidth `half_bw`; each in-band position is
/// kept with probability `fill`. `fill = 1.0` gives a dense band.
pub fn banded(n: usize, half_bw: usize, fill: f64, seed: u64) -> Coo {
    assert!((0.0..=1.0).contains(&fill), "fill must be a probability");
    let mut r = rng(seed);
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        let lo = i.saturating_sub(half_bw);
        let hi = (i + half_bw).min(n - 1);
        for j in lo..=hi {
            if i == j || r.gen_bool(fill) {
                coo.push(i, j, nz_value(&mut r));
            }
        }
    }
    finish(coo)
}

/// Five-point 2-D finite-difference stencil on an `nx x ny` grid
/// (the classic Poisson operator; `n = nx*ny` rows).
pub fn grid2d_5pt(nx: usize, ny: usize) -> Coo {
    let n = nx * ny;
    let mut coo = Coo::new(n, n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, 4.0);
            if x > 0 {
                coo.push(i, idx(x - 1, y), -1.0);
            }
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), -1.0);
            }
            if y > 0 {
                coo.push(i, idx(x, y - 1), -1.0);
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), -1.0);
            }
        }
    }
    finish(coo)
}

/// Seven-point 3-D finite-difference stencil on an `nx x ny x nz` grid.
pub fn grid3d_7pt(nx: usize, ny: usize, nz: usize) -> Coo {
    let n = nx * ny * nz;
    let mut coo = Coo::new(n, n);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                coo.push(i, i, 6.0);
                if x > 0 {
                    coo.push(i, idx(x - 1, y, z), -1.0);
                }
                if x + 1 < nx {
                    coo.push(i, idx(x + 1, y, z), -1.0);
                }
                if y > 0 {
                    coo.push(i, idx(x, y - 1, z), -1.0);
                }
                if y + 1 < ny {
                    coo.push(i, idx(x, y + 1, z), -1.0);
                }
                if z > 0 {
                    coo.push(i, idx(x, y, z - 1), -1.0);
                }
                if z + 1 < nz {
                    coo.push(i, idx(x, y, z + 1), -1.0);
                }
            }
        }
    }
    finish(coo)
}

/// Arrowhead matrix: dense first row, first column, and diagonal — the
/// classic "bad bandwidth" sparse pattern (one global hub plus local
/// self-coupling), common in constrained optimization KKT systems.
pub fn arrowhead(n: usize) -> Coo {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
        if i > 0 {
            coo.push(0, i, -1.0);
            coo.push(i, 0, -1.0);
        }
    }
    finish(coo)
}

/// Nine-point 2-D stencil (adds the diagonal neighbours) — a denser stencil
/// variant for suite diversity.
pub fn grid2d_9pt(nx: usize, ny: usize) -> Coo {
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let mut coo = Coo::new(n, n);
    for y in 0..ny as isize {
        for x in 0..nx as isize {
            let i = idx(x as usize, y as usize);
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let (xx, yy) = (x + dx, y + dy);
                    if xx < 0 || yy < 0 || xx >= nx as isize || yy >= ny as isize {
                        continue;
                    }
                    let j = idx(xx as usize, yy as usize);
                    let v = if i == j { 8.0 } else { -1.0 };
                    coo.push(i, j, v);
                }
            }
        }
    }
    finish(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MatrixMetrics;

    #[test]
    fn diagonal_has_anz_one() {
        let m = MatrixMetrics::compute(&diagonal(100));
        assert_eq!(m.nnz, 100);
        assert!((m.avg_nnz_per_row - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tridiagonal_nnz() {
        assert_eq!(tridiagonal(10).nnz(), 3 * 10 - 2);
    }

    #[test]
    fn banded_full_fill_is_dense_band() {
        let m = banded(10, 2, 1.0, 0);
        // rows 2..7 have 5 entries; edges clipped.
        assert_eq!(
            m.nnz(),
            (0..10usize)
                .map(|i| {
                    let lo = i.saturating_sub(2);
                    let hi = (i + 2).min(9);
                    hi - lo + 1
                })
                .sum::<usize>()
        );
    }

    #[test]
    fn grid2d_interior_rows_have_five_entries() {
        let m = grid2d_5pt(5, 5);
        let counts = crate::metrics::row_nnz_histogram(&m);
        assert_eq!(counts[12], 5); // center of the 5x5 grid
        assert_eq!(counts[0], 3); // corner
    }

    #[test]
    fn grid3d_interior_rows_have_seven_entries() {
        let m = grid3d_7pt(3, 3, 3);
        let counts = crate::metrics::row_nnz_histogram(&m);
        assert_eq!(counts[13], 7); // center of the 3x3x3 grid
    }

    #[test]
    fn grid2d_5pt_is_symmetric() {
        let m = grid2d_5pt(4, 4);
        let t = m.transpose_canonical();
        let mut orig = m;
        orig.canonicalize();
        assert_eq!(t, orig);
    }

    #[test]
    fn arrowhead_has_dense_hub() {
        let m = arrowhead(50);
        assert_eq!(m.nnz(), 50 + 2 * 49);
        let h = crate::metrics::row_nnz_histogram(&m);
        assert_eq!(h[0], 50); // the hub row
        assert_eq!(h[1], 2); // diagonal + column entry
    }

    #[test]
    fn grid9_denser_than_grid5() {
        assert!(grid2d_9pt(6, 6).nnz() > grid2d_5pt(6, 6).nnz());
    }
}
