//! Seeded synthetic sparse-matrix generators.
//!
//! These rebuild the *workload diversity* of the D-SAB suite (the paper's
//! 132 Matrix Market matrices) without the files themselves: each generator
//! family mimics a class of matrices present in the collection —
//!
//! | generator | Matrix Market analogue | character |
//! |---|---|---|
//! | [`structured::diagonal`] | `bcsstm20` (mass matrices) | ANZ = 1 |
//! | [`structured::banded`], [`structured::tridiagonal`] | 1-D PDE operators | narrow band |
//! | [`structured::grid2d_5pt`], [`structured::grid3d_7pt`] | FEM/FD stencils (`s3dkt3m2`, …) | regular stencils |
//! | [`random::uniform`] | power networks (`bcspwr10`) | very low locality |
//! | [`random::power_law`] | migration/economics (`psmigr_1`) | skewed rows, high ANZ |
//! | [`rmat::rmat`] | graph/web matrices | self-similar clustering |
//! | [`blocks::block_dense`] | quantum chemistry (`qc324`) | large dense blocks |
//! | [`blocks::block_band`] | multi-DOF FEM | dense blocklets on a band |
//!
//! Everything takes an explicit seed and is deterministic across runs and
//! platforms (the first-party [`crate::rng::StdRng`] defines the stream, so
//! no external crate can shift the catalogue between toolchains).

pub mod blocks;
pub mod random;
pub mod rmat;
pub mod structured;

use crate::rng::StdRng;
use crate::{Coo, Value};

/// Builds the deterministic RNG every generator uses.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a non-zero value in `[-1, 1] \ {0}` (values never matter for
/// transposition cycle counts, but non-zero values keep canonicalization
/// from dropping entries).
pub(crate) fn nz_value(rng: &mut StdRng) -> Value {
    loop {
        let v: f32 = rng.gen_range(-1.0..1.0);
        if v != 0.0 {
            return v;
        }
    }
}

/// Canonicalizes and returns the matrix; shared tail of every generator.
pub(crate) fn finish(mut coo: Coo) -> Coo {
    coo.canonicalize();
    coo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = random::uniform(100, 100, 500, 7);
        let b = random::uniform(100, 100, 500, 7);
        assert_eq!(a, b);
        let c = random::uniform(100, 100, 500, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn all_generators_produce_canonical_matrices() {
        let mats = [
            structured::diagonal(50),
            structured::tridiagonal(50),
            structured::banded(50, 4, 0.8, 3),
            structured::grid2d_5pt(8, 8),
            structured::grid3d_7pt(4, 4, 4),
            random::uniform(64, 64, 300, 1),
            random::power_law(64, 64, 6.0, 1.2, 2),
            rmat::rmat(6, 200, rmat::RmatProbs::default(), 3),
            blocks::block_dense(128, 16, 10, 0.9, 4),
            blocks::block_band(96, 8, 2, 0.7, 5),
        ];
        for m in &mats {
            assert!(m.is_canonical(), "non-canonical output");
            m.validate(true).unwrap();
            assert!(m.nnz() > 0, "degenerate generator output");
        }
    }
}
