//! Block-structured generators — the high-locality end of the suite
//! (`qc324`-like matrices with "large dense blocks").

use super::{finish, nz_value, rng};
use crate::Coo;

/// Scatters `n_blocks` dense-ish `block x block` tiles at random aligned
/// positions of an `n x n` matrix; inside a tile each cell is kept with
/// probability `fill`. High `fill` and large `block` give the
/// high-locality matrices the STM thrives on.
pub fn block_dense(n: usize, block: usize, n_blocks: usize, fill: f64, seed: u64) -> Coo {
    assert!(block > 0 && block <= n, "block must fit in the matrix");
    assert!((0.0..=1.0).contains(&fill));
    let mut r = rng(seed);
    let tiles = n / block;
    assert!(tiles > 0);
    let mut coo = Coo::new(n, n);
    for _ in 0..n_blocks {
        let bi = r.gen_range(0..tiles) * block;
        let bj = r.gen_range(0..tiles) * block;
        for i in 0..block {
            for j in 0..block {
                if r.gen_bool(fill) {
                    coo.push(bi + i, bj + j, nz_value(&mut r));
                }
            }
        }
    }
    finish(coo)
}

/// A block-banded matrix: dense `block x block` tiles along the diagonal
/// band of half-width `half_bw` tiles, each cell kept with probability
/// `fill` — multi-degree-of-freedom FEM structure.
pub fn block_band(n: usize, block: usize, half_bw: usize, fill: f64, seed: u64) -> Coo {
    assert!(block > 0 && block <= n);
    assert!((0.0..=1.0).contains(&fill));
    let mut r = rng(seed);
    let tiles = n / block;
    let mut coo = Coo::new(n, n);
    for ti in 0..tiles {
        let lo = ti.saturating_sub(half_bw);
        let hi = (ti + half_bw).min(tiles - 1);
        for tj in lo..=hi {
            for i in 0..block {
                for j in 0..block {
                    if r.gen_bool(fill) {
                        coo.push(ti * block + i, tj * block + j, nz_value(&mut r));
                    }
                }
            }
        }
    }
    finish(coo)
}

/// Kronecker product of a small dense pattern with itself `depth` times,
/// starting from a seed pattern — produces fractal block structure
/// (deterministic; no RNG).
pub fn kronecker_fractal(depth: u32) -> Coo {
    // Seed pattern: a 3x3 arrow.
    let base: [(usize, usize); 5] = [(0, 0), (0, 2), (1, 1), (2, 0), (2, 2)];
    let mut coords: Vec<(usize, usize)> = base.to_vec();
    let mut dim = 3usize;
    for _ in 1..depth.max(1) {
        let mut next = Vec::with_capacity(coords.len() * base.len());
        for &(r0, c0) in &coords {
            for &(r1, c1) in &base {
                next.push((r0 * 3 + r1, c0 * 3 + c1));
            }
        }
        coords = next;
        dim *= 3;
    }
    let mut coo = Coo::new(dim, dim);
    for (k, &(r, c)) in coords.iter().enumerate() {
        coo.push(r, c, 1.0 + (k % 7) as f32);
    }
    finish(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MatrixMetrics;

    #[test]
    fn block_dense_full_fill_tiles() {
        let m = block_dense(64, 16, 1, 1.0, 0);
        assert_eq!(m.nnz(), 16 * 16);
    }

    #[test]
    fn block_dense_high_locality() {
        let m = block_dense(1024, 32, 12, 1.0, 1);
        let met = MatrixMetrics::compute(&m);
        assert!(met.locality > 10.0, "locality = {}", met.locality);
    }

    #[test]
    fn block_band_touches_only_band_tiles() {
        let m = block_band(64, 8, 1, 1.0, 2);
        for &(i, j, _) in m.iter() {
            let (ti, tj) = (i / 8, j / 8);
            assert!((ti as isize - tj as isize).unsigned_abs() <= 1);
        }
    }

    #[test]
    fn kronecker_fractal_sizes() {
        assert_eq!(kronecker_fractal(1).shape(), (3, 3));
        assert_eq!(kronecker_fractal(1).nnz(), 5);
        assert_eq!(kronecker_fractal(3).shape(), (27, 27));
        assert_eq!(kronecker_fractal(3).nnz(), 125);
    }

    #[test]
    fn kronecker_is_structurally_symmetric() {
        let m = kronecker_fractal(2);
        let coords: std::collections::HashSet<_> = m.iter().map(|&(r, c, _)| (r, c)).collect();
        for &(r, c) in &coords {
            assert!(coords.contains(&(c, r)));
        }
    }
}
