//! Random-structure generators: uniform (Erdős–Rényi) and power-law rows.

use super::{finish, nz_value, rng};
use crate::Coo;

/// Uniformly random sparsity (`bcspwr10`-like): `nnz` coordinates drawn
/// uniformly over the `rows x cols` grid. Duplicates are merged, so the
/// final count can fall slightly short of `nnz` for dense draws. This is
/// the lowest-locality family in the suite.
pub fn uniform(rows: usize, cols: usize, nnz: usize, seed: u64) -> Coo {
    assert!(rows > 0 && cols > 0);
    let mut r = rng(seed);
    let mut coo = Coo::new(rows, cols);
    for _ in 0..nnz {
        let i = r.gen_range(0..rows);
        let j = r.gen_range(0..cols);
        coo.push(i, j, nz_value(&mut r));
    }
    finish(coo)
}

/// Power-law row degrees (`psmigr_1`-like): row `i`'s expected non-zero
/// count follows a Zipf-style law `deg(i) ∝ (i+1)^(-alpha)` scaled so the
/// mean row degree is `avg_deg`. Columns within a row are drawn uniformly.
/// Produces a few very long rows and many short ones — high ANZ variance.
pub fn power_law(rows: usize, cols: usize, avg_deg: f64, alpha: f64, seed: u64) -> Coo {
    assert!(rows > 0 && cols > 0);
    assert!(avg_deg > 0.0 && alpha >= 0.0);
    let mut r = rng(seed);
    // Normalize the Zipf weights so that the degrees sum to rows*avg_deg.
    let weights: Vec<f64> = (0..rows).map(|i| (i as f64 + 1.0).powf(-alpha)).collect();
    let wsum: f64 = weights.iter().sum();
    let total = rows as f64 * avg_deg;
    let mut coo = Coo::new(rows, cols);
    // Shuffle row identities so the heavy rows are scattered through the
    // matrix, like a permuted real-world matrix.
    let mut perm: Vec<usize> = (0..rows).collect();
    for i in (1..rows).rev() {
        let j = r.gen_range(0..=i);
        perm.swap(i, j);
    }
    for (rank, &row) in perm.iter().enumerate() {
        let deg = ((weights[rank] / wsum * total).round() as usize).clamp(1, cols);
        for _ in 0..deg {
            let j = r.gen_range(0..cols);
            coo.push(row, j, nz_value(&mut r));
        }
    }
    finish(coo)
}

/// A "spread diagonal": entries near the diagonal with random jitter of
/// width `spread` — moderately local, band-like but irregular.
pub fn jittered_diagonal(n: usize, per_row: usize, spread: usize, seed: u64) -> Coo {
    assert!(n > 0);
    let mut r = rng(seed);
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, nz_value(&mut r));
        for _ in 1..per_row {
            let off = r.gen_range(0..=2 * spread) as isize - spread as isize;
            let j = (i as isize + off).clamp(0, n as isize - 1) as usize;
            coo.push(i, j, nz_value(&mut r));
        }
    }
    finish(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MatrixMetrics;

    #[test]
    fn uniform_has_about_requested_nnz() {
        let m = uniform(1000, 1000, 5000, 42);
        // A few duplicate draws collapse; stay within 2%.
        assert!(m.nnz() > 4900 && m.nnz() <= 5000, "nnz = {}", m.nnz());
    }

    #[test]
    fn uniform_low_locality() {
        let m = uniform(2048, 2048, 4000, 1);
        let met = MatrixMetrics::compute(&m);
        // ~1 entry per touched 32x32 block → locality near 1/32.
        assert!(met.locality < 0.1, "locality = {}", met.locality);
    }

    #[test]
    fn power_law_has_skewed_rows() {
        let m = power_law(512, 512, 8.0, 1.5, 9);
        let h = crate::metrics::row_nnz_histogram(&m);
        let max = *h.iter().max().unwrap();
        let nonzero_rows = h.iter().filter(|&&c| c > 0).count();
        let mean = m.nnz() as f64 / nonzero_rows as f64;
        assert!(max as f64 > 5.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn power_law_every_row_occupied() {
        let m = power_law(100, 100, 4.0, 1.0, 3);
        let h = crate::metrics::row_nnz_histogram(&m);
        assert!(h.iter().all(|&c| c >= 1));
    }

    #[test]
    fn jittered_diagonal_stays_near_diagonal() {
        let m = jittered_diagonal(200, 4, 5, 11);
        for &(i, j, _) in m.iter() {
            assert!((i as isize - j as isize).unsigned_abs() <= 5);
        }
    }
}
