//! Compressed Column Storage.
//!
//! A CSC matrix of `A` holds exactly the data of a CSR matrix of `Aᵀ`, which
//! makes it a convenient *independent oracle* for the transposition kernels:
//! `Csc::from_coo(a)` and `Csr::from_coo(a).transpose_*()` must agree.

use crate::{Coo, Csr, FormatError, Value};

/// A sparse matrix in Compressed Column Storage format.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<Value>,
}

impl Csc {
    /// Builds a CSC matrix from a COO matrix (canonicalizing first). The
    /// arrays come from the same [`crate::format::compress_sorted`]
    /// helper as CSR's, with outer = column and inner = row.
    pub fn from_coo(coo: &Coo) -> Self {
        let mut c = coo.clone();
        c.canonicalize();
        c.sort_col_major();
        let (rows, cols) = c.shape();
        let (col_ptr, row_idx, values) =
            crate::format::compress_sorted(cols, c.iter().map(|&(i, j, v)| (j, i, v)));
        Csc {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column pointer array.
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Value array.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Converts to COO.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols);
        for j in 0..self.cols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                coo.push(self.row_idx[k], j, self.values[k]);
            }
        }
        coo
    }

    /// Reinterprets the CSC data of `A` as the CSR matrix of `Aᵀ` — a
    /// zero-cost transposition (the data is bit-identical).
    pub fn into_csr_of_transpose(self) -> Result<Csr, FormatError> {
        Csr::from_parts(
            self.cols,
            self.rows,
            self.col_ptr,
            self.row_idx,
            self.values,
        )
    }

    /// The inverse reinterpretation: the CSR data of `B` is bit-identical
    /// to the CSC data of `Bᵀ`. Together with
    /// [`Csc::into_csr_of_transpose`] this makes CSR↔CSC conversion a
    /// pair of zero-cost moves.
    pub fn from_csr_of_transpose(csr: Csr) -> Self {
        let (rows, cols, row_ptr, col_idx, values) = csr.into_parts();
        Csc {
            rows: cols,
            cols: rows,
            col_ptr: row_ptr,
            row_idx: col_idx,
            values,
        }
    }
}

impl crate::SparseFormat for Csc {
    const NAME: &'static str = "csc";

    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn nnz(&self) -> usize {
        Csc::nnz(self)
    }

    fn validate(&self) -> Result<(), FormatError> {
        // CSC(A) is CSR(Aᵀ) bit-for-bit, so the CSR validator covers
        // every CSC invariant through the zero-cost reinterpretation.
        self.clone().into_csr_of_transpose().map(|_| ())
    }

    fn from_coo(coo: &Coo) -> Result<Self, FormatError> {
        Ok(Csc::from_coo(coo))
    }

    fn to_coo(&self) -> Coo {
        let mut coo = Csc::to_coo(self);
        coo.sort_row_major();
        coo
    }

    /// Transpose without touching COO: reinterpret CSC(A) as CSR(Aᵀ),
    /// transpose that with Pissanetsky's algorithm to CSR(A), and
    /// reinterpret back as CSC(Aᵀ).
    fn transpose(&self) -> Result<Self, FormatError> {
        let csr_of_t = self.clone().into_csr_of_transpose()?;
        Ok(Csc::from_csr_of_transpose(csr_of_t.transpose_pissanetsky()))
    }

    fn spmv(&self, x: &[Value]) -> Result<Vec<Value>, FormatError> {
        if x.len() != self.cols {
            return Err(FormatError::ShapeMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                y[self.row_idx[k]] += self.values[k] * xj;
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        Coo::from_triplets(
            3,
            4,
            vec![
                (0, 1, 1.0),
                (1, 0, 2.0),
                (1, 3, 3.0),
                (2, 1, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_coo_builds_column_layout() {
        let m = Csc::from_coo(&sample());
        assert_eq!(m.col_ptr(), &[0, 1, 3, 4, 5]);
        assert_eq!(m.row_idx(), &[1, 0, 2, 2, 1]);
        assert_eq!(m.values(), &[2.0, 1.0, 4.0, 5.0, 3.0]);
    }

    #[test]
    fn round_trip_through_coo() {
        let coo = sample();
        let mut back = Csc::from_coo(&coo).to_coo();
        back.canonicalize();
        let mut orig = coo;
        orig.canonicalize();
        assert_eq!(back, orig);
    }

    #[test]
    fn csc_is_csr_of_transpose() {
        let coo = sample();
        let via_csc = Csc::from_coo(&coo).into_csr_of_transpose().unwrap();
        let via_pissanetsky = Csr::from_coo(&coo).transpose_pissanetsky();
        assert_eq!(via_csc, via_pissanetsky);
    }

    #[test]
    fn empty_matrix() {
        let m = Csc::from_coo(&Coo::new(2, 3));
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.col_ptr(), &[0, 0, 0, 0]);
    }
}
