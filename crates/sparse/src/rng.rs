//! First-party deterministic random number generator.
//!
//! The workspace builds in fully offline environments, so the matrix
//! generators cannot pull in an external RNG crate. [`StdRng`] is a small
//! SplitMix64-based generator with exactly the sampling surface the
//! generators in [`crate::gen`] need: integer ranges, a symmetric float
//! range, Bernoulli draws, and unit-interval doubles. It is seeded
//! explicitly and produces the same stream on every platform, which is what
//! the D-SAB suite reconstruction requires — the catalogue must be
//! reproducible bit-for-bit across runs and machines.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) passes BigCrush and is the
//! recommended seeder for larger generators; its equidistribution is far
//! more than the synthetic matrix patterns here demand.

/// Deterministic 64-bit generator backed by SplitMix64.
///
/// The name mirrors the generator the code used historically so call sites
/// read naturally (`StdRng::seed_from_u64(seed)`), but the stream is defined
/// by this crate alone and is stable across releases: changing it would
/// silently regenerate every synthetic benchmark matrix.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed. Equal seeds give equal
    /// streams; nearby seeds give statistically independent streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(0..=i)` or `rng.gen_range(-1.0..1.0)`.
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen_f64() < p
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// rejection method (unbiased).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        // Rejection zone below `threshold` removes the modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }
}

/// A range that [`StdRng::gen_range`] can sample from uniformly.
pub trait RangeSample {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl RangeSample for core::ops::Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as usize
    }
}

impl RangeSample for core::ops::RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range");
        lo + rng.bounded_u64((hi - lo) as u64 + 1) as usize
    }
}

impl RangeSample for core::ops::Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut StdRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}

impl RangeSample for core::ops::Range<f32> {
    type Output = f32;
    fn sample(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f64() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_samples_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0..=5usize);
            assert!(y <= 5);
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d = r.gen_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn every_bucket_of_a_small_range_is_hit() {
        let mut r = StdRng::seed_from_u64(11);
        let mut hits = [0u32; 8];
        for _ in 0..4000 {
            hits[r.gen_range(0..8usize)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            // Expected 500 per bucket; a uniform generator stays well
            // inside [300, 700].
            assert!((300..700).contains(&h), "bucket {i} hit {h} times");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn inclusive_range_reaches_both_endpoints() {
        let mut r = StdRng::seed_from_u64(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..200 {
            match r.gen_range(0..=3usize) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }
}
