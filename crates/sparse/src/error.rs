//! Error types shared by the matrix formats.

use std::fmt;

/// Errors produced while constructing, validating, or parsing matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// An entry's row or column index lies outside the matrix shape.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// Two entries share the same `(row, col)` coordinate.
    DuplicateEntry {
        /// Row index of the duplicated coordinate.
        row: usize,
        /// Column index of the duplicated coordinate.
        col: usize,
    },
    /// A CSR/CSC pointer array is malformed (wrong length, non-monotone, or
    /// inconsistent with the index array length).
    BadPointerArray(String),
    /// Column indices within a row (or row indices within a column) are not
    /// strictly increasing.
    UnsortedIndices {
        /// The row (CSR) or column (CSC) in which the disorder was found.
        outer: usize,
    },
    /// A Matrix Market stream could not be parsed.
    Parse(String),
    /// Shapes of two operands do not match.
    ShapeMismatch {
        /// Shape expected by the operation.
        expected: (usize, usize),
        /// Shape actually supplied.
        found: (usize, usize),
    },
    /// A format's construction parameters are invalid (e.g. a SELL-C-σ
    /// sort window that is not a multiple of the chunk height).
    BadConfig(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {rows}x{cols} matrix"
            ),
            FormatError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row}, {col})")
            }
            FormatError::BadPointerArray(msg) => write!(f, "bad pointer array: {msg}"),
            FormatError::UnsortedIndices { outer } => {
                write!(f, "indices not strictly increasing within line {outer}")
            }
            FormatError::Parse(msg) => write!(f, "parse error: {msg}"),
            FormatError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            FormatError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {}
