//! Coordinate (triplet) storage — the interchange format of this workspace.
//!
//! Every other format converts through [`Coo`]; the transposition oracles in
//! the test suites are all phrased as "sort the transposed triplets".

use crate::{FormatError, Value};

/// A single non-zero entry: `(row, col, value)`.
pub type Triplet = (usize, usize, Value);

/// A sparse matrix in coordinate (triplet) format.
///
/// Entries may be in any order and (until [`Coo::canonicalize`] is called)
/// may contain duplicates. Construction is cheap; structure queries are done
/// by the compressed formats.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<Triplet>,
}

impl Coo {
    /// Creates an empty `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates a matrix from a triplet list, validating every index.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        entries: Vec<Triplet>,
    ) -> Result<Self, FormatError> {
        for &(r, c, _) in &entries {
            if r >= rows || c >= cols {
                return Err(FormatError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        Ok(Coo {
            rows,
            cols,
            entries,
        })
    }

    /// Appends one entry. Panics in debug builds if the index is out of
    /// bounds; use [`Coo::from_triplets`] for checked bulk construction.
    pub fn push(&mut self, row: usize, col: usize, value: Value) {
        debug_assert!(row < self.rows && col < self.cols, "entry out of bounds");
        self.entries.push((row, col, value));
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries (including duplicates if not canonical).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Borrow the triplets.
    pub fn entries(&self) -> &[Triplet] {
        &self.entries
    }

    /// Consumes the matrix, returning the triplets.
    pub fn into_entries(self) -> Vec<Triplet> {
        self.entries
    }

    /// Iterate over `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = &Triplet> {
        self.entries.iter()
    }

    /// Sorts entries row-major (by row, then column). Stable, so duplicate
    /// coordinates keep insertion order.
    pub fn sort_row_major(&mut self) {
        self.entries.sort_by_key(|a| (a.0, a.1));
    }

    /// Sorts entries column-major (by column, then row).
    pub fn sort_col_major(&mut self) {
        self.entries.sort_by_key(|a| (a.1, a.0));
    }

    /// Sorts row-major, sums duplicates, and drops explicit zeros produced
    /// by the summation. After this call the triplet list is *canonical*:
    /// strictly increasing in `(row, col)`.
    pub fn canonicalize(&mut self) {
        self.sort_row_major();
        let mut out: Vec<Triplet> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        out.retain(|&(_, _, v)| v != 0.0);
        self.entries = out;
    }

    /// Returns `true` if the triplet list is canonical (strictly increasing
    /// row-major coordinates, no explicit zeros).
    pub fn is_canonical(&self) -> bool {
        self.entries
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1))
            && self.entries.iter().all(|&(_, _, v)| v != 0.0)
    }

    /// Returns the transpose: an `cols x rows` matrix with every entry's
    /// coordinates swapped. The result is *not* re-sorted.
    pub fn transpose(&self) -> Coo {
        Coo {
            rows: self.cols,
            cols: self.rows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }

    /// Canonical transpose: transposed, sorted row-major, duplicates summed.
    /// This is the oracle used throughout the test suites.
    pub fn transpose_canonical(&self) -> Coo {
        let mut t = self.transpose();
        t.canonicalize();
        t
    }

    /// Checks every entry is in bounds and, optionally, that the list is
    /// canonical.
    pub fn validate(&self, require_canonical: bool) -> Result<(), FormatError> {
        for &(r, c, _) in &self.entries {
            if r >= self.rows || c >= self.cols {
                return Err(FormatError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows: self.rows,
                    cols: self.cols,
                });
            }
        }
        if require_canonical {
            for w in self.entries.windows(2) {
                if (w[0].0, w[0].1) == (w[1].0, w[1].1) {
                    return Err(FormatError::DuplicateEntry {
                        row: w[1].0,
                        col: w[1].1,
                    });
                }
            }
        }
        Ok(())
    }

    /// Multiplies `y = A * x` (reference implementation for cross-checks).
    pub fn spmv(&self, x: &[Value]) -> Result<Vec<Value>, FormatError> {
        if x.len() != self.cols {
            return Err(FormatError::ShapeMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for &(r, c, v) in &self.entries {
            y[r] += v * x[c];
        }
        Ok(y)
    }
}

impl crate::SparseFormat for Coo {
    const NAME: &'static str = "coo";

    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn nnz(&self) -> usize {
        self.entries.len()
    }

    fn validate(&self) -> Result<(), FormatError> {
        Coo::validate(self, false)
    }

    fn from_coo(coo: &Coo) -> Result<Self, FormatError> {
        let mut c = coo.clone();
        c.canonicalize();
        Ok(c)
    }

    fn to_coo(&self) -> Coo {
        let mut c = self.clone();
        c.canonicalize();
        c
    }

    fn transpose(&self) -> Result<Self, FormatError> {
        Ok(self.transpose_canonical())
    }

    fn spmv(&self, x: &[Value]) -> Result<Vec<Value>, FormatError> {
        Coo::spmv(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        Coo::from_triplets(
            3,
            4,
            vec![(0, 1, 1.0), (2, 3, 2.0), (1, 0, 3.0), (0, 0, 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let err = Coo::from_triplets(2, 2, vec![(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, FormatError::IndexOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn sort_row_major_orders_entries() {
        let mut m = sample();
        m.sort_row_major();
        let coords: Vec<_> = m.iter().map(|&(r, c, _)| (r, c)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (1, 0), (2, 3)]);
    }

    #[test]
    fn sort_col_major_orders_entries() {
        let mut m = sample();
        m.sort_col_major();
        let coords: Vec<_> = m.iter().map(|&(r, c, _)| (r, c)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (0, 1), (2, 3)]);
    }

    #[test]
    fn canonicalize_sums_duplicates_and_drops_zeros() {
        let mut m = Coo::from_triplets(
            2,
            2,
            vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0), (1, 1, -5.0)],
        )
        .unwrap();
        m.canonicalize();
        assert_eq!(m.entries(), &[(0, 0, 3.0)]);
        assert!(m.is_canonical());
    }

    #[test]
    fn transpose_swaps_coordinates_and_shape() {
        let t = sample().transpose();
        assert_eq!(t.shape(), (4, 3));
        assert!(t.iter().any(|&(r, c, v)| (r, c, v) == (3, 2, 2.0)));
    }

    #[test]
    fn transpose_is_involution() {
        let m = sample();
        let mut tt = m.transpose().transpose();
        tt.sort_row_major();
        let mut orig = m.clone();
        orig.sort_row_major();
        assert_eq!(tt, orig);
    }

    #[test]
    fn validate_detects_duplicates() {
        let m = Coo::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0)]).unwrap();
        assert!(m.validate(false).is_ok());
        assert!(matches!(
            m.validate(true),
            Err(FormatError::DuplicateEntry { row: 0, col: 0 })
        ));
    }

    #[test]
    fn spmv_matches_hand_computation() {
        let m = sample();
        let y = m.spmv(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        // row0: 4*1 + 1*2 = 6 ; row1: 3*1 = 3 ; row2: 2*4 = 8
        assert_eq!(y, vec![6.0, 3.0, 8.0]);
    }

    #[test]
    fn spmv_rejects_wrong_length() {
        assert!(sample().spmv(&[1.0]).is_err());
    }

    #[test]
    fn empty_matrix_behaves() {
        let m = Coo::new(5, 5);
        assert_eq!(m.nnz(), 0);
        assert!(m.is_canonical());
        assert_eq!(m.transpose_canonical().nnz(), 0);
    }
}
