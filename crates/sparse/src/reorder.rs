//! Row/column permutations and the reverse Cuthill–McKee (RCM)
//! bandwidth-reducing ordering.
//!
//! Reordering is the classic software lever on exactly the quantity the
//! STM exploits: the *locality* metric (density of non-zeros per block).
//! RCM clusters the non-zeros of an irregular matrix around the diagonal,
//! raising locality — the `reorder` experiment binary shows the HiSM
//! speedup rising accordingly, connecting the paper's hardware approach
//! to the software techniques it cites as the usual alternative.

use crate::{Coo, FormatError};

/// Applies row and column permutations: `B[i][j] = A[row_perm[i]][col_perm[j]]`
/// (i.e. `perm[k]` names the *source* index placed at position `k`).
pub fn permute(coo: &Coo, row_perm: &[usize], col_perm: &[usize]) -> Result<Coo, FormatError> {
    if row_perm.len() != coo.rows() || col_perm.len() != coo.cols() {
        return Err(FormatError::ShapeMismatch {
            expected: (coo.rows(), coo.cols()),
            found: (row_perm.len(), col_perm.len()),
        });
    }
    let inv_row = invert(row_perm)?;
    let inv_col = invert(col_perm)?;
    let mut out = Coo::new(coo.rows(), coo.cols());
    for &(r, c, v) in coo.iter() {
        out.push(inv_row[r], inv_col[c], v);
    }
    out.canonicalize();
    Ok(out)
}

fn invert(perm: &[usize]) -> Result<Vec<usize>, FormatError> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (pos, &src) in perm.iter().enumerate() {
        if src >= perm.len() || inv[src] != usize::MAX {
            return Err(FormatError::Parse("not a permutation".into()));
        }
        inv[src] = pos;
    }
    Ok(inv)
}

/// The reverse Cuthill–McKee ordering of a square matrix's symmetrized
/// sparsity graph: BFS from a low-degree vertex, neighbours visited in
/// increasing-degree order, final order reversed. Returns the permutation
/// (`perm[k]` = source row placed at position `k`), covering every
/// component (restarts from the lowest-degree unvisited vertex).
pub fn reverse_cuthill_mckee(coo: &Coo) -> Result<Vec<usize>, FormatError> {
    if coo.rows() != coo.cols() {
        return Err(FormatError::ShapeMismatch {
            expected: (coo.rows(), coo.rows()),
            found: (coo.rows(), coo.cols()),
        });
    }
    let n = coo.rows();
    // Symmetrized adjacency (structure only, no self loops).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(r, c, _) in coo.iter() {
        if r != c {
            adj[r].push(c);
            adj[c].push(r);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Process components from their minimum-degree vertex.
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&v| degree[v]);
    for &start in &by_degree {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut next: Vec<usize> = adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            next.sort_by_key(|&u| degree[u]);
            for u in next {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Ok(order)
}

/// Symmetric RCM reordering of a square matrix (`P A Pᵀ`).
pub fn rcm_reorder(coo: &Coo) -> Result<Coo, FormatError> {
    let perm = reverse_cuthill_mckee(coo)?;
    permute(coo, &perm, &perm)
}

/// The matrix bandwidth `max |i - j|` over the non-zeros (0 for empty
/// matrices) — the quantity RCM minimizes heuristically.
pub fn bandwidth(coo: &Coo) -> usize {
    coo.iter()
        .map(|&(r, c, _)| r.abs_diff(c))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::metrics::MatrixMetrics;

    #[test]
    fn permute_moves_entries() {
        let coo = Coo::from_triplets(3, 3, vec![(0, 1, 5.0), (2, 2, 7.0)]).unwrap();
        // Reverse both dimensions.
        let p = permute(&coo, &[2, 1, 0], &[2, 1, 0]).unwrap();
        assert_eq!(p.entries(), &[(0, 0, 7.0), (2, 1, 5.0)]);
    }

    #[test]
    fn permute_identity_is_noop() {
        let coo = gen::random::uniform(30, 40, 100, 1);
        let id_r: Vec<usize> = (0..30).collect();
        let id_c: Vec<usize> = (0..40).collect();
        let mut canon = coo.clone();
        canon.canonicalize();
        assert_eq!(permute(&coo, &id_r, &id_c).unwrap(), canon);
    }

    #[test]
    fn permute_rejects_bad_permutations() {
        let coo = Coo::new(3, 3);
        assert!(permute(&coo, &[0, 0, 1], &[0, 1, 2]).is_err());
        assert!(permute(&coo, &[0, 1], &[0, 1, 2]).is_err());
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_band() {
        // Take a narrow band, scramble it, and let RCM recover a small
        // bandwidth.
        let band = gen::structured::banded(200, 3, 1.0, 1);
        // Scramble with a deterministic "random" permutation.
        let mut perm: Vec<usize> = (0..200).collect();
        for i in (1..200).rev() {
            let j = (i * 2654435761usize) % (i + 1);
            perm.swap(i, j);
        }
        let scrambled = permute(&band, &perm, &perm).unwrap();
        assert!(bandwidth(&scrambled) > 50, "scramble failed");
        let restored = rcm_reorder(&scrambled).unwrap();
        assert!(
            bandwidth(&restored) < bandwidth(&scrambled) / 4,
            "RCM bandwidth {} vs scrambled {}",
            bandwidth(&restored),
            bandwidth(&scrambled)
        );
    }

    #[test]
    fn rcm_raises_locality_of_scattered_matrices() {
        // The metric the STM exploits must improve under RCM on a
        // band-structured-but-shuffled matrix.
        let band = gen::structured::banded(512, 4, 0.9, 3);
        let mut perm: Vec<usize> = (0..512).collect();
        for i in (1..512).rev() {
            let j = (i * 40503usize) % (i + 1);
            perm.swap(i, j);
        }
        let scrambled = permute(&band, &perm, &perm).unwrap();
        let before = MatrixMetrics::compute(&scrambled).locality;
        let after = MatrixMetrics::compute(&rcm_reorder(&scrambled).unwrap()).locality;
        assert!(after > 2.0 * before, "locality {before} -> {after}");
    }

    #[test]
    fn rcm_is_a_permutation_on_disconnected_graphs() {
        // Two components + isolated vertices.
        let coo = Coo::from_triplets(8, 8, vec![(0, 1, 1.0), (1, 2, 1.0), (5, 6, 1.0)]).unwrap();
        let perm = reverse_cuthill_mckee(&coo).unwrap();
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_preserves_matrix_content() {
        let coo = gen::rmat::rmat(7, 400, gen::rmat::RmatProbs::default(), 5);
        let reordered = rcm_reorder(&coo).unwrap();
        assert_eq!(reordered.nnz(), {
            let mut c = coo.clone();
            c.canonicalize();
            c.nnz()
        });
        // Values survive as a multiset.
        let mut a: Vec<u32> = coo.iter().map(|&(_, _, v)| v.to_bits()).collect();
        let mut b: Vec<u32> = reordered.iter().map(|&(_, _, v)| v.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rcm_rejects_rectangular() {
        assert!(reverse_cuthill_mckee(&Coo::new(3, 4)).is_err());
    }

    #[test]
    fn bandwidth_of_diagonal_is_zero() {
        assert_eq!(bandwidth(&gen::structured::diagonal(10)), 0);
        assert_eq!(bandwidth(&gen::structured::tridiagonal(10)), 1);
    }
}
