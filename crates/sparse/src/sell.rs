//! SELL-C-σ — the unified SIMD-friendly sparse format of Kreutzer et
//! al. ("A unified sparse matrix data format for efficient general
//! sparse matrix-vector multiply on modern processors with wide SIMD
//! units").
//!
//! Rows are sorted by descending non-zero count within windows of σ
//! consecutive rows ([`crate::format::length_sorted_perm`]), then packed
//! into chunks of `C` rows. Each chunk is padded to the width of its
//! longest row and stored **column-major within the chunk**: element
//! `j` of lane `k` lives at `chunk_ptr[i] + j*C + k`, so a vector unit
//! loads `C` lanes with one stride-`C` access. σ must be a positive
//! multiple of `C`; combined with the descending sort this gives the
//! *prefix-active-lanes* property — at depth `j`, the live lanes of a
//! chunk are exactly a prefix — which the simulated SELL kernels rely
//! on to skip padding work.
//!
//! Padding positions carry the column sentinel `cols` and the value
//! `0.0`; [`Sell::nnz`] and the occupancy statistics count stored
//! non-zeros only.

use crate::format::{length_sorted_perm, row_buckets, row_lengths, SparseFormat};
use crate::{Coo, FormatError, Value};

/// SELL-C-σ construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SellConfig {
    /// Chunk height `C`: the number of rows (vector lanes) per chunk.
    pub c: usize,
    /// Sort window σ: rows are length-sorted within windows of σ
    /// consecutive rows. Must be a positive multiple of `c`.
    pub sigma: usize,
}

impl Default for SellConfig {
    /// `C = 64` (the paper machine's section size) and `σ = 512`.
    fn default() -> Self {
        SellConfig { c: 64, sigma: 512 }
    }
}

impl SellConfig {
    /// Validates `c > 0`, `sigma > 0`, and `sigma % c == 0`.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.c == 0 || self.sigma == 0 {
            return Err(FormatError::BadConfig(format!(
                "SELL-C-σ needs positive C and σ, got C={} σ={}",
                self.c, self.sigma
            )));
        }
        if !self.sigma.is_multiple_of(self.c) {
            return Err(FormatError::BadConfig(format!(
                "SELL-C-σ sort window σ={} must be a multiple of C={}",
                self.sigma, self.c
            )));
        }
        Ok(())
    }
}

/// Chunk-occupancy statistics of a SELL-C-σ matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkStats {
    /// Number of chunks.
    pub chunks: usize,
    /// Stored non-zeros.
    pub stored: usize,
    /// Padding cells (allocated but not backed by a non-zero).
    pub padded: usize,
    /// `stored / (stored + padded)`; `1.0` for an empty matrix.
    pub occupancy: f64,
    /// Width of the widest chunk.
    pub max_chunk_len: usize,
}

/// A sparse matrix in SELL-C-σ format.
#[derive(Debug, Clone, PartialEq)]
pub struct Sell {
    rows: usize,
    cols: usize,
    config: SellConfig,
    /// `perm[p]` = original row stored at sorted position `p`
    /// (covers *all* rows, empty rows included).
    perm: Vec<usize>,
    /// Word offset of each chunk in `col_idx`/`values`
    /// (`chunk_ptr.len() = chunks + 1`).
    chunk_ptr: Vec<usize>,
    /// Width (longest row) of each chunk.
    chunk_len: Vec<usize>,
    /// Non-zero count of the row at sorted position `p`.
    row_len: Vec<usize>,
    /// Padded column indices, column-major within each chunk; padding
    /// cells hold the sentinel `cols`.
    col_idx: Vec<usize>,
    /// Padded values; padding cells hold `0.0`.
    values: Vec<Value>,
}

impl Sell {
    /// Builds SELL-C-σ with explicit parameters (canonicalizing first).
    pub fn from_coo_with(coo: &Coo, config: SellConfig) -> Result<Self, FormatError> {
        config.validate()?;
        let mut canon = coo.clone();
        canon.canonicalize();
        let (rows, cols) = canon.shape();
        let lengths = row_lengths(&canon);
        let perm = length_sorted_perm(&lengths, config.sigma);
        let buckets = row_buckets(&canon);
        let row_len: Vec<usize> = perm.iter().map(|&r| lengths[r]).collect();

        let chunks = rows.div_ceil(config.c);
        let mut chunk_ptr = Vec::with_capacity(chunks + 1);
        let mut chunk_len = Vec::with_capacity(chunks);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        chunk_ptr.push(0);
        for i in 0..chunks {
            let base = i * config.c;
            let lanes = config.c.min(rows - base);
            let width = row_len[base..base + lanes]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            // Column-major fill: depth-major over the chunk, so the
            // index walk is genuinely positional.
            #[allow(clippy::needless_range_loop)]
            for j in 0..width {
                for k in 0..config.c {
                    let p = base + k;
                    if k < lanes && j < row_len[p] {
                        let (c, v) = buckets[perm[p]][j];
                        col_idx.push(c);
                        values.push(v);
                    } else {
                        col_idx.push(cols);
                        values.push(0.0);
                    }
                }
            }
            chunk_len.push(width);
            chunk_ptr.push(col_idx.len());
        }
        Ok(Sell {
            rows,
            cols,
            config,
            perm,
            chunk_ptr,
            chunk_len,
            row_len,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros (padding excluded).
    pub fn nnz(&self) -> usize {
        self.row_len.iter().sum()
    }

    /// The construction parameters.
    pub fn config(&self) -> SellConfig {
        self.config
    }

    /// Number of chunks.
    pub fn chunks(&self) -> usize {
        self.chunk_len.len()
    }

    /// The row permutation (`perm[p]` = original row at sorted
    /// position `p`).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Chunk offsets into [`Sell::col_idx`]/[`Sell::values`].
    pub fn chunk_ptr(&self) -> &[usize] {
        &self.chunk_ptr
    }

    /// Per-chunk widths.
    pub fn chunk_len(&self) -> &[usize] {
        &self.chunk_len
    }

    /// Per-position row lengths (sorted order).
    pub fn row_len(&self) -> &[usize] {
        &self.row_len
    }

    /// Padded column-index array (sentinel `cols` at padding cells).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Padded value array (`0.0` at padding cells).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Chunk-occupancy statistics.
    pub fn chunk_stats(&self) -> ChunkStats {
        let stored = self.nnz();
        let cells = self.col_idx.len();
        ChunkStats {
            chunks: self.chunks(),
            stored,
            padded: cells - stored,
            occupancy: if cells == 0 {
                1.0
            } else {
                stored as f64 / cells as f64
            },
            max_chunk_len: self.chunk_len.iter().copied().max().unwrap_or(0),
        }
    }

    /// Fraction of allocated cells backed by a non-zero
    /// (`1.0` for an empty matrix).
    pub fn occupancy(&self) -> f64 {
        self.chunk_stats().occupancy
    }
}

/// Predicts the SELL-C-σ occupancy of a matrix from its row lengths
/// alone — shared by [`Sell::chunk_stats`] validation tests and the
/// `MatrixMetrics` cost-model inputs, so the autotuner can score SELL
/// without building it.
pub fn occupancy_from_lengths(lengths: &[usize], c: usize, sigma: usize) -> f64 {
    assert!(
        c > 0 && sigma > 0 && sigma.is_multiple_of(c),
        "invalid SELL config"
    );
    let perm = length_sorted_perm(lengths, sigma);
    let mut stored = 0usize;
    let mut cells = 0usize;
    for chunk in perm.chunks(c) {
        let width = chunk.iter().map(|&r| lengths[r]).max().unwrap_or(0);
        stored += chunk.iter().map(|&r| lengths[r]).sum::<usize>();
        cells += c * width;
    }
    if cells == 0 {
        1.0
    } else {
        stored as f64 / cells as f64
    }
}

impl SparseFormat for Sell {
    const NAME: &'static str = "sell";

    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn nnz(&self) -> usize {
        Sell::nnz(self)
    }

    fn validate(&self) -> Result<(), FormatError> {
        self.config.validate()?;
        let c = self.config.c;
        let chunks = self.rows.div_ceil(c);
        if self.perm.len() != self.rows || self.row_len.len() != self.rows {
            return Err(FormatError::BadPointerArray(
                "perm/row_len length != rows".into(),
            ));
        }
        let mut seen = vec![false; self.rows];
        for &p in &self.perm {
            if p >= self.rows || seen[p] {
                return Err(FormatError::BadPointerArray(
                    "perm not a permutation".into(),
                ));
            }
            seen[p] = true;
        }
        if self.chunk_len.len() != chunks || self.chunk_ptr.len() != chunks + 1 {
            return Err(FormatError::BadPointerArray(
                "chunk arrays inconsistent with rows/C".into(),
            ));
        }
        if self.chunk_ptr.first() != Some(&0) {
            return Err(FormatError::BadPointerArray("chunk_ptr[0] != 0".into()));
        }
        for i in 0..chunks {
            if self.chunk_ptr[i + 1] - self.chunk_ptr[i] != c * self.chunk_len[i] {
                return Err(FormatError::BadPointerArray(format!(
                    "chunk {i} span != C * width"
                )));
            }
            let base = i * c;
            let lanes = c.min(self.rows - base);
            for k in 0..lanes {
                let p = base + k;
                if self.row_len[p] > self.chunk_len[i] {
                    return Err(FormatError::BadPointerArray(format!(
                        "row at position {p} longer than its chunk width"
                    )));
                }
                // Descending within the chunk — the prefix-active-lanes
                // property the kernels rely on (guaranteed by σ % C == 0).
                if k > 0 && self.row_len[p] > self.row_len[p - 1] {
                    return Err(FormatError::BadPointerArray(format!(
                        "row lengths not descending within chunk {i}"
                    )));
                }
            }
            for j in 0..self.chunk_len[i] {
                for k in 0..c {
                    let cell = self.chunk_ptr[i] + j * c + k;
                    let active = k < lanes && j < self.row_len[base + k];
                    let col = self.col_idx[cell];
                    if active {
                        if col >= self.cols {
                            return Err(FormatError::IndexOutOfBounds {
                                row: self.perm[base + k],
                                col,
                                rows: self.rows,
                                cols: self.cols,
                            });
                        }
                        if j > 0 {
                            let prev = self.col_idx[self.chunk_ptr[i] + (j - 1) * c + k];
                            if prev >= col {
                                return Err(FormatError::UnsortedIndices {
                                    outer: self.perm[base + k],
                                });
                            }
                        }
                    } else if col != self.cols || self.values[cell] != 0.0 {
                        return Err(FormatError::BadPointerArray(format!(
                            "padding cell {cell} not sentinel/zero"
                        )));
                    }
                }
            }
        }
        if self.col_idx.len() != *self.chunk_ptr.last().unwrap()
            || self.values.len() != self.col_idx.len()
        {
            return Err(FormatError::BadPointerArray(
                "data arrays inconsistent with chunk_ptr".into(),
            ));
        }
        Ok(())
    }

    fn from_coo(coo: &Coo) -> Result<Self, FormatError> {
        Sell::from_coo_with(coo, SellConfig::default())
    }

    fn to_coo(&self) -> Coo {
        let c = self.config.c;
        let mut coo = Coo::new(self.rows, self.cols);
        for i in 0..self.chunks() {
            let base = i * c;
            let lanes = c.min(self.rows - base);
            for k in 0..lanes {
                let p = base + k;
                for j in 0..self.row_len[p] {
                    let cell = self.chunk_ptr[i] + j * c + k;
                    coo.push(self.perm[p], self.col_idx[cell], self.values[cell]);
                }
            }
        }
        coo.canonicalize();
        coo
    }

    /// `y = A * x`, accumulating each row's products sequentially in
    /// ascending-column order — the *same* floating-point operation
    /// order as `Csr::spmv` on the same matrix, so the results are
    /// bit-identical (padding contributes no operations at all, which
    /// also keeps `-0.0` row sums intact).
    fn spmv(&self, x: &[Value]) -> Result<Vec<Value>, FormatError> {
        if x.len() != self.cols {
            return Err(FormatError::ShapeMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let c = self.config.c;
        let mut y = vec![0.0; self.rows];
        for i in 0..self.chunks() {
            let base = i * c;
            let lanes = c.min(self.rows - base);
            for k in 0..lanes {
                let p = base + k;
                let mut acc = 0.0;
                for j in 0..self.row_len[p] {
                    let cell = self.chunk_ptr[i] + j * c + k;
                    acc += self.values[cell] * x[self.col_idx[cell]];
                }
                y[self.perm[p]] = acc;
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::Csr;

    fn small_cfg() -> SellConfig {
        SellConfig { c: 4, sigma: 8 }
    }

    #[test]
    fn config_validation() {
        assert!(SellConfig::default().validate().is_ok());
        assert!(SellConfig { c: 0, sigma: 8 }.validate().is_err());
        assert!(SellConfig { c: 4, sigma: 0 }.validate().is_err());
        assert!(SellConfig { c: 4, sigma: 6 }.validate().is_err());
        assert!(matches!(
            Sell::from_coo_with(&Coo::new(2, 2), SellConfig { c: 3, sigma: 4 }),
            Err(FormatError::BadConfig(_))
        ));
    }

    #[test]
    fn construction_round_trips_generator_families() {
        for coo in [
            gen::structured::diagonal(40),
            gen::structured::tridiagonal(50),
            gen::random::uniform(64, 48, 300, 3),
            gen::random::power_law(80, 80, 10.0, 1.2, 4),
            Coo::new(10, 10),
            Coo::new(0, 0),
        ] {
            let sell = Sell::from_coo_with(&coo, small_cfg()).unwrap();
            SparseFormat::validate(&sell).unwrap();
            let mut expect = coo.clone();
            expect.canonicalize();
            assert_eq!(SparseFormat::to_coo(&sell), expect);
            assert_eq!(Sell::nnz(&sell), expect.nnz());
        }
    }

    #[test]
    fn chunk_widths_follow_sorted_lengths() {
        // Rows of lengths 1,4,2,3 with C=2, σ=4: global-window sort
        // gives perm [1,3,0,2], chunks (4,3) and (1,1) wide 4 and 1...
        let coo = Coo::from_triplets(
            4,
            5,
            vec![
                (0, 0, 1.0),
                (1, 0, 1.0),
                (1, 1, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 0, 1.0),
                (2, 4, 1.0),
                (3, 1, 1.0),
                (3, 2, 1.0),
                (3, 4, 1.0),
            ],
        )
        .unwrap();
        let sell = Sell::from_coo_with(&coo, SellConfig { c: 2, sigma: 4 }).unwrap();
        assert_eq!(sell.perm(), &[1, 3, 2, 0]);
        assert_eq!(sell.chunk_len(), &[4, 2]);
        assert_eq!(sell.row_len(), &[4, 3, 2, 1]);
        let stats = sell.chunk_stats();
        assert_eq!(stats.stored, 10);
        assert_eq!(stats.padded, (2 * 4 + 2 * 2) - 10);
    }

    #[test]
    fn spmv_is_bit_identical_to_csr() {
        for (coo, seed) in [
            (gen::random::uniform(200, 150, 2000, 5), 5),
            (gen::random::power_law(300, 300, 20.0, 1.0, 6), 6),
        ] {
            let _ = seed;
            let sell = Sell::from_coo_with(&coo, SellConfig { c: 8, sigma: 32 }).unwrap();
            let csr = Csr::from_coo(&coo);
            let x: Vec<f32> = (0..coo.cols()).map(|i| ((i % 9) as f32) - 4.0).collect();
            let a = SparseFormat::spmv(&sell, &x).unwrap();
            let b = csr.spmv(&x).unwrap();
            assert_eq!(a.len(), b.len());
            for (i, (u, v)) in a.iter().zip(&b).enumerate() {
                assert_eq!(u.to_bits(), v.to_bits(), "lane {i}");
            }
        }
    }

    #[test]
    fn occupancy_prediction_matches_construction() {
        for coo in [
            gen::random::power_law(300, 300, 12.0, 1.3, 9),
            gen::structured::diagonal(100),
        ] {
            let cfg = SellConfig { c: 8, sigma: 16 };
            let sell = Sell::from_coo_with(&coo, cfg).unwrap();
            let mut canon = coo.clone();
            canon.canonicalize();
            let lens = crate::format::row_lengths(&canon);
            let predicted = occupancy_from_lengths(&lens, cfg.c, cfg.sigma);
            assert!((sell.occupancy() - predicted).abs() < 1e-12);
        }
    }

    #[test]
    fn sigma_bounds_sorting_distance() {
        // With σ = C, no cross-window motion: perm is identity per chunk
        // window regardless of lengths.
        let coo = gen::random::power_law(64, 64, 6.0, 1.0, 11);
        let sell = Sell::from_coo_with(&coo, SellConfig { c: 4, sigma: 4 }).unwrap();
        for (p, &r) in sell.perm().iter().enumerate() {
            assert_eq!(p / 4, r / 4, "row {r} left its σ-window");
        }
    }

    #[test]
    fn empty_matrix_has_full_occupancy() {
        let sell = Sell::from_coo_with(&Coo::new(0, 0), small_cfg()).unwrap();
        assert_eq!(sell.chunks(), 0);
        assert_eq!(sell.occupancy(), 1.0);
        SparseFormat::validate(&sell).unwrap();
    }
}
