//! Sparse matrix substrate for the STM reproduction.
//!
//! This crate provides the storage formats, conversions, generators, and
//! matrix metrics that both the Hierarchical Sparse Matrix (HiSM) crate and
//! the evaluation harness are built on:
//!
//! * [`Coo`] — coordinate (triplet) format, the interchange format.
//! * [`Csr`] — compressed row storage (the paper's "CRS": `AN`/`JA`/`IA`),
//!   including the host-side reference of Pissanetsky's transposition
//!   algorithm (the baseline the paper compares against).
//! * [`Csc`] — compressed column storage, used as a transposition oracle.
//! * [`Dense`] — small dense matrices for exhaustive cross-checks.
//! * [`Jd`] — Jagged Diagonal storage, the third format of the HiSM
//!   papers' comparisons (long vectors via row-length sorting).
//! * [`Sell`] — SELL-C-σ (Kreutzer et al.), the chunked, sorted, padded
//!   SIMD-friendly format the ROADMAP's unified-format item calls for.
//! * [`mod@format`] — the [`SparseFormat`] trait every format implements,
//!   plus the shared construction helpers (compressed-pointer build,
//!   windowed length sort, canonical digest).
//! * [`mm`] — Matrix Market coordinate-format I/O (the paper's matrices come
//!   from the Matrix Market collection; real files can be dropped in).
//! * [`gen`] — seeded synthetic matrix generators used to rebuild the D-SAB
//!   benchmark suite.
//! * [`metrics`] — the three D-SAB sorting criteria: matrix size (nnz),
//!   locality, and average non-zeros per row.
//! * [`reorder`] — permutations and reverse Cuthill–McKee, the software
//!   lever on the locality metric.
//!
//! All formats use 32-bit floating point values ([`Value`]) because the
//! simulated machine is a 32-bit-word vector processor (the paper's memory
//! unit moves 32-bit words).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod format;
pub mod gen;
pub mod jd;
pub mod metrics;
pub mod mm;
pub mod reorder;
pub mod rng;
pub mod sell;
pub mod viz;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use error::FormatError;
pub use format::SparseFormat;
pub use jd::Jd;
pub use metrics::MatrixMetrics;
pub use sell::{Sell, SellConfig};

/// Scalar value type used by every matrix format in this workspace.
///
/// The simulated vector processor is a 32-bit-word machine (its memory unit
/// delivers four 32-bit words per cycle), so matrix values are `f32` and are
/// bit-cast into simulator memory words.
pub type Value = f32;

/// Shape of a matrix: `(rows, cols)`.
pub type Shape = (usize, usize);
