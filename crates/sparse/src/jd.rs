//! Jagged Diagonal storage (JD) — the third format of the HiSM papers'
//! comparisons ("a speedup … with respect to the Jagged Diagonal (JD) and
//! Compressed Row Storage (CRS) methods"), and the reason D-SAB sorts by
//! average non-zeros per row: "This metric is a good indication of the
//! efficiency of CRS versus JD."
//!
//! JD permutes rows by descending non-zero count and stores the k-th
//! non-zero of every (long-enough) row contiguously as the k-th *jagged
//! diagonal* — giving long vectors (good for vector processors) at the
//! price of a row permutation and column-index indirection.

use crate::{Coo, FormatError, Value};

/// A sparse matrix in Jagged Diagonal format.
#[derive(Debug, Clone, PartialEq)]
pub struct Jd {
    rows: usize,
    cols: usize,
    /// `perm[k]` = original index of the row in sorted position `k`.
    perm: Vec<usize>,
    /// Start of each jagged diagonal in `values`/`col_idx`
    /// (`jd_ptr.len() = max row length + 1`).
    jd_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Value>,
}

impl Jd {
    /// Builds JD from COO (canonicalized first). The descending stable
    /// row-length sort is the *global-window* case of the shared
    /// [`crate::format::length_sorted_perm`] helper (SELL-C-σ is the
    /// same sort with `window = σ`).
    pub fn from_coo(coo: &Coo) -> Self {
        let mut canon = coo.clone();
        canon.canonicalize();
        let (rows, cols) = canon.shape();
        let row_entries = crate::format::row_buckets(&canon);
        let lengths = crate::format::row_lengths(&canon);
        let perm = crate::format::length_sorted_perm(&lengths, rows.max(1));
        let max_len = perm.first().map_or(0, |&r| row_entries[r].len());

        let mut jd_ptr = Vec::with_capacity(max_len + 1);
        let mut col_idx = Vec::with_capacity(canon.nnz());
        let mut values = Vec::with_capacity(canon.nnz());
        jd_ptr.push(0);
        for diag in 0..max_len {
            for &r in &perm {
                if let Some(&(c, v)) = row_entries[r].get(diag) {
                    col_idx.push(c);
                    values.push(v);
                } else {
                    break; // rows are length-sorted: the rest are shorter
                }
            }
            jd_ptr.push(col_idx.len());
        }
        Jd {
            rows,
            cols,
            perm,
            jd_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of jagged diagonals (= longest row).
    pub fn num_diagonals(&self) -> usize {
        self.jd_ptr.len() - 1
    }

    /// Length of jagged diagonal `d` — the vector length a vector
    /// processor gets for that diagonal's operations.
    pub fn diagonal_len(&self, d: usize) -> usize {
        self.jd_ptr[d + 1] - self.jd_ptr[d]
    }

    /// The row permutation (`perm[k]` = original row stored at position
    /// `k` of every diagonal).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Diagonal start offsets into [`Self::col_idx`]/[`Self::values`]
    /// (`num_diagonals() + 1` entries, first 0, last `nnz`).
    pub fn jd_ptr(&self) -> &[usize] {
        &self.jd_ptr
    }

    /// Column indices, diagonal-major.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Values, diagonal-major (parallel to [`Self::col_idx`]).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Converts back to canonical COO.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols);
        for d in 0..self.num_diagonals() {
            let (a, b) = (self.jd_ptr[d], self.jd_ptr[d + 1]);
            for (k, idx) in (a..b).enumerate() {
                coo.push(self.perm[k], self.col_idx[idx], self.values[idx]);
            }
        }
        coo.canonicalize();
        coo
    }

    /// `y = A * x` over the jagged diagonals — the long-vector SpMV that
    /// motivates the format.
    pub fn spmv(&self, x: &[Value]) -> Result<Vec<Value>, FormatError> {
        if x.len() != self.cols {
            return Err(FormatError::ShapeMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for d in 0..self.num_diagonals() {
            let (a, b) = (self.jd_ptr[d], self.jd_ptr[d + 1]);
            for (k, idx) in (a..b).enumerate() {
                y[self.perm[k]] += self.values[idx] * x[self.col_idx[idx]];
            }
        }
        Ok(y)
    }

    /// Validates the structural invariants.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.jd_ptr.first() != Some(&0)
            || self.jd_ptr.windows(2).any(|w| w[0] > w[1])
            || self.jd_ptr.last() != Some(&self.values.len())
        {
            return Err(FormatError::BadPointerArray("jd_ptr malformed".into()));
        }
        // Diagonal lengths must be non-increasing.
        for d in 1..self.num_diagonals() {
            if self.diagonal_len(d) > self.diagonal_len(d - 1) {
                return Err(FormatError::BadPointerArray(
                    "jagged diagonals must shrink".into(),
                ));
            }
        }
        for &c in &self.col_idx {
            if c >= self.cols {
                return Err(FormatError::IndexOutOfBounds {
                    row: 0,
                    col: c,
                    rows: self.rows,
                    cols: self.cols,
                });
            }
        }
        let mut seen = vec![false; self.rows];
        for &p in &self.perm {
            if p >= self.rows || seen[p] {
                return Err(FormatError::BadPointerArray(
                    "perm not a permutation".into(),
                ));
            }
            seen[p] = true;
        }
        Ok(())
    }
}

impl crate::SparseFormat for Jd {
    const NAME: &'static str = "jd";

    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn nnz(&self) -> usize {
        Jd::nnz(self)
    }

    fn validate(&self) -> Result<(), FormatError> {
        Jd::validate(self)
    }

    fn from_coo(coo: &Coo) -> Result<Self, FormatError> {
        Ok(Jd::from_coo(coo))
    }

    fn to_coo(&self) -> Coo {
        Jd::to_coo(self)
    }

    fn spmv(&self, x: &[Value]) -> Result<Vec<Value>, FormatError> {
        Jd::spmv(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sample() -> Coo {
        Coo::from_triplets(
            4,
            5,
            vec![
                (0, 1, 1.0),
                (1, 0, 2.0),
                (1, 2, 3.0),
                (1, 4, 4.0),
                (2, 3, 5.0),
                (3, 0, 6.0),
                (3, 1, 7.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_sorts_rows_by_length() {
        let jd = Jd::from_coo(&sample());
        jd.validate().unwrap();
        // Row lengths: r0=1, r1=3, r2=1, r3=2 → perm starts with 1, 3.
        assert_eq!(&jd.perm()[..2], &[1, 3]);
        assert_eq!(jd.num_diagonals(), 3);
        assert_eq!(jd.diagonal_len(0), 4);
        assert_eq!(jd.diagonal_len(1), 2);
        assert_eq!(jd.diagonal_len(2), 1);
    }

    #[test]
    fn round_trip() {
        let coo = sample();
        let mut expect = coo.clone();
        expect.canonicalize();
        assert_eq!(Jd::from_coo(&coo).to_coo(), expect);
    }

    #[test]
    fn round_trip_generator_families() {
        for coo in [
            gen::structured::diagonal(40),
            gen::random::uniform(64, 64, 300, 3),
            gen::random::power_law(80, 80, 10.0, 1.2, 4),
            Coo::new(10, 10),
        ] {
            let jd = Jd::from_coo(&coo);
            jd.validate().unwrap();
            let mut expect = coo.clone();
            expect.canonicalize();
            assert_eq!(jd.to_coo(), expect);
        }
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = gen::random::uniform(50, 70, 400, 8);
        let jd = Jd::from_coo(&coo);
        let x: Vec<f32> = (0..70).map(|i| (i as f32 * 0.3).cos()).collect();
        let expect = coo.spmv(&x).unwrap();
        let got = jd.spmv(&x).unwrap();
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn diagonal_matrix_has_one_jagged_diagonal() {
        let jd = Jd::from_coo(&gen::structured::diagonal(30));
        assert_eq!(jd.num_diagonals(), 1);
        assert_eq!(jd.diagonal_len(0), 30);
    }

    #[test]
    fn empty_matrix() {
        let jd = Jd::from_coo(&Coo::new(5, 5));
        assert_eq!(jd.num_diagonals(), 0);
        assert_eq!(jd.to_coo().nnz(), 0);
        jd.validate().unwrap();
    }

    #[test]
    fn spmv_rejects_bad_length() {
        assert!(Jd::from_coo(&sample()).spmv(&[0.0; 3]).is_err());
    }
}
