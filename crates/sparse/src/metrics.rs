//! The three D-SAB matrix metrics used to organize the evaluation.
//!
//! The paper (Section IV-B) sorts its 132 candidate matrices by three
//! criteria and builds one 10-matrix experiment set per criterion:
//!
//! * **Matrix size** — the number of non-zeros (paper range 48 → 3 753 461).
//! * **Locality** — partition the matrix into 32×32 blocks; for each
//!   non-empty block divide its non-zero count by 32 ("to express the number
//!   in terms of the dimension of the block"); average over the non-empty
//!   blocks (paper range 0.07 → 12.85). High locality means dense blocks and
//!   is the regime the STM is designed for.
//! * **Average non-zeros per row** (ANZ) — nnz / rows (paper range 1 → 172).
//!   High ANZ favours the row-oriented CRS algorithm.

use crate::Coo;
use std::collections::HashMap;

/// Block dimension the locality metric is defined over (fixed to 32 by the
/// D-SAB definition, independent of the machine's section size).
pub const LOCALITY_BLOCK: usize = 32;

/// The D-SAB metrics of one matrix, extended with the row-shape
/// statistics the format cost model reads (row-length CV, max row
/// length, empty-row count, predicted SELL-C-σ occupancy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixMetrics {
    /// Number of non-zero elements ("matrix size" criterion).
    pub nnz: usize,
    /// Average non-zeros per non-empty 32×32 block, divided by 32.
    pub locality: f64,
    /// Average non-zeros per row.
    pub avg_nnz_per_row: f64,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Coefficient of variation of the row non-zero counts
    /// (population standard deviation / mean; `0` when the mean is 0).
    pub row_nnz_cv: f64,
    /// Largest row non-zero count.
    pub max_row_nnz: usize,
    /// Number of rows with no non-zeros.
    pub empty_rows: usize,
    /// Predicted SELL-C-σ chunk occupancy at the default `C = 64`,
    /// `σ = 512` (see [`crate::sell::occupancy_from_lengths`]);
    /// `1.0` for an empty matrix.
    pub sell_occupancy: f64,
}

impl Default for MatrixMetrics {
    /// All-zero metrics of an empty matrix (occupancy `1.0`).
    fn default() -> Self {
        MatrixMetrics {
            nnz: 0,
            locality: 0.0,
            avg_nnz_per_row: 0.0,
            rows: 0,
            cols: 0,
            row_nnz_cv: 0.0,
            max_row_nnz: 0,
            empty_rows: 0,
            sell_occupancy: 1.0,
        }
    }
}

impl MatrixMetrics {
    /// Computes all metrics for a COO matrix. Duplicate coordinates
    /// are counted once (the matrix is canonicalized first).
    pub fn compute(coo: &Coo) -> Self {
        let mut canon = coo.clone();
        canon.canonicalize();
        let nnz = canon.nnz();
        let locality = locality(&canon);
        let (rows, cols) = canon.shape();
        let lengths = crate::format::row_lengths(&canon);
        let mean = nnz as f64 / rows.max(1) as f64;
        let row_nnz_cv = if nnz == 0 {
            0.0
        } else {
            let var = lengths
                .iter()
                .map(|&l| (l as f64 - mean).powi(2))
                .sum::<f64>()
                / rows.max(1) as f64;
            var.sqrt() / mean
        };
        let cfg = crate::SellConfig::default();
        MatrixMetrics {
            nnz,
            locality,
            avg_nnz_per_row: mean,
            rows,
            cols,
            row_nnz_cv,
            max_row_nnz: lengths.iter().copied().max().unwrap_or(0),
            empty_rows: lengths.iter().filter(|&&l| l == 0).count(),
            sell_occupancy: crate::sell::occupancy_from_lengths(&lengths, cfg.c, cfg.sigma),
        }
    }
}

/// The D-SAB locality metric: average over the non-empty 32×32 blocks of
/// (non-zeros in block) / 32. Returns 0 for an empty matrix.
pub fn locality(coo: &Coo) -> f64 {
    locality_with_block(coo, LOCALITY_BLOCK)
}

/// Locality with a custom block dimension (used by the ablation benches to
/// relate the metric to the machine's section size).
pub fn locality_with_block(coo: &Coo, block: usize) -> f64 {
    assert!(block > 0, "block dimension must be positive");
    let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
    for &(r, c, _) in coo.iter() {
        *counts.entry((r / block, c / block)).or_insert(0) += 1;
    }
    if counts.is_empty() {
        return 0.0;
    }
    let total: usize = counts.values().sum();
    total as f64 / (counts.len() as f64 * block as f64)
}

/// Histogram of non-zeros per row — used by the suite report example.
pub fn row_nnz_histogram(coo: &Coo) -> Vec<usize> {
    let mut h = vec![0usize; coo.rows()];
    for &(r, _, _) in coo.iter() {
        h[r] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn diagonal_matrix_metrics() {
        // 64x64 identity: ANZ = 1; each 32x32 diagonal block holds 32
        // non-zeros so locality = 32/32 = 1.
        let mut coo = Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, i, 1.0);
        }
        let m = MatrixMetrics::compute(&coo);
        assert_eq!(m.nnz, 64);
        assert!((m.avg_nnz_per_row - 1.0).abs() < 1e-12);
        assert!((m.locality - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_dense_block_has_locality_32() {
        // One fully dense 32x32 block: 1024 non-zeros / 32 = 32.
        let mut coo = Coo::new(32, 32);
        for r in 0..32 {
            for c in 0..32 {
                coo.push(r, c, 1.0);
            }
        }
        assert!((locality(&coo) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn scattered_entries_have_minimal_locality() {
        // One entry per 32x32 block: locality = 1/32 ≈ 0.031, the floor.
        let mut coo = Coo::new(320, 320);
        for b in 0..10 {
            coo.push(b * 32, b * 32 + 1, 1.0);
        }
        assert!((locality(&coo) - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_locality_zero() {
        assert_eq!(locality(&Coo::new(10, 10)), 0.0);
    }

    #[test]
    fn duplicates_counted_once() {
        let coo = Coo::from_triplets(32, 32, vec![(0, 0, 1.0), (0, 0, 2.0)]).unwrap();
        let m = MatrixMetrics::compute(&coo);
        assert_eq!(m.nnz, 1);
    }

    #[test]
    fn custom_block_dimension() {
        let mut coo = Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, i, 1.0);
        }
        // With 64-wide blocks, one block with 64 nnz: 64/64 = 1.
        assert!((locality_with_block(&coo, 64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_metrics_are_degenerate_safe() {
        let m = MatrixMetrics::compute(&Coo::new(0, 0));
        assert_eq!(m, MatrixMetrics::default());
        let hollow = MatrixMetrics::compute(&Coo::new(7, 3));
        assert_eq!(hollow.nnz, 0);
        assert_eq!(hollow.rows, 7);
        assert_eq!(hollow.cols, 3);
        assert_eq!(hollow.row_nnz_cv, 0.0);
        assert_eq!(hollow.max_row_nnz, 0);
        assert_eq!(hollow.empty_rows, 7);
        assert_eq!(hollow.sell_occupancy, 1.0);
    }

    #[test]
    fn single_row_matrix_has_zero_cv() {
        let coo = Coo::from_triplets(1, 8, vec![(0, 1, 1.0), (0, 5, 2.0), (0, 7, 3.0)]).unwrap();
        let m = MatrixMetrics::compute(&coo);
        assert_eq!(m.rows, 1);
        assert_eq!(m.max_row_nnz, 3);
        assert_eq!(m.empty_rows, 0);
        assert!(m.row_nnz_cv.abs() < 1e-12, "uniform lengths ⇒ CV = 0");
        // One row in a C=64 chunk: 3 stored cells of 64*3 allocated
        // (the last chunk is padded to full height).
        assert!((m.sell_occupancy - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn dense_row_dominates_max_and_cv() {
        // One fully dense row among empties: CV = sqrt(n-1) for n rows.
        let mut coo = Coo::new(16, 16);
        for c in 0..16 {
            coo.push(0, c, 1.0);
        }
        let m = MatrixMetrics::compute(&coo);
        assert_eq!(m.max_row_nnz, 16);
        assert_eq!(m.empty_rows, 15);
        assert!(
            (m.row_nnz_cv - (15f64).sqrt()).abs() < 1e-9,
            "{}",
            m.row_nnz_cv
        );
        // One C=64 chunk of width 16: 16 stored cells of 64*16 allocated.
        assert!((m.sell_occupancy - 16.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_rows_have_zero_cv_and_full_occupancy() {
        let mut coo = Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, i, 1.0);
        }
        let m = MatrixMetrics::compute(&coo);
        assert_eq!(m.row_nnz_cv, 0.0);
        assert_eq!(m.sell_occupancy, 1.0);
        assert_eq!(m.max_row_nnz, 1);
    }

    #[test]
    fn row_histogram_counts() {
        let coo = Coo::from_triplets(3, 3, vec![(0, 0, 1.0), (0, 1, 1.0), (2, 2, 1.0)]).unwrap();
        assert_eq!(row_nnz_histogram(&coo), vec![2, 0, 1]);
    }
}
