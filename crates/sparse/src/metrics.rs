//! The three D-SAB matrix metrics used to organize the evaluation.
//!
//! The paper (Section IV-B) sorts its 132 candidate matrices by three
//! criteria and builds one 10-matrix experiment set per criterion:
//!
//! * **Matrix size** — the number of non-zeros (paper range 48 → 3 753 461).
//! * **Locality** — partition the matrix into 32×32 blocks; for each
//!   non-empty block divide its non-zero count by 32 ("to express the number
//!   in terms of the dimension of the block"); average over the non-empty
//!   blocks (paper range 0.07 → 12.85). High locality means dense blocks and
//!   is the regime the STM is designed for.
//! * **Average non-zeros per row** (ANZ) — nnz / rows (paper range 1 → 172).
//!   High ANZ favours the row-oriented CRS algorithm.

use crate::Coo;
use std::collections::HashMap;

/// Block dimension the locality metric is defined over (fixed to 32 by the
/// D-SAB definition, independent of the machine's section size).
pub const LOCALITY_BLOCK: usize = 32;

/// The D-SAB metrics of one matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixMetrics {
    /// Number of non-zero elements ("matrix size" criterion).
    pub nnz: usize,
    /// Average non-zeros per non-empty 32×32 block, divided by 32.
    pub locality: f64,
    /// Average non-zeros per row.
    pub avg_nnz_per_row: f64,
}

impl MatrixMetrics {
    /// Computes all three metrics for a COO matrix. Duplicate coordinates
    /// are counted once (the matrix is canonicalized first).
    pub fn compute(coo: &Coo) -> Self {
        let mut canon = coo.clone();
        canon.canonicalize();
        let nnz = canon.nnz();
        let locality = locality(&canon);
        let rows = canon.rows().max(1);
        MatrixMetrics {
            nnz,
            locality,
            avg_nnz_per_row: nnz as f64 / rows as f64,
        }
    }
}

/// The D-SAB locality metric: average over the non-empty 32×32 blocks of
/// (non-zeros in block) / 32. Returns 0 for an empty matrix.
pub fn locality(coo: &Coo) -> f64 {
    locality_with_block(coo, LOCALITY_BLOCK)
}

/// Locality with a custom block dimension (used by the ablation benches to
/// relate the metric to the machine's section size).
pub fn locality_with_block(coo: &Coo, block: usize) -> f64 {
    assert!(block > 0, "block dimension must be positive");
    let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
    for &(r, c, _) in coo.iter() {
        *counts.entry((r / block, c / block)).or_insert(0) += 1;
    }
    if counts.is_empty() {
        return 0.0;
    }
    let total: usize = counts.values().sum();
    total as f64 / (counts.len() as f64 * block as f64)
}

/// Histogram of non-zeros per row — used by the suite report example.
pub fn row_nnz_histogram(coo: &Coo) -> Vec<usize> {
    let mut h = vec![0usize; coo.rows()];
    for &(r, _, _) in coo.iter() {
        h[r] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn diagonal_matrix_metrics() {
        // 64x64 identity: ANZ = 1; each 32x32 diagonal block holds 32
        // non-zeros so locality = 32/32 = 1.
        let mut coo = Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, i, 1.0);
        }
        let m = MatrixMetrics::compute(&coo);
        assert_eq!(m.nnz, 64);
        assert!((m.avg_nnz_per_row - 1.0).abs() < 1e-12);
        assert!((m.locality - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_dense_block_has_locality_32() {
        // One fully dense 32x32 block: 1024 non-zeros / 32 = 32.
        let mut coo = Coo::new(32, 32);
        for r in 0..32 {
            for c in 0..32 {
                coo.push(r, c, 1.0);
            }
        }
        assert!((locality(&coo) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn scattered_entries_have_minimal_locality() {
        // One entry per 32x32 block: locality = 1/32 ≈ 0.031, the floor.
        let mut coo = Coo::new(320, 320);
        for b in 0..10 {
            coo.push(b * 32, b * 32 + 1, 1.0);
        }
        assert!((locality(&coo) - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_locality_zero() {
        assert_eq!(locality(&Coo::new(10, 10)), 0.0);
    }

    #[test]
    fn duplicates_counted_once() {
        let coo = Coo::from_triplets(32, 32, vec![(0, 0, 1.0), (0, 0, 2.0)]).unwrap();
        let m = MatrixMetrics::compute(&coo);
        assert_eq!(m.nnz, 1);
    }

    #[test]
    fn custom_block_dimension() {
        let mut coo = Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, i, 1.0);
        }
        // With 64-wide blocks, one block with 64 nnz: 64/64 = 1.
        assert!((locality_with_block(&coo, 64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_histogram_counts() {
        let coo = Coo::from_triplets(3, 3, vec![(0, 0, 1.0), (0, 1, 1.0), (2, 2, 1.0)]).unwrap();
        assert_eq!(row_nnz_histogram(&coo), vec![2, 0, 1]);
    }
}
