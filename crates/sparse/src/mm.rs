//! Matrix Market coordinate-format I/O.
//!
//! The paper's benchmark matrices come from the Matrix Market collection
//! [Boisvert et al.]. The synthetic D-SAB substitute in `stm-dsab` stands in
//! for the files themselves, but this reader/writer lets real `.mtx` files
//! be dropped into any experiment binary (`--mtx path`).
//!
//! Supported: `matrix coordinate (real|integer|pattern) (general|symmetric|
//! skew-symmetric)`. Pattern entries get value 1.0; symmetric matrices are
//! expanded to general form on read (mirroring off-diagonal entries), which
//! is what the transposition experiments need.

use crate::{Coo, FormatError, Value};
use std::io::{BufRead, BufReader, Read, Write};

/// Symmetry declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; `A[i][j] == A[j][i]`.
    Symmetric,
    /// Lower triangle stored; `A[i][j] == -A[j][i]`, zero diagonal.
    SkewSymmetric,
}

/// Field type declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Real floating point values.
    Real,
    /// Integer values (read as floats).
    Integer,
    /// Structure only; values default to 1.0.
    Pattern,
}

fn parse_header(line: &str) -> Result<(Field, Symmetry), FormatError> {
    let toks: Vec<String> = line
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(FormatError::Parse(format!(
            "bad MatrixMarket banner: {line:?}"
        )));
    }
    if toks[2] != "coordinate" {
        return Err(FormatError::Parse(format!(
            "only coordinate format is supported, got {:?}",
            toks[2]
        )));
    }
    let field = match toks[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(FormatError::Parse(format!(
                "unsupported field type {other:?}"
            )))
        }
    };
    let sym = match toks[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(FormatError::Parse(format!(
                "unsupported symmetry {other:?}"
            )))
        }
    };
    Ok((field, sym))
}

/// Reads a Matrix Market coordinate stream into a COO matrix.
///
/// Symmetric and skew-symmetric inputs are expanded to general form.
pub fn read_coo<R: Read>(reader: R) -> Result<Coo, FormatError> {
    let mut lines = BufReader::new(reader).lines();
    let banner = lines
        .next()
        .ok_or_else(|| FormatError::Parse("empty stream".into()))?
        .map_err(|e| FormatError::Parse(e.to_string()))?;
    let (field, sym) = parse_header(&banner)?;

    // Skip comment lines, find the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| FormatError::Parse("missing size line".into()))?
            .map_err(|e| FormatError::Parse(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| FormatError::Parse(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(FormatError::Parse(format!("bad size line: {size_line:?}")));
    }
    let (rows, cols, declared_nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::new(rows, cols);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| FormatError::Parse(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        let need = if field == Field::Pattern { 2 } else { 3 };
        if toks.len() < need {
            return Err(FormatError::Parse(format!("short entry line: {t:?}")));
        }
        let r: usize = toks[0]
            .parse()
            .map_err(|e: std::num::ParseIntError| FormatError::Parse(e.to_string()))?;
        let c: usize = toks[1]
            .parse()
            .map_err(|e: std::num::ParseIntError| FormatError::Parse(e.to_string()))?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(FormatError::IndexOutOfBounds {
                row: r,
                col: c,
                rows,
                cols,
            });
        }
        let v: Value = if field == Field::Pattern {
            1.0
        } else {
            toks[2]
                .parse::<f64>()
                .map_err(|e| FormatError::Parse(e.to_string()))? as Value
        };
        let (r, c) = (r - 1, c - 1); // Matrix Market is 1-based.
        coo.push(r, c, v);
        match sym {
            Symmetry::General => {}
            Symmetry::Symmetric if r != c => coo.push(c, r, v),
            Symmetry::SkewSymmetric if r != c => coo.push(c, r, -v),
            _ => {}
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(FormatError::Parse(format!(
            "header declared {declared_nnz} entries, found {seen}"
        )));
    }
    Ok(coo)
}

/// Writes a COO matrix as `matrix coordinate real general`.
pub fn write_coo<W: Write>(writer: &mut W, coo: &Coo) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by hism-stm")?;
    writeln!(writer, "{} {} {}", coo.rows(), coo.cols(), coo.nnz())?;
    for &(r, c, v) in coo.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "%%MatrixMarket matrix coordinate real general\n\
                          % a comment\n\
                          3 4 3\n\
                          1 1 1.5\n\
                          2 3 -2\n\
                          3 4 7\n";

    #[test]
    fn reads_general_real() {
        let coo = read_coo(SAMPLE.as_bytes()).unwrap();
        assert_eq!(coo.shape(), (3, 4));
        assert_eq!(coo.entries(), &[(0, 0, 1.5), (1, 2, -2.0), (2, 3, 7.0)]);
    }

    #[test]
    fn round_trip_write_read() {
        let coo = read_coo(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_coo(&mut buf, &coo).unwrap();
        let back = read_coo(&buf[..]).unwrap();
        assert_eq!(back, coo);
    }

    #[test]
    fn expands_symmetric() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
                   2 2 2\n\
                   1 1 1\n\
                   2 1 5\n";
        let mut coo = read_coo(src.as_bytes()).unwrap();
        coo.canonicalize();
        assert_eq!(coo.entries(), &[(0, 0, 1.0), (0, 1, 5.0), (1, 0, 5.0)]);
    }

    #[test]
    fn expands_skew_symmetric() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                   2 2 1\n\
                   2 1 3\n";
        let mut coo = read_coo(src.as_bytes()).unwrap();
        coo.canonicalize();
        assert_eq!(coo.entries(), &[(0, 1, -3.0), (1, 0, 3.0)]);
    }

    #[test]
    fn pattern_entries_default_to_one() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
                   2 2 1\n\
                   2 2\n";
        let coo = read_coo(src.as_bytes()).unwrap();
        assert_eq!(coo.entries(), &[(1, 1, 1.0)]);
    }

    #[test]
    fn rejects_bad_banner() {
        assert!(read_coo("%%NotMatrixMarket\n1 1 0\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_array_format() {
        assert!(
            read_coo("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n".as_bytes())
                .is_err()
        );
    }

    #[test]
    fn rejects_entry_count_mismatch() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1\n";
        assert!(matches!(
            read_coo(src.as_bytes()),
            Err(FormatError::Parse(_))
        ));
    }

    #[test]
    fn rejects_one_based_overflow() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n";
        assert!(matches!(
            read_coo(src.as_bytes()),
            Err(FormatError::IndexOutOfBounds { .. })
        ));
    }

    // ---- seeded byte-mutation fuzzing -----------------------------------
    //
    // The reader must return `FormatError` — never panic, never hang — on
    // arbitrarily corrupted input. Each property runs a fixed number of
    // deterministic cases; a failure prints the case index, which replays
    // it.

    use crate::rng::StdRng;

    const SYMMETRIC_SAMPLE: &str = "%%MatrixMarket matrix coordinate real symmetric\n\
                                    4 4 3\n1 1 2.5\n3 1 -1\n4 4 9\n";
    const PATTERN_SAMPLE: &str = "%%MatrixMarket matrix coordinate pattern general\n\
                                  5 3 2\n1 3\n5 1\n";

    /// Parsing corrupted bytes must yield `Ok` or `FormatError`; any panic
    /// fails the test by unwinding through it.
    fn assert_total(bytes: &[u8], case: &str) {
        match read_coo(bytes) {
            Ok(coo) => {
                // Whatever parses must at least be in-bounds.
                coo.validate(false)
                    .unwrap_or_else(|e| panic!("{case}: parsed out-of-bounds COO: {e}"));
            }
            Err(FormatError::Parse(_)) | Err(FormatError::IndexOutOfBounds { .. }) => {}
            Err(e) => panic!("{case}: unexpected error class: {e}"),
        }
    }

    #[test]
    fn fuzz_byte_mutations_never_panic() {
        for (si, sample) in [SAMPLE, SYMMETRIC_SAMPLE, PATTERN_SAMPLE]
            .iter()
            .enumerate()
        {
            let mut r = StdRng::seed_from_u64(0x6d6d_f422 ^ si as u64);
            for case in 0..400u32 {
                let mut bytes = sample.as_bytes().to_vec();
                // 1..=4 random single-byte mutations.
                for _ in 0..r.gen_range(1..5usize) {
                    let i = r.gen_range(0..bytes.len());
                    bytes[i] = (r.next_u64() & 0xff) as u8;
                }
                assert_total(&bytes, &format!("sample {si}, mutation case {case}"));
            }
        }
    }

    #[test]
    fn fuzz_truncations_never_panic() {
        for (si, sample) in [SAMPLE, SYMMETRIC_SAMPLE, PATTERN_SAMPLE]
            .iter()
            .enumerate()
        {
            for cut in 0..sample.len() {
                assert_total(
                    &sample.as_bytes()[..cut],
                    &format!("sample {si}, truncated at {cut}"),
                );
            }
        }
    }

    #[test]
    fn fuzz_garbage_streams_never_panic() {
        let mut r = StdRng::seed_from_u64(0xbadb17e5u64);
        for case in 0..300u32 {
            let n = r.gen_range(0..200usize);
            let bytes: Vec<u8> = (0..n).map(|_| (r.next_u64() & 0xff) as u8).collect();
            assert_total(&bytes, &format!("garbage case {case}"));
        }
        // Garbage that still starts with a valid banner.
        for case in 0..300u32 {
            let mut bytes = b"%%MatrixMarket matrix coordinate real general\n".to_vec();
            let n = r.gen_range(0..120usize);
            bytes.extend((0..n).map(|_| {
                // Bias toward digits/whitespace so the size line sometimes parses.
                let b = (r.next_u64() & 0xff) as u8;
                if r.gen_bool(0.6) {
                    b"0123456789 \n-"[b as usize % 13]
                } else {
                    b
                }
            }));
            assert_total(&bytes, &format!("banner-garbage case {case}"));
        }
    }
}
