//! A blocking `stm-serve` client: one TCP connection, one request in
//! flight at a time.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, FaultRequest, FrameError, Request,
    RequestBody, Response, DEFAULT_MAX_FRAME,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;
use stm_sparse::Coo;

/// A connected client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Client identity sent with every request (quota accounting).
    pub client_id: u64,
}

impl Client {
    /// Connects with the given identity and a `timeout_ms` read/write
    /// timeout.
    pub fn connect(addr: &str, client_id: u64, timeout_ms: u64) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let t = Some(Duration::from_millis(timeout_ms.max(1)));
        stream.set_read_timeout(t)?;
        stream.set_write_timeout(t)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, client_id })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, request_id: u64, body: RequestBody) -> Result<Response, String> {
        let req = Request {
            request_id,
            client_id: self.client_id,
            body,
        };
        write_frame(&mut self.stream, &encode_request(&req)).map_err(|e| format!("send: {e}"))?;
        let payload = match read_frame(&mut self.stream, DEFAULT_MAX_FRAME) {
            Ok(p) => p,
            Err(FrameError::Io(e)) => return Err(format!("recv: {e}")),
            Err(e) => return Err(format!("recv: {e}")),
        };
        decode_response(&payload)
    }

    /// Uploads `coo` under `matrix_id`.
    pub fn submit(
        &mut self,
        request_id: u64,
        matrix_id: u64,
        coo: &Coo,
    ) -> Result<Response, String> {
        let entries = coo
            .entries()
            .iter()
            .map(|&(r, c, v)| (r as u32, c as u32, v))
            .collect();
        self.request(
            request_id,
            RequestBody::Submit {
                matrix_id,
                rows: coo.rows() as u32,
                cols: coo.cols() as u32,
                entries,
            },
        )
    }

    /// Requests a transpose of `matrix_id`.
    pub fn transpose(
        &mut self,
        request_id: u64,
        matrix_id: u64,
        fault: Option<FaultRequest>,
    ) -> Result<Response, String> {
        self.request(request_id, RequestBody::Transpose { matrix_id, fault })
    }

    /// Requests an SpMV over `matrix_id`.
    pub fn spmv(
        &mut self,
        request_id: u64,
        matrix_id: u64,
        fault: Option<FaultRequest>,
    ) -> Result<Response, String> {
        self.request(request_id, RequestBody::Spmv { matrix_id, fault })
    }

    /// Replays the recorded result of completed request `target`.
    pub fn fetch(&mut self, request_id: u64, target: u64) -> Result<Response, String> {
        self.request(request_id, RequestBody::Fetch { target })
    }

    /// Reads the service counters.
    pub fn stats(&mut self, request_id: u64) -> Result<Response, String> {
        self.request(request_id, RequestBody::Stats)
    }

    /// Reads the live telemetry registry as Prometheus exposition text.
    pub fn metrics(&mut self, request_id: u64) -> Result<Response, String> {
        self.request(request_id, RequestBody::Metrics)
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&mut self, request_id: u64) -> Result<Response, String> {
        self.request(request_id, RequestBody::Shutdown)
    }

    /// Writes raw bytes on the connection — the chaos harness uses this
    /// to send deliberately corrupt frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Sends a request frame and drops the connection without reading
    /// the response — the chaos harness's killed-connection move.
    pub fn send_and_abandon(mut self, request_id: u64, body: RequestBody) -> Result<(), String> {
        let req = Request {
            request_id,
            client_id: self.client_id,
            body,
        };
        write_frame(&mut self.stream, &encode_request(&req)).map_err(|e| format!("send: {e}"))
    }
}
