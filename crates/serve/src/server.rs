//! The `stmserve` TCP server: a fault-tolerant front-end over the
//! resilient pipeline.
//!
//! ## Architecture
//!
//! ```text
//! accept loop ──► connection threads ──► bounded admission queue ──► worker pool
//!   (poll +          (frame codec,          (depth-limited,            (breaker decide →
//!    stop flag)       guards, timeouts)      per-client quotas,         execute_slot →
//!                                            RETRY_AFTER shedding)      commit, log, wake)
//! ```
//!
//! Every execution request flows through
//! [`stm_bench::resilient::execute_slot`] — the same breaker-decided
//! primary-attempt loop with seeded backoff and registry fallback the
//! soak pipeline uses — so the service inherits the whole resilience
//! stack rather than reimplementing it.
//!
//! ## Invariants
//!
//! * **Bounded memory** — the admission queue never holds more than
//!   `queue_depth` jobs; excess load is shed with `RETRY_AFTER` and the
//!   high-water mark is exported in `STATS` for CI to assert.
//! * **At-most-once execution** — `request_id` is the idempotency key: a
//!   re-sent in-flight id joins the original execution (no re-admit), a
//!   re-sent completed id replays the recorded result.
//! * **Breakers only where a fallback exists** — the transpose path
//!   degrades onto `transpose_ref`; SpMV has no registry fallback, so it
//!   gets no breaker (an open breaker would turn healthy requests into
//!   failures) and every SpMV runs. See DESIGN.md §13.
//! * **Durability** — each completed request is appended and flushed to
//!   the results log *before* its response is sent; a `kill -9` loses at
//!   most responses, never recorded results, and a restarted server
//!   re-serves `FETCH`es for every completed id.
//! * **Clean drain** — `SHUTDOWN` stops admission (`SHUTTING_DOWN` to
//!   new work), lets the queue and in-flight requests finish (each one
//!   checkpointed to the log as it lands), exports the server trace, and
//!   only then acknowledges.

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, FrameError, Op, Request, RequestBody,
    Response, ResponseBody, Status,
};
use crate::store::{ResultRecord, ResultsLog};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use stm_bench::resilient::{execute_slot, Breaker, BreakerConfig, Decision, RetryPolicy};
use stm_bench::{FaultSpec, RunConfig};
use stm_core::kernels::registry;
use stm_dsab::SuiteEntry;
use stm_obs::{Category, Lane, Recorder};
use stm_sparse::{Coo, MatrixMetrics};

/// The kernel each execution op dispatches to.
fn kernel_for(op: Op) -> &'static str {
    match op {
        Op::Spmv => "spmv_hism",
        _ => "transpose_hism",
    }
}

/// Server tuning. `Default` is sized for tests and local runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Admission queue depth — the bounded-memory knob.
    pub queue_depth: usize,
    /// Max in-flight (admitted, not yet completed) requests per client.
    pub quota: usize,
    /// Worker threads executing kernels.
    pub workers: usize,
    /// Frame payload cap in bytes (oversized-frame guard).
    pub max_frame: usize,
    /// Socket read/write timeout (slow-loris guard).
    pub io_timeout_ms: u64,
    /// Backoff hint sent with `RETRY_AFTER`.
    pub retry_after_ms: u32,
    /// Per-request cycle budget; exceeding it is a typed
    /// `DEADLINE_EXCEEDED`.
    pub deadline: Option<u64>,
    /// Circuit-breaker tuning for the transpose path.
    pub breaker: BreakerConfig,
    /// Bounded-retry tuning for primary kernel attempts.
    pub retry: RetryPolicy,
    /// Durable results log; `None` disables durability (tests).
    pub results_log: Option<std::path::PathBuf>,
    /// Directory for the server event trace, exported at shutdown.
    pub trace: Option<std::path::PathBuf>,
    /// Execution backend for the primary kernels (`--backend`). Host
    /// backends serve requests from the native tier; the breaker
    /// fallback always runs on the simulator regardless.
    pub backend: registry::Backend,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 8,
            quota: 4,
            workers: 4,
            max_frame: crate::protocol::DEFAULT_MAX_FRAME,
            io_timeout_ms: 10_000,
            retry_after_ms: 2,
            deadline: None,
            breaker: BreakerConfig::default(),
            retry: RetryPolicy::default(),
            results_log: None,
            trace: None,
            backend: registry::Backend::Sim,
        }
    }
}

/// A point-in-time snapshot of the service counters — the `STATS`
/// payload, in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Execution requests admitted to the queue.
    pub accepted: u64,
    /// Execution requests completed (any terminal status).
    pub completed: u64,
    /// Requests shed with `RETRY_AFTER` because the queue was full.
    pub shed: u64,
    /// Completed requests whose result came from the fallback kernel.
    pub degraded: u64,
    /// High-water mark of the admission queue.
    pub queue_depth_max: u64,
    /// The configured queue depth (the bound `queue_depth_max` must
    /// respect).
    pub queue_depth_limit: u64,
    /// Matrices currently stored.
    pub matrices: u64,
    /// Frames rejected by the magic/size/parse guards.
    pub bad_frames: u64,
}

impl StatsSnapshot {
    /// Wire encoding: the fields as a `u64` list, in declaration order.
    pub fn to_vec(self) -> Vec<u64> {
        vec![
            self.accepted,
            self.completed,
            self.shed,
            self.degraded,
            self.queue_depth_max,
            self.queue_depth_limit,
            self.matrices,
            self.bad_frames,
        ]
    }

    /// Decodes [`StatsSnapshot::to_vec`] output.
    pub fn from_vec(v: &[u64]) -> Option<StatsSnapshot> {
        if v.len() < 8 {
            return None;
        }
        Some(StatsSnapshot {
            accepted: v[0],
            completed: v[1],
            shed: v[2],
            degraded: v[3],
            queue_depth_max: v[4],
            queue_depth_limit: v[5],
            matrices: v[6],
            bad_frames: v[7],
        })
    }
}

/// One admitted execution job.
struct Job {
    request_id: u64,
    client_id: u64,
    op: Op,
    matrix_id: u64,
    entry: Arc<SuiteEntry>,
    fault: Option<FaultSpec>,
}

#[derive(Default)]
struct State {
    matrices: HashMap<u64, Arc<SuiteEntry>>,
    queue: VecDeque<Job>,
    /// Admitted-but-not-completed request ids, with the owning client.
    pending: HashMap<u64, u64>,
    pending_by_client: HashMap<u64, usize>,
    completed: HashMap<u64, ResultRecord>,
    stats: StatsSnapshot,
    /// No new work admitted; drain in progress.
    draining: bool,
    /// Workers and the accept loop should exit.
    stopped: bool,
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<State>,
    /// Wakes workers (queue push, stop).
    work: Condvar,
    /// Wakes request waiters and the drain (completion, stop).
    done: Condvar,
    /// One breaker per kernel *with a registry fallback*, with its
    /// monotone decision sequence.
    breakers: Mutex<HashMap<&'static str, (Breaker, u64)>>,
    run: RunConfig,
    log: Mutex<Option<ResultsLog>>,
    rec: Recorder,
    /// Global event sequence — the `Lane::Serve` timestamp domain. A
    /// mutex (not an atomic) so the sequence draw and the ring append
    /// happen as one step: `check::validate` requires per-lane monotone
    /// timestamps in record order.
    seq: Mutex<u64>,
}

impl Shared {
    fn tick(&self, name: &'static str) {
        if !self.rec.is_enabled() {
            return;
        }
        let mut seq = self.seq.lock().unwrap();
        self.rec.instant(Lane::Serve, Category::Serve, name, *seq);
        *seq += 1;
    }
}

/// A running server. Dropping the handle does not stop it; send
/// `SHUTDOWN` (or use `stmload --shutdown`) and call [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers the results log, and spawns the accept loop and
    /// worker pool.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let mut state = State {
            stats: StatsSnapshot {
                queue_depth_limit: cfg.queue_depth as u64,
                ..StatsSnapshot::default()
            },
            ..State::default()
        };
        let log = match &cfg.results_log {
            Some(path) => {
                let (log, records) = ResultsLog::open(path)?;
                for rec in records {
                    state.stats.completed += 1;
                    if rec.degraded {
                        state.stats.degraded += 1;
                    }
                    state.completed.insert(rec.request_id, rec);
                }
                Some(log)
            }
            None => None,
        };

        let mut run = RunConfig {
            jobs: Some(1),
            verify: true,
            backend: cfg.backend,
            ..RunConfig::default()
        };
        run.vp.cycle_budget = cfg.deadline;

        let workers_n = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            work: Condvar::new(),
            done: Condvar::new(),
            breakers: Mutex::new(HashMap::new()),
            run,
            log: Mutex::new(log),
            rec: if cfg.trace.is_some() {
                Recorder::enabled_default()
            } else {
                Recorder::disabled()
            },
            seq: Mutex::new(0),
            cfg,
        });

        let workers = (0..workers_n)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        let sh = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&sh, &listener));
        Ok(Server {
            shared,
            addr,
            accept,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for a clean `SHUTDOWN`-initiated stop.
    pub fn join(self) {
        self.accept.join().ok();
        for w in self.workers {
            w.join().ok();
        }
    }

    /// A stats snapshot, for in-process tests.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.state.lock().unwrap().stats
    }
}

fn accept_loop(sh: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if sh.state.lock().unwrap().stopped {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                sh.tick("serve.accept");
                let sh = Arc::clone(sh);
                std::thread::spawn(move || {
                    handle_connection(&sh, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(sh: &Arc<Shared>, stream: TcpStream) {
    let timeout = Some(Duration::from_millis(sh.cfg.io_timeout_ms.max(1)));
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        return;
    }
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader, sh.cfg.max_frame) {
            Ok(p) => p,
            Err(FrameError::Io(_)) => return, // EOF, timeout (slow loris), reset
            Err(FrameError::BadMagic(_)) => {
                count_bad_frame(sh);
                respond(&mut writer, &Response::empty(Status::BadFrame, 0));
                return; // framing is lost; drop the connection
            }
            Err(FrameError::TooLarge(_)) => {
                count_bad_frame(sh);
                respond(&mut writer, &Response::empty(Status::TooLarge, 0));
                return;
            }
        };
        let req = match decode_request(&payload) {
            Ok(r) => r,
            Err(None) => {
                count_bad_frame(sh);
                respond(&mut writer, &Response::empty(Status::UnknownOp, 0));
                continue;
            }
            Err(Some(_)) => {
                count_bad_frame(sh);
                respond(&mut writer, &Response::empty(Status::BadFrame, 0));
                return;
            }
        };
        let shutdown = matches!(req.body, RequestBody::Shutdown);
        let resp = handle_request(sh, req);
        let sent = respond(&mut writer, &resp);
        if shutdown && resp.status == Status::Ok {
            finish_shutdown(sh);
            return;
        }
        if !sent {
            return;
        }
    }
}

fn respond(w: &mut impl std::io::Write, resp: &Response) -> bool {
    write_frame(w, &encode_response(resp)).is_ok()
}

fn count_bad_frame(sh: &Shared) {
    sh.tick("serve.frame.bad");
    sh.rec.add("serve.frames.bad", 1);
    sh.state.lock().unwrap().stats.bad_frames += 1;
}

fn handle_request(sh: &Arc<Shared>, req: Request) -> Response {
    match req.body {
        RequestBody::Submit {
            matrix_id,
            rows,
            cols,
            entries,
        } => handle_submit(sh, req.request_id, matrix_id, rows, cols, &entries),
        RequestBody::Transpose { matrix_id, fault } | RequestBody::Spmv { matrix_id, fault } => {
            let op = if matches!(req.body, RequestBody::Spmv { .. }) {
                Op::Spmv
            } else {
                Op::Transpose
            };
            handle_execute(sh, &req, op, matrix_id, fault)
        }
        RequestBody::Fetch { target } => handle_fetch(sh, req.request_id, target),
        RequestBody::Stats => {
            sh.tick("serve.stats");
            let stats = sh.state.lock().unwrap().stats;
            Response {
                status: Status::Ok,
                degraded: false,
                request_id: req.request_id,
                body: ResponseBody::Stats(stats.to_vec()),
            }
        }
        RequestBody::Shutdown => handle_shutdown(sh, req.request_id),
    }
}

fn handle_submit(
    sh: &Arc<Shared>,
    request_id: u64,
    matrix_id: u64,
    rows: u32,
    cols: u32,
    entries: &[(u32, u32, f32)],
) -> Response {
    let triplets: Vec<(usize, usize, f32)> = entries
        .iter()
        .map(|&(r, c, v)| (r as usize, c as usize, v))
        .collect();
    let coo = match Coo::from_triplets(rows as usize, cols as usize, triplets) {
        Ok(c) => c,
        Err(_) => return Response::empty(Status::BadFrame, request_id),
    };
    let mut state = sh.state.lock().unwrap();
    if state.draining {
        return Response::empty(Status::ShuttingDown, request_id);
    }
    // Idempotent: re-submitting an id keeps the first copy.
    state.matrices.entry(matrix_id).or_insert_with(|| {
        let metrics = MatrixMetrics::compute(&coo);
        Arc::new(SuiteEntry {
            name: format!("m{matrix_id:x}"),
            coo,
            metrics,
        })
    });
    state.stats.matrices = state.matrices.len() as u64;
    drop(state);
    sh.tick("serve.submit");
    Response::empty(Status::Ok, request_id)
}

fn record_to_response(rec: &ResultRecord) -> Response {
    Response {
        status: rec.status,
        degraded: rec.degraded,
        request_id: rec.request_id,
        body: if rec.status == Status::Ok {
            ResponseBody::Digest(rec.digest)
        } else {
            ResponseBody::Empty
        },
    }
}

fn handle_execute(
    sh: &Arc<Shared>,
    req: &Request,
    op: Op,
    matrix_id: u64,
    fault: Option<crate::protocol::FaultRequest>,
) -> Response {
    let mut state = sh.state.lock().unwrap();
    // Idempotency, completed side: replay the recorded result.
    if let Some(rec) = state.completed.get(&req.request_id) {
        return record_to_response(rec);
    }
    // Idempotency, in-flight side: join the original execution.
    if state.pending.contains_key(&req.request_id) {
        loop {
            state = sh.done.wait(state).unwrap();
            if let Some(rec) = state.completed.get(&req.request_id) {
                return record_to_response(rec);
            }
            if !state.pending.contains_key(&req.request_id) {
                // Evaporated without completing (cannot happen today);
                // fail typed rather than hanging.
                return Response::empty(Status::KernelFailed, req.request_id);
            }
        }
    }
    if state.draining {
        return Response::empty(Status::ShuttingDown, req.request_id);
    }
    let entry = match state.matrices.get(&matrix_id) {
        Some(e) => Arc::clone(e),
        None => return Response::empty(Status::UnknownMatrix, req.request_id),
    };
    let in_flight = state
        .pending_by_client
        .get(&req.client_id)
        .copied()
        .unwrap_or(0);
    if in_flight >= sh.cfg.quota.max(1) {
        return Response::empty(Status::QuotaExceeded, req.request_id);
    }
    // Bounded admission: shed rather than grow.
    if state.queue.len() >= sh.cfg.queue_depth.max(1) {
        state.stats.shed += 1;
        drop(state);
        sh.tick("serve.shed");
        sh.rec.add("serve.shed", 1);
        return Response {
            status: Status::RetryAfter,
            degraded: false,
            request_id: req.request_id,
            body: ResponseBody::RetryAfterMs(sh.cfg.retry_after_ms),
        };
    }
    state.pending.insert(req.request_id, req.client_id);
    *state.pending_by_client.entry(req.client_id).or_insert(0) += 1;
    state.queue.push_back(Job {
        request_id: req.request_id,
        client_id: req.client_id,
        op,
        matrix_id,
        entry,
        fault: fault.map(|f| FaultSpec {
            index: 0,
            class: f.class,
            seed: f.seed,
        }),
    });
    state.stats.accepted += 1;
    let depth = state.queue.len() as u64;
    state.stats.queue_depth_max = state.stats.queue_depth_max.max(depth);
    sh.rec.observe("serve.queue.depth", depth);
    sh.work.notify_one();
    sh.tick("serve.enqueue");

    // Wait for the worker pool to complete this id.
    loop {
        state = sh.done.wait(state).unwrap();
        if let Some(rec) = state.completed.get(&req.request_id) {
            return record_to_response(rec);
        }
    }
}

fn handle_fetch(sh: &Arc<Shared>, request_id: u64, target: u64) -> Response {
    sh.tick("serve.fetch");
    let state = sh.state.lock().unwrap();
    match state.completed.get(&target) {
        Some(rec) => {
            let mut resp = record_to_response(rec);
            resp.request_id = request_id;
            resp
        }
        None => Response::empty(Status::NotFound, request_id),
    }
}

fn handle_shutdown(sh: &Arc<Shared>, request_id: u64) -> Response {
    sh.tick("serve.drain");
    let mut state = sh.state.lock().unwrap();
    state.draining = true;
    // Clean drain: every admitted request completes and is checkpointed
    // to the results log before we acknowledge.
    while !state.queue.is_empty() || !state.pending.is_empty() {
        state = sh.done.wait(state).unwrap();
    }
    drop(state);
    sh.tick("serve.shutdown");
    if let Some(dir) = &sh.cfg.trace {
        let data = sh.rec.snapshot();
        if let Err(e) = stm_bench::trace::export_trace(dir, "serve", "serve", &data) {
            eprintln!("stmserve: trace export failed: {e}");
        }
    }
    Response::empty(Status::Ok, request_id)
}

/// Flips the stop flag after the shutdown ack went out, releasing the
/// accept loop and the worker pool.
fn finish_shutdown(sh: &Arc<Shared>) {
    let mut state = sh.state.lock().unwrap();
    state.stopped = true;
    drop(state);
    sh.work.notify_all();
    sh.done.notify_all();
}

fn worker_loop(sh: &Arc<Shared>) {
    loop {
        let job = {
            let mut state = sh.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.stopped {
                    return;
                }
                state = sh.work.wait(state).unwrap();
            }
        };
        execute_job(sh, job);
    }
}

fn execute_job(sh: &Arc<Shared>, job: Job) {
    sh.tick("serve.execute");
    let kernel = kernel_for(job.op);

    // Breakers guard only kernels with a registry fallback: skipping a
    // fallback-less kernel would fail healthy requests (DESIGN.md §13).
    let decision = if registry::fallback_for(kernel).is_some() {
        let mut breakers = sh.breakers.lock().unwrap();
        let (breaker, seq) = breakers
            .entry(kernel)
            .or_insert_with(|| (Breaker::new(sh.cfg.breaker), 0));
        let d = breaker.decide(*seq);
        *seq += 1;
        d
    } else {
        Decision::Run
    };

    // The expensive part runs outside every lock. `index` keys the
    // retry-jitter stream only.
    let outcome = execute_slot(
        &sh.run,
        &sh.cfg.retry,
        &job.entry,
        job.request_id as usize,
        kernel,
        decision,
        job.fault.as_ref(),
    );

    if registry::fallback_for(kernel).is_some() {
        let mut breakers = sh.breakers.lock().unwrap();
        if let Some((breaker, seq)) = breakers.get_mut(kernel) {
            breaker.commit(decision, outcome.outcome, *seq);
        }
    }

    let status = match (&outcome.report, &outcome.failure) {
        (Some(_), _) => Status::Ok,
        (None, Some(f)) => match f.error {
            stm_core::kernels::registry::KernelError::DeadlineExceeded(_) => {
                Status::DeadlineExceeded
            }
            _ => Status::KernelFailed,
        },
        (None, None) => Status::KernelFailed,
    };
    // Canonical digest: format-independent, so a degraded transpose
    // (fallback emits a different encoding than the primary) digests
    // identically to the primary result.
    let digest = outcome
        .report
        .as_ref()
        .and_then(|r| r.output.canonical_digest())
        .unwrap_or(0);
    let rec = ResultRecord {
        request_id: job.request_id,
        client_id: job.client_id,
        op: job.op,
        matrix_id: job.matrix_id,
        status,
        degraded: outcome.degraded,
        digest,
    };

    // Durability before visibility: the record hits the flushed log
    // before any response can be built from it.
    if let Some(log) = sh.log.lock().unwrap().as_mut() {
        if let Err(e) = log.append(&rec) {
            eprintln!("stmserve: results log append failed: {e}");
        }
    }

    let mut state = sh.state.lock().unwrap();
    state.pending.remove(&job.request_id);
    if let Some(n) = state.pending_by_client.get_mut(&job.client_id) {
        *n = n.saturating_sub(1);
    }
    state.stats.completed += 1;
    if rec.degraded {
        state.stats.degraded += 1;
        sh.rec.add("serve.degraded", 1);
    }
    state.completed.insert(job.request_id, rec);
    drop(state);
    sh.rec.add("serve.completed", 1);
    sh.tick("serve.commit");
    sh.done.notify_all();
}
