//! The `stmserve` TCP server: a fault-tolerant front-end over the
//! resilient pipeline.
//!
//! ## Architecture
//!
//! ```text
//! accept loop ──► connection threads ──► bounded admission queue ──► worker pool
//!   (poll +          (frame codec,          (depth-limited,            (breaker decide →
//!    stop flag)       guards, timeouts)      per-client quotas,         execute_slot →
//!                                            RETRY_AFTER shedding)      commit, log, wake)
//! ```
//!
//! Every execution request flows through
//! [`stm_bench::resilient::execute_slot`] — the same breaker-decided
//! primary-attempt loop with seeded backoff and registry fallback the
//! soak pipeline uses — so the service inherits the whole resilience
//! stack rather than reimplementing it.
//!
//! ## Invariants
//!
//! * **Bounded memory** — the admission queue never holds more than
//!   `queue_depth` jobs; excess load is shed with `RETRY_AFTER` and the
//!   high-water mark is exported in `STATS` for CI to assert.
//! * **At-most-once execution** — `request_id` is the idempotency key: a
//!   re-sent in-flight id joins the original execution (no re-admit), a
//!   re-sent completed id replays the recorded result.
//! * **Breakers only where a fallback exists** — the transpose path
//!   degrades onto `transpose_ref`; SpMV has no registry fallback, so it
//!   gets no breaker (an open breaker would turn healthy requests into
//!   failures) and every SpMV runs. See DESIGN.md §13.
//! * **Durability** — each completed request is appended and flushed to
//!   the results log *before* its response is sent; a `kill -9` loses at
//!   most responses, never recorded results, and a restarted server
//!   re-serves `FETCH`es for every completed id.
//! * **Clean drain** — `SHUTDOWN` stops admission (`SHUTTING_DOWN` to
//!   new work), lets the queue and in-flight requests finish (each one
//!   checkpointed to the log as it lands), exports the server trace, and
//!   only then acknowledges.

use crate::flight::FlightRecorder;
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, FrameError, Op, Request, RequestBody,
    Response, ResponseBody, Status,
};
use crate::store::{ResultRecord, ResultsLog};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use stm_bench::resilient::{
    execute_slot, Breaker, BreakerConfig, BreakerState, Decision, RetryPolicy,
};
use stm_bench::{FaultSpec, RunConfig};
use stm_core::kernels::registry;
use stm_dsab::SuiteEntry;
use stm_obs::{telemetry, Category, Lane, MetricsRegistry, Recorder, SpanCtx};
use stm_sparse::{Coo, MatrixMetrics};

/// `DEADLINE_EXCEEDED` completions within one flight window that count
/// as a storm and trigger a flight dump.
const DEADLINE_STORM: usize = 3;

/// Per-request trace ring capacity. A request's structural story (serve
/// root, resil slot, stage/phase/fault events per attempt) is a few
/// dozen events; 4096 leaves room for pathological retry chains without
/// ever dropping (dropped events would mark the merged trace lossy).
const REQUEST_TRACE_CAPACITY: usize = 4096;

/// The kernel each execution op dispatches to.
fn kernel_for(op: Op) -> &'static str {
    match op {
        Op::Spmv => "spmv_hism",
        _ => "transpose_hism",
    }
}

/// Server tuning. `Default` is sized for tests and local runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Admission queue depth — the bounded-memory knob.
    pub queue_depth: usize,
    /// Max in-flight (admitted, not yet completed) requests per client.
    pub quota: usize,
    /// Worker threads executing kernels.
    pub workers: usize,
    /// Frame payload cap in bytes (oversized-frame guard).
    pub max_frame: usize,
    /// Socket read/write timeout (slow-loris guard).
    pub io_timeout_ms: u64,
    /// Backoff hint sent with `RETRY_AFTER`.
    pub retry_after_ms: u32,
    /// Per-request cycle budget; exceeding it is a typed
    /// `DEADLINE_EXCEEDED`.
    pub deadline: Option<u64>,
    /// Circuit-breaker tuning for the transpose path.
    pub breaker: BreakerConfig,
    /// Bounded-retry tuning for primary kernel attempts.
    pub retry: RetryPolicy,
    /// Durable results log; `None` disables durability (tests).
    pub results_log: Option<std::path::PathBuf>,
    /// Directory for the server event trace, exported at shutdown.
    pub trace: Option<std::path::PathBuf>,
    /// Execution backend for the primary kernels (`--backend`). Host
    /// backends serve requests from the native tier; the breaker
    /// fallback always runs on the simulator regardless.
    pub backend: registry::Backend,
    /// Optional bind address for the plain-text metrics exposition
    /// listener (`--metrics-addr`); `None` disables the listener. The
    /// registry itself is always live — `METRICS` works regardless.
    pub metrics_addr: Option<String>,
    /// Directory for crash flight-recorder dumps (`--flight-dir`);
    /// `None` disables dumps (the ring still records).
    pub flight_dir: Option<std::path::PathBuf>,
    /// Flight-recorder dump window in milliseconds (`--flight-window`).
    pub flight_window_ms: u64,
    /// Test hook (`--flight-every`): also dump the flight ring after
    /// every N completed requests.
    pub flight_every: Option<u64>,
    /// Output-integrity verification tier for every execution request
    /// (`--verify-mode`). Under `dual`/`vote` a silent wrong answer is
    /// caught by cross-backend re-execution *before* the reply: the
    /// majority digest is served transparently, and only an
    /// unrecoverable disagreement surfaces as `DATA_CORRUPT`.
    pub verify_mode: stm_bench::resilient::VerifyMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 8,
            quota: 4,
            workers: 4,
            max_frame: crate::protocol::DEFAULT_MAX_FRAME,
            io_timeout_ms: 10_000,
            retry_after_ms: 2,
            deadline: None,
            breaker: BreakerConfig::default(),
            retry: RetryPolicy::default(),
            results_log: None,
            trace: None,
            backend: registry::Backend::Sim,
            metrics_addr: None,
            flight_dir: None,
            flight_window_ms: 10_000,
            flight_every: None,
            verify_mode: stm_bench::resilient::VerifyMode::Off,
        }
    }
}

/// Stable wire index for the configured backend (the `STATS` payload
/// cannot carry a string).
fn backend_index(b: registry::Backend) -> u64 {
    match b {
        registry::Backend::Sim => 0,
        registry::Backend::Scalar => 1,
        registry::Backend::Simd => 2,
        registry::Backend::Auto => 3,
    }
}

/// A point-in-time snapshot of the service counters — the `STATS`
/// payload, in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Execution requests admitted to the queue.
    pub accepted: u64,
    /// Execution requests completed (any terminal status).
    pub completed: u64,
    /// Requests shed with `RETRY_AFTER` because the queue was full.
    pub shed: u64,
    /// Completed requests whose result came from the fallback kernel.
    pub degraded: u64,
    /// High-water mark of the admission queue.
    pub queue_depth_max: u64,
    /// The configured queue depth (the bound `queue_depth_max` must
    /// respect).
    pub queue_depth_limit: u64,
    /// Matrices currently stored.
    pub matrices: u64,
    /// Frames rejected by the magic/size/parse guards.
    pub bad_frames: u64,
    /// Jobs sitting in the admission queue *right now* (live, not a
    /// high-water mark).
    pub queue_depth: u64,
    /// Admitted-but-not-completed requests right now.
    pub in_flight: u64,
    /// Completed requests whose terminal status was not `OK`.
    pub failed: u64,
    /// The serving backend as a stable wire index (`0` = sim, `1` =
    /// scalar host, `2` = SIMD host, `3` = auto).
    pub backend: u64,
}

impl StatsSnapshot {
    /// Wire encoding: the fields as a `u64` list, in declaration order.
    pub fn to_vec(self) -> Vec<u64> {
        vec![
            self.accepted,
            self.completed,
            self.shed,
            self.degraded,
            self.queue_depth_max,
            self.queue_depth_limit,
            self.matrices,
            self.bad_frames,
            self.queue_depth,
            self.in_flight,
            self.failed,
            self.backend,
        ]
    }

    /// Decodes [`StatsSnapshot::to_vec`] output. Tolerates short
    /// payloads down to the original eight fields (a newer client
    /// reading an older server sees zeros for the live fields), so the
    /// wire format stays forward- and backward-compatible.
    pub fn from_vec(v: &[u64]) -> Option<StatsSnapshot> {
        if v.len() < 8 {
            return None;
        }
        let get = |i: usize| v.get(i).copied().unwrap_or(0);
        Some(StatsSnapshot {
            accepted: v[0],
            completed: v[1],
            shed: v[2],
            degraded: v[3],
            queue_depth_max: v[4],
            queue_depth_limit: v[5],
            matrices: v[6],
            bad_frames: v[7],
            queue_depth: get(8),
            in_flight: get(9),
            failed: get(10),
            backend: get(11),
        })
    }
}

/// One admitted execution job.
struct Job {
    request_id: u64,
    client_id: u64,
    op: Op,
    matrix_id: u64,
    entry: Arc<SuiteEntry>,
    fault: Option<FaultSpec>,
}

#[derive(Default)]
struct State {
    matrices: HashMap<u64, Arc<SuiteEntry>>,
    queue: VecDeque<Job>,
    /// Admitted-but-not-completed request ids, with the owning client.
    pending: HashMap<u64, u64>,
    pending_by_client: HashMap<u64, usize>,
    completed: HashMap<u64, ResultRecord>,
    stats: StatsSnapshot,
    /// No new work admitted; drain in progress.
    draining: bool,
    /// Workers and the accept loop should exit.
    stopped: bool,
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<State>,
    /// Wakes workers (queue push, stop).
    work: Condvar,
    /// Wakes request waiters and the drain (completion, stop).
    done: Condvar,
    /// One breaker per kernel *with a registry fallback*, with its
    /// monotone decision sequence.
    breakers: Mutex<HashMap<&'static str, (Breaker, u64)>>,
    run: RunConfig,
    log: Mutex<Option<ResultsLog>>,
    rec: Recorder,
    /// Global event sequence — the `Lane::Serve` timestamp domain. A
    /// mutex (not an atomic) so the sequence draw and the ring append
    /// happen as one step: `check::validate` requires per-lane monotone
    /// timestamps in record order.
    seq: Mutex<u64>,
    /// The live telemetry plane: shard 0 belongs to connection threads,
    /// shard `1 + i` to worker `i`. Always on — updates are a striped
    /// mutex and a map insert, far off the execution path's clock.
    metrics: MetricsRegistry,
    /// The crash flight recorder's event ring (same shard layout).
    flight: FlightRecorder,
    /// Server start, the epoch for wall-clock metric windows and flight
    /// timestamps.
    start: Instant,
    /// Wall-ms timestamps of recent `DEADLINE_EXCEEDED` completions,
    /// for storm detection.
    deadlines: Mutex<VecDeque<u64>>,
}

impl Shared {
    fn tick(&self, name: &'static str) {
        if !self.rec.is_enabled() {
            return;
        }
        let mut seq = self.seq.lock().unwrap();
        self.rec.instant(Lane::Serve, Category::Serve, name, *seq);
        *seq += 1;
    }

    /// Milliseconds since server start (flight-recorder clock).
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Seconds since server start (metrics-window clock).
    fn now_secs(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// The current metrics exposition text. Never empty: every family
    /// is declared at startup.
    fn metrics_text(&self) -> String {
        telemetry::render_prometheus(&self.metrics.snapshot(self.now_secs()))
    }

    /// Note an event in the flight ring.
    fn flight_note(&self, shard: usize, name: &'static str, req: u64) {
        self.flight.record(shard, name, self.now_ms(), req);
    }

    /// Dump the flight ring, if a dump directory is configured.
    fn flight_dump(&self, reason: &'static str) {
        let Some(dir) = &self.cfg.flight_dir else {
            return;
        };
        match self.flight.dump(dir, reason, self.now_ms()) {
            Ok(path) => eprintln!("stmserve: flight dump ({reason}): {}", path.display()),
            Err(e) => eprintln!("stmserve: flight dump ({reason}) failed: {e}"),
        }
    }

    /// Record a `DEADLINE_EXCEEDED` completion and dump the flight ring
    /// when [`DEADLINE_STORM`] of them land within one flight window.
    fn note_deadline(&self, now_ms: u64) {
        let storm = {
            let mut d = self.deadlines.lock().unwrap();
            d.push_back(now_ms);
            let cutoff = now_ms.saturating_sub(self.cfg.flight_window_ms.max(1));
            while d.front().is_some_and(|&t| t <= cutoff) {
                d.pop_front();
            }
            if d.len() >= DEADLINE_STORM {
                d.clear();
                true
            } else {
                false
            }
        };
        if storm {
            self.flight_dump("deadline-storm");
        }
    }
}

/// A running server. Dropping the handle does not stop it; send
/// `SHUTDOWN` (or use `stmload --shutdown`) and call [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    accept: std::thread::JoinHandle<()>,
    metrics_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Counter and gauge families, declared at startup so the set of
/// exposed metric names is byte-stable from the very first scrape.
const COUNTER_FAMILIES: &[&str] = &[
    "serve.requests.accepted",
    "serve.requests.completed",
    "serve.requests.degraded",
    "serve.requests.failed",
    "serve.requests.shed",
    "serve.frames.bad",
    "serve.breaker.trips",
    "integrity.sdc.detected",
    "integrity.sdc.recovered",
    "integrity.sdc.unrecovered",
    "integrity.verify.legs",
];
const GAUGE_FAMILIES: &[&str] = &["serve.queue.depth", "serve.inflight"];
const WINDOW_FAMILIES: &[&str] = &["serve.latency.us", "serve.kernel.cycles"];

impl Server {
    /// Binds, recovers the results log, and spawns the accept loop,
    /// the worker pool, and (when configured) the metrics exposition
    /// listener.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics_listener = match &cfg.metrics_addr {
            Some(maddr) => {
                let l = TcpListener::bind(maddr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let mut state = State {
            stats: StatsSnapshot {
                queue_depth_limit: cfg.queue_depth as u64,
                backend: backend_index(cfg.backend),
                ..StatsSnapshot::default()
            },
            ..State::default()
        };
        let log = match &cfg.results_log {
            Some(path) => {
                let (log, records) = ResultsLog::open(path)?;
                for rec in records {
                    state.stats.completed += 1;
                    if rec.degraded {
                        state.stats.degraded += 1;
                    }
                    state.completed.insert(rec.request_id, rec);
                }
                Some(log)
            }
            None => None,
        };

        // Under `dual`/`vote` the cross-backend legs replace the
        // single-backend oracle recompute: running both would double
        // the verification cost, and the oracle would intercept every
        // injected SDC as a typed mismatch before the legs ever voted.
        let verify_oracle = !matches!(
            cfg.verify_mode,
            stm_bench::resilient::VerifyMode::Dual | stm_bench::resilient::VerifyMode::Vote
        );
        let mut run = RunConfig {
            jobs: Some(1),
            verify: verify_oracle,
            backend: cfg.backend,
            ..RunConfig::default()
        };
        run.vp.cycle_budget = cfg.deadline;

        let workers_n = cfg.workers.max(1);
        // Shard 0 is the connection threads' stripe; worker i owns
        // stripe 1 + i.
        let metrics = MetricsRegistry::new(workers_n + 1, 10);
        for name in COUNTER_FAMILIES {
            metrics.add(0, name, 0);
        }
        for name in GAUGE_FAMILIES {
            metrics.gauge(0, name, 0);
        }
        for name in WINDOW_FAMILIES {
            metrics.declare_window(0, name);
        }
        let flight = FlightRecorder::new(workers_n + 1, cfg.flight_window_ms);
        let install_panic_hook = cfg.flight_dir.is_some();
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            work: Condvar::new(),
            done: Condvar::new(),
            breakers: Mutex::new(HashMap::new()),
            run,
            log: Mutex::new(log),
            rec: if cfg.trace.is_some() {
                Recorder::enabled(1 << 20)
            } else {
                Recorder::disabled()
            },
            seq: Mutex::new(0),
            metrics,
            flight,
            start: Instant::now(),
            deadlines: Mutex::new(VecDeque::new()),
            cfg,
        });

        // Last-breath flight dump on a worker/connection panic. The
        // hook chains the previous one and holds only a weak reference,
        // so a dropped server never keeps dumping (or leaks).
        if install_panic_hook {
            let weak = Arc::downgrade(&shared);
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if let Some(sh) = weak.upgrade() {
                    sh.flight_dump("panic");
                }
                prev(info);
            }));
        }

        let workers = (0..workers_n)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh, i))
            })
            .collect();
        let metrics_thread = metrics_listener.map(|l| {
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || metrics_loop(&sh, &l))
        });
        let sh = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&sh, &listener));
        Ok(Server {
            shared,
            addr,
            metrics_addr,
            accept,
            metrics_thread,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics exposition address, when the listener is
    /// configured (resolves port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Waits for a clean `SHUTDOWN`-initiated stop.
    pub fn join(self) {
        self.accept.join().ok();
        if let Some(m) = self.metrics_thread {
            m.join().ok();
        }
        for w in self.workers {
            w.join().ok();
        }
    }

    /// A stats snapshot, for in-process tests. Live fields
    /// (`queue_depth`, `in_flight`) reflect this instant.
    pub fn stats(&self) -> StatsSnapshot {
        let state = self.shared.state.lock().unwrap();
        let mut stats = state.stats;
        stats.queue_depth = state.queue.len() as u64;
        stats.in_flight = state.pending.len() as u64;
        stats
    }

    /// The current metrics exposition text (what a scrape returns).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Dump the flight ring now (the `stmserve` bin's `SIGTERM` path).
    /// No-op unless a flight directory is configured.
    pub fn dump_flight(&self, reason: &'static str) {
        self.shared.flight_dump(reason);
    }

    /// A cheap handle that can trigger flight dumps after the `Server`
    /// itself has been moved (e.g. into [`Server::join`]) — the signal
    /// watcher's lifeline.
    pub fn flight_dumper(&self) -> FlightDumper {
        FlightDumper(Arc::clone(&self.shared))
    }
}

/// See [`Server::flight_dumper`].
#[derive(Clone)]
pub struct FlightDumper(Arc<Shared>);

impl FlightDumper {
    /// Dump the flight ring now. No-op unless a flight directory is
    /// configured.
    pub fn dump(&self, reason: &'static str) {
        self.0.flight_dump(reason);
    }
}

/// Serves the metrics exposition endpoint: one tiny HTTP/1.1 200 per
/// connection, then close. Accepts any request bytes (it never parses
/// the path), so `curl`, `stmtop`, and a bare TCP read all work.
fn metrics_loop(sh: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if sh.state.lock().unwrap().stopped {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_read_timeout(Some(Duration::from_millis(500)))
                    .ok();
                stream
                    .set_write_timeout(Some(Duration::from_millis(2_000)))
                    .ok();
                // Best-effort drain of the request line; the response
                // is the same whatever was asked.
                let mut buf = [0u8; 1024];
                let _ = std::io::Read::read(&mut stream, &mut buf);
                let body = sh.metrics_text();
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = std::io::Write::write_all(&mut stream, resp.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn accept_loop(sh: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if sh.state.lock().unwrap().stopped {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                sh.tick("serve.accept");
                let sh = Arc::clone(sh);
                std::thread::spawn(move || {
                    handle_connection(&sh, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(sh: &Arc<Shared>, stream: TcpStream) {
    let timeout = Some(Duration::from_millis(sh.cfg.io_timeout_ms.max(1)));
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        return;
    }
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader, sh.cfg.max_frame) {
            Ok(p) => p,
            Err(FrameError::Io(_)) => return, // EOF, timeout (slow loris), reset
            Err(FrameError::BadMagic(_)) => {
                count_bad_frame(sh);
                respond(&mut writer, &Response::empty(Status::BadFrame, 0));
                return; // framing is lost; drop the connection
            }
            Err(FrameError::TooLarge(_)) => {
                count_bad_frame(sh);
                respond(&mut writer, &Response::empty(Status::TooLarge, 0));
                return;
            }
        };
        let req = match decode_request(&payload) {
            Ok(r) => r,
            Err(None) => {
                count_bad_frame(sh);
                respond(&mut writer, &Response::empty(Status::UnknownOp, 0));
                continue;
            }
            Err(Some(_)) => {
                count_bad_frame(sh);
                respond(&mut writer, &Response::empty(Status::BadFrame, 0));
                return;
            }
        };
        let shutdown = matches!(req.body, RequestBody::Shutdown);
        let resp = handle_request(sh, req);
        let sent = respond(&mut writer, &resp);
        if shutdown && resp.status == Status::Ok {
            finish_shutdown(sh);
            return;
        }
        if !sent {
            return;
        }
    }
}

fn respond(w: &mut impl std::io::Write, resp: &Response) -> bool {
    write_frame(w, &encode_response(resp)).is_ok()
}

fn count_bad_frame(sh: &Shared) {
    sh.tick("serve.frame.bad");
    sh.rec.add("serve.frames.bad", 1);
    sh.metrics.add(0, "serve.frames.bad", 1);
    sh.flight_note(0, "flight.frame.bad", 0);
    sh.state.lock().unwrap().stats.bad_frames += 1;
}

fn handle_request(sh: &Arc<Shared>, req: Request) -> Response {
    match req.body {
        RequestBody::Submit {
            matrix_id,
            rows,
            cols,
            entries,
        } => handle_submit(sh, req.request_id, matrix_id, rows, cols, &entries),
        RequestBody::Transpose { matrix_id, fault } | RequestBody::Spmv { matrix_id, fault } => {
            let op = if matches!(req.body, RequestBody::Spmv { .. }) {
                Op::Spmv
            } else {
                Op::Transpose
            };
            handle_execute(sh, &req, op, matrix_id, fault)
        }
        RequestBody::Fetch { target } => handle_fetch(sh, req.request_id, target),
        RequestBody::Stats => {
            sh.tick("serve.stats");
            let stats = {
                let state = sh.state.lock().unwrap();
                let mut stats = state.stats;
                stats.queue_depth = state.queue.len() as u64;
                stats.in_flight = state.pending.len() as u64;
                stats
            };
            Response {
                status: Status::Ok,
                degraded: false,
                request_id: req.request_id,
                body: ResponseBody::Stats(stats.to_vec()),
            }
        }
        RequestBody::Metrics => {
            sh.tick("serve.metrics");
            Response {
                status: Status::Ok,
                degraded: false,
                request_id: req.request_id,
                body: ResponseBody::Metrics(sh.metrics_text()),
            }
        }
        RequestBody::Shutdown => handle_shutdown(sh, req.request_id),
    }
}

fn handle_submit(
    sh: &Arc<Shared>,
    request_id: u64,
    matrix_id: u64,
    rows: u32,
    cols: u32,
    entries: &[(u32, u32, f32)],
) -> Response {
    let triplets: Vec<(usize, usize, f32)> = entries
        .iter()
        .map(|&(r, c, v)| (r as usize, c as usize, v))
        .collect();
    let coo = match Coo::from_triplets(rows as usize, cols as usize, triplets) {
        Ok(c) => c,
        Err(_) => return Response::empty(Status::BadFrame, request_id),
    };
    let mut state = sh.state.lock().unwrap();
    if state.draining {
        return Response::empty(Status::ShuttingDown, request_id);
    }
    // Idempotent: re-submitting an id keeps the first copy.
    state.matrices.entry(matrix_id).or_insert_with(|| {
        let metrics = MatrixMetrics::compute(&coo);
        Arc::new(SuiteEntry {
            name: format!("m{matrix_id:x}"),
            coo,
            metrics,
        })
    });
    state.stats.matrices = state.matrices.len() as u64;
    drop(state);
    sh.tick("serve.submit");
    Response::empty(Status::Ok, request_id)
}

fn record_to_response(rec: &ResultRecord) -> Response {
    Response {
        status: rec.status,
        degraded: rec.degraded,
        request_id: rec.request_id,
        body: if rec.status == Status::Ok {
            ResponseBody::Digest(rec.digest)
        } else {
            ResponseBody::Empty
        },
    }
}

fn handle_execute(
    sh: &Arc<Shared>,
    req: &Request,
    op: Op,
    matrix_id: u64,
    fault: Option<crate::protocol::FaultRequest>,
) -> Response {
    let mut state = sh.state.lock().unwrap();
    // Idempotency, completed side: replay the recorded result.
    if let Some(rec) = state.completed.get(&req.request_id) {
        return record_to_response(rec);
    }
    // Idempotency, in-flight side: join the original execution.
    if state.pending.contains_key(&req.request_id) {
        loop {
            state = sh.done.wait(state).unwrap();
            if let Some(rec) = state.completed.get(&req.request_id) {
                return record_to_response(rec);
            }
            if !state.pending.contains_key(&req.request_id) {
                // Evaporated without completing (cannot happen today);
                // fail typed rather than hanging.
                return Response::empty(Status::KernelFailed, req.request_id);
            }
        }
    }
    if state.draining {
        return Response::empty(Status::ShuttingDown, req.request_id);
    }
    let entry = match state.matrices.get(&matrix_id) {
        Some(e) => Arc::clone(e),
        None => return Response::empty(Status::UnknownMatrix, req.request_id),
    };
    let in_flight = state
        .pending_by_client
        .get(&req.client_id)
        .copied()
        .unwrap_or(0);
    if in_flight >= sh.cfg.quota.max(1) {
        return Response::empty(Status::QuotaExceeded, req.request_id);
    }
    // Bounded admission: shed rather than grow.
    if state.queue.len() >= sh.cfg.queue_depth.max(1) {
        state.stats.shed += 1;
        drop(state);
        sh.tick("serve.shed");
        sh.rec.add("serve.shed", 1);
        sh.metrics.add(0, "serve.requests.shed", 1);
        sh.flight_note(0, "flight.shed", req.request_id);
        return Response {
            status: Status::RetryAfter,
            degraded: false,
            request_id: req.request_id,
            body: ResponseBody::RetryAfterMs(sh.cfg.retry_after_ms),
        };
    }
    state.pending.insert(req.request_id, req.client_id);
    *state.pending_by_client.entry(req.client_id).or_insert(0) += 1;
    state.queue.push_back(Job {
        request_id: req.request_id,
        client_id: req.client_id,
        op,
        matrix_id,
        entry,
        fault: fault.map(|f| FaultSpec {
            index: 0,
            class: f.class,
            seed: f.seed,
        }),
    });
    state.stats.accepted += 1;
    let depth = state.queue.len() as u64;
    let in_flight = state.pending.len() as u64;
    state.stats.queue_depth_max = state.stats.queue_depth_max.max(depth);
    sh.rec.observe("serve.queue.depth", depth);
    sh.metrics.add(0, "serve.requests.accepted", 1);
    sh.metrics.gauge(0, "serve.queue.depth", depth);
    sh.metrics.gauge(0, "serve.inflight", in_flight);
    sh.flight_note(0, "flight.enqueue", req.request_id);
    sh.work.notify_one();
    sh.tick("serve.enqueue");

    // Wait for the worker pool to complete this id.
    loop {
        state = sh.done.wait(state).unwrap();
        if let Some(rec) = state.completed.get(&req.request_id) {
            return record_to_response(rec);
        }
    }
}

fn handle_fetch(sh: &Arc<Shared>, request_id: u64, target: u64) -> Response {
    sh.tick("serve.fetch");
    let state = sh.state.lock().unwrap();
    match state.completed.get(&target) {
        Some(rec) => {
            let mut resp = record_to_response(rec);
            resp.request_id = request_id;
            resp
        }
        None => Response::empty(Status::NotFound, request_id),
    }
}

fn handle_shutdown(sh: &Arc<Shared>, request_id: u64) -> Response {
    sh.tick("serve.drain");
    let mut state = sh.state.lock().unwrap();
    state.draining = true;
    // Clean drain: every admitted request completes and is checkpointed
    // to the results log before we acknowledge.
    while !state.queue.is_empty() || !state.pending.is_empty() {
        state = sh.done.wait(state).unwrap();
    }
    drop(state);
    sh.tick("serve.shutdown");
    if let Some(dir) = &sh.cfg.trace {
        let data = sh.rec.snapshot();
        if let Err(e) = stm_bench::trace::export_trace(dir, "serve", "serve", &data) {
            eprintln!("stmserve: trace export failed: {e}");
        }
    }
    Response::empty(Status::Ok, request_id)
}

/// Flips the stop flag after the shutdown ack went out, releasing the
/// accept loop and the worker pool.
fn finish_shutdown(sh: &Arc<Shared>) {
    let mut state = sh.state.lock().unwrap();
    state.stopped = true;
    drop(state);
    sh.work.notify_all();
    sh.done.notify_all();
}

fn worker_loop(sh: &Arc<Shared>, widx: usize) {
    loop {
        let job = {
            let mut state = sh.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.stopped {
                    return;
                }
                state = sh.work.wait(state).unwrap();
            }
        };
        execute_job(sh, widx, job);
    }
}

fn execute_job(sh: &Arc<Shared>, widx: usize, job: Job) {
    // This worker's metrics/flight stripe (shard 0 is the connection
    // threads').
    let shard = widx + 1;
    sh.tick("serve.execute");
    sh.flight_note(shard, "flight.execute", job.request_id);
    let kernel = kernel_for(job.op);

    // The request-scoped trace: its own ring, its own cycle clock
    // starting at 0, every event stamped with the request id. The
    // `serve.request` root span brackets the whole execution so the
    // joiner can check containment.
    let req_rec = if sh.rec.is_enabled() {
        Recorder::enabled(REQUEST_TRACE_CAPACITY).with_ctx(SpanCtx::request(job.request_id))
    } else {
        Recorder::disabled()
    };
    let root = req_rec
        .is_enabled()
        .then(|| req_rec.begin(Lane::Serve, Category::Serve, "serve.request", 0));

    // Breakers guard only kernels with a registry fallback: skipping a
    // fallback-less kernel would fail healthy requests (DESIGN.md §13).
    let decision = if registry::fallback_for(kernel).is_some() {
        let mut breakers = sh.breakers.lock().unwrap();
        let (breaker, seq) = breakers
            .entry(kernel)
            .or_insert_with(|| (Breaker::new(sh.cfg.breaker), 0));
        let d = breaker.decide(*seq);
        *seq += 1;
        d
    } else {
        Decision::Run
    };

    // The expensive part runs outside every lock. `index` keys the
    // retry-jitter stream only.
    let wall = Instant::now();
    let outcome = execute_slot(
        &sh.run,
        &sh.cfg.retry,
        &job.entry,
        job.request_id as usize,
        kernel,
        decision,
        job.fault.as_ref(),
        sh.cfg.verify_mode,
        &req_rec,
    );
    let wall_us = wall.elapsed().as_micros() as u64;

    // Every SDC detection — recovered or not — is a flight-recorder
    // event: the quarantined digest and the forensic window around it
    // are exactly what a post-mortem needs.
    if outcome.corrupted {
        sh.metrics.add(shard, "integrity.sdc.detected", 1);
        sh.flight_note(shard, "flight.sdc.detected", job.request_id);
        if outcome.report.is_some() {
            sh.metrics.add(shard, "integrity.sdc.recovered", 1);
        } else {
            sh.metrics.add(shard, "integrity.sdc.unrecovered", 1);
        }
        sh.flight_dump("sdc-detected");
    }
    if outcome.verify_legs > 0 {
        sh.metrics
            .add(shard, "integrity.verify.legs", outcome.verify_legs);
    }

    if registry::fallback_for(kernel).is_some() {
        let mut breakers = sh.breakers.lock().unwrap();
        let transitions = match breakers.get_mut(kernel) {
            Some((breaker, seq)) => {
                breaker.commit(decision, outcome.outcome, *seq);
                breaker.drain_transitions()
            }
            None => Vec::new(),
        };
        drop(breakers);
        for (_, _, to) in transitions {
            if to == BreakerState::Open {
                sh.metrics.add(shard, "serve.breaker.trips", 1);
                sh.flight_note(shard, "flight.breaker.open", job.request_id);
                sh.flight_dump("breaker-open");
            }
        }
    }

    // A corrupted-but-recovered request is served `OK` — the client
    // gets the majority digest, transparently. Only an unrecoverable
    // disagreement (no majority, no fallback) refuses with
    // `DATA_CORRUPT`.
    let status = match (&outcome.report, &outcome.failure) {
        (Some(_), _) => Status::Ok,
        (None, _) if outcome.corrupted => Status::DataCorrupt,
        (None, Some(f)) => match f.error {
            stm_core::kernels::registry::KernelError::DeadlineExceeded(_) => {
                Status::DeadlineExceeded
            }
            _ => Status::KernelFailed,
        },
        (None, None) => Status::KernelFailed,
    };

    // Close the request trace — status instant, then the root span —
    // and fold it into the server recording as one atomic block. The
    // request timeline keeps its own clock (offset 0): per-lane
    // invariants hold per `(lane, request)`, so shifted request
    // timelines coexist with the server's sequence-stamped events.
    if let Some(root) = root {
        let end_ts = req_rec.max_ts();
        let status_name = if status == Status::DataCorrupt {
            "serve.request.data_corrupt"
        } else if outcome.corrupted {
            // Recovered in-flight: the reply is OK, but the detection
            // must stay visible on the request timeline.
            "serve.request.recovered"
        } else if outcome.degraded {
            "serve.request.degraded"
        } else if status == Status::Ok {
            "serve.request.ok"
        } else {
            "serve.request.failed"
        };
        req_rec.instant(Lane::Serve, Category::Serve, status_name, end_ts);
        req_rec.end(Lane::Serve, Category::Serve, "serve.request", end_ts, root);
        sh.rec.absorb(&req_rec.snapshot(), 0);
    }
    // Canonical digest: format-independent, so a degraded transpose
    // (fallback emits a different encoding than the primary) digests
    // identically to the primary result.
    let digest = outcome
        .report
        .as_ref()
        .and_then(|r| r.output.canonical_digest())
        .unwrap_or(0);
    let rec = ResultRecord {
        request_id: job.request_id,
        client_id: job.client_id,
        op: job.op,
        matrix_id: job.matrix_id,
        status,
        degraded: outcome.degraded,
        corrupted: outcome.corrupted,
        digest,
    };

    // Durability before visibility: the record hits the flushed log
    // before any response can be built from it.
    if let Some(log) = sh.log.lock().unwrap().as_mut() {
        if let Err(e) = log.append(&rec) {
            eprintln!("stmserve: results log append failed: {e}");
        }
    }

    let mut state = sh.state.lock().unwrap();
    state.pending.remove(&job.request_id);
    if let Some(n) = state.pending_by_client.get_mut(&job.client_id) {
        *n = n.saturating_sub(1);
    }
    state.stats.completed += 1;
    if rec.degraded {
        state.stats.degraded += 1;
        sh.rec.add("serve.degraded", 1);
    }
    if rec.status != Status::Ok {
        state.stats.failed += 1;
    }
    let (rstatus, rdegraded) = (rec.status, rec.degraded);
    state.completed.insert(job.request_id, rec);
    let completed_total = state.stats.completed;
    let depth = state.queue.len() as u64;
    let in_flight = state.pending.len() as u64;
    drop(state);
    sh.rec.add("serve.completed", 1);
    sh.tick("serve.commit");

    let now_ms = sh.now_ms();
    let now_secs = sh.now_secs();
    sh.metrics.add(shard, "serve.requests.completed", 1);
    sh.metrics
        .observe(shard, "serve.latency.us", wall_us, now_secs);
    if let Some(r) = &outcome.report {
        sh.metrics
            .observe(shard, "serve.kernel.cycles", r.report.cycles, now_secs);
    }
    sh.metrics.gauge(0, "serve.queue.depth", depth);
    sh.metrics.gauge(0, "serve.inflight", in_flight);
    let flight_name = if rdegraded {
        sh.metrics.add(shard, "serve.requests.degraded", 1);
        "flight.commit.degraded"
    } else if rstatus == Status::Ok {
        "flight.commit.ok"
    } else {
        sh.metrics.add(shard, "serve.requests.failed", 1);
        "flight.commit.failed"
    };
    sh.flight_note(shard, flight_name, job.request_id);
    if rstatus == Status::DeadlineExceeded {
        sh.flight_note(shard, "flight.deadline", job.request_id);
        sh.note_deadline(now_ms);
    }
    if let Some(n) = sh.cfg.flight_every {
        if n > 0 && completed_total.is_multiple_of(n) {
            sh.flight_dump("interval");
        }
    }
    sh.done.notify_all();
}
