//! A minimal Prometheus scrape client: fetch the exposition text from
//! an `stmserve --metrics-addr` listener and parse it back into
//! `(name, labels, value)` samples.
//!
//! Used by `stmtop` (the live terminal view) and `stmload` (printing
//! the server-side p99 next to the client-measured one). The parser
//! accepts exactly the subset `stm_obs::telemetry::render_prometheus`
//! emits — `# TYPE` comments, `name value` and `name{label="v"} value`
//! sample lines with unsigned integer values — and ignores anything
//! else, so it stays robust to future families.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric name (e.g. `stm_serve_latency_us`).
    pub name: String,
    /// The raw label block without braces (e.g. `quantile="0.99"`),
    /// empty for unlabelled samples.
    pub labels: String,
    /// The sample value (the exposition only emits unsigned integers).
    pub value: u64,
}

/// Fetch the exposition text from `addr` (an `http://`-less host:port)
/// with one HTTP/1.0-style GET, stripping the response headers.
pub fn fetch(addr: &str, timeout_ms: u64) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let t = Some(Duration::from_millis(timeout_ms.max(1)));
    stream.set_read_timeout(t).map_err(|e| e.to_string())?;
    stream.set_write_timeout(t).map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET /metrics HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("send {addr}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read {addr}: {e}"))?;
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) => {
            if !head.starts_with("HTTP/1.1 200") && !head.starts_with("HTTP/1.0 200") {
                return Err(format!(
                    "{addr}: non-200 response: {}",
                    head.lines().next().unwrap_or("")
                ));
            }
            Ok(body.to_string())
        }
        // Not HTTP at all — treat the whole payload as the body.
        None => Ok(raw),
    }
}

/// Parse exposition text into samples, in document order. Comment
/// (`#`) lines, blank lines, and malformed lines are skipped.
pub fn parse(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue;
        };
        let (name, labels) = match key.split_once('{') {
            Some((n, rest)) => match rest.strip_suffix('}') {
                Some(l) => (n, l),
                None => continue,
            },
            None => (key, ""),
        };
        out.push(Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }
    out
}

/// The value of the first sample matching `name` (and, when non-empty,
/// a label block containing `label_frag`).
pub fn value(samples: &[Sample], name: &str, label_frag: &str) -> Option<u64> {
    samples
        .iter()
        .find(|s| s.name == name && (label_frag.is_empty() || s.labels.contains(label_frag)))
        .map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "\
# TYPE stm_serve_latency_us summary
stm_serve_latency_us{quantile=\"0.5\"} 128
stm_serve_latency_us{quantile=\"0.99\"} 900
stm_serve_latency_us_sum 1200
stm_serve_latency_us_count 4
# TYPE stm_serve_requests_completed_total counter
stm_serve_requests_completed_total 42
";

    #[test]
    fn parses_the_renderer_subset() {
        let samples = parse(TEXT);
        assert_eq!(samples.len(), 5);
        assert_eq!(
            value(&samples, "stm_serve_latency_us", "quantile=\"0.99\""),
            Some(900)
        );
        assert_eq!(value(&samples, "stm_serve_latency_us_count", ""), Some(4));
        assert_eq!(
            value(&samples, "stm_serve_requests_completed_total", ""),
            Some(42)
        );
        assert_eq!(value(&samples, "stm_absent", ""), None);
    }

    #[test]
    fn round_trips_the_live_renderer() {
        let reg = stm_obs::MetricsRegistry::new(2, 10);
        reg.add(0, "serve.requests.completed", 7);
        reg.gauge(1, "serve.queue.depth", 3);
        reg.observe(0, "serve.latency.us", 500, 1);
        let text = stm_obs::telemetry::render_prometheus(&reg.snapshot(1));
        let samples = parse(&text);
        assert_eq!(
            value(&samples, "stm_serve_requests_completed_total", ""),
            Some(7)
        );
        assert_eq!(value(&samples, "stm_serve_queue_depth", ""), Some(3));
        assert_eq!(value(&samples, "stm_serve_latency_us_count", ""), Some(1));
    }

    #[test]
    fn ignores_garbage_lines() {
        let samples = parse("not a sample\nx{unclosed 5\nname -3\nok 9\n");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "ok");
        assert_eq!(samples[0].value, 9);
    }
}
