//! The `stmload` synthetic-client harness: sustains many concurrent
//! clients against a running `stmserve`, injects chaos, and verifies
//! every returned digest against host-computed oracles.
//!
//! ## Chaos model
//!
//! Each request draws its chaos deterministically from
//! `(seed, request_id)` — pure, so two runs with the same configuration
//! aim the same chaos at the same requests:
//!
//! * **kill** — send the request, then drop the connection without
//!   reading the response; reconnect and re-send the *same* request id.
//!   Exercises the server's idempotency path (the re-send must join or
//!   replay the original execution, never run the kernel twice into
//!   conflicting results).
//! * **corrupt** — send a garbage frame first; the server must answer
//!   `BAD_FRAME` and close, after which the client reconnects and sends
//!   the real request.
//! * **fault** — carry a deterministic kernel fault in the request
//!   (transpose only: the transpose path has a registry fallback, so
//!   the request still completes — as `Degraded` — with a verified
//!   digest). An SpMV drawn for fault chaos downgrades to **kill**.
//!
//! `RETRY_AFTER` shedding is handled with bounded retries and the
//! server-hinted backoff.
//!
//! ## Determinism
//!
//! The report's `digest` is FNV-1a over the per-request terminal lines
//! `(request_id, op, status, result digest)`, sorted by request id. It
//! is byte-stable under a fixed configuration regardless of worker
//! interleaving, because every terminal outcome is deterministic; the
//! *degraded* flag and the shed/latency numbers are interleaving- and
//! timing-dependent and deliberately excluded.

use crate::client::Client;
use crate::protocol::{FaultRequest, RequestBody, ResponseBody, Status};
use crate::server::StatsSnapshot;
use std::time::{Duration, Instant};
use stm_hism::FaultClass;
use stm_obs::Histogram;
use stm_sparse::rng::StdRng;
use stm_sparse::{gen, Coo};

/// Load-run tuning.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Percent of requests that draw chaos (0–100).
    pub chaos_pct: u32,
    /// Chaos + workload seed.
    pub seed: u64,
    /// Distinct synthetic matrices in the workload.
    pub matrices: usize,
    /// Client socket timeout.
    pub timeout_ms: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            clients: 8,
            requests_per_client: 8,
            chaos_pct: 20,
            seed: 0x10ad,
            matrices: 4,
            timeout_ms: 30_000,
        }
    }
}

/// What one finished load run measured.
#[derive(Debug)]
pub struct LoadReport {
    /// Total requests issued (clients × requests-per-client).
    pub requests: u64,
    /// Requests that completed `Ok`.
    pub ok: u64,
    /// Requests with a terminal failure status.
    pub failed: u64,
    /// `Ok` responses flagged degraded (fallback-produced).
    pub degraded: u64,
    /// `Ok` responses whose digest disagreed with the host oracle —
    /// must be zero.
    pub mismatches: u64,
    /// Requests that hit transport errors and were re-sent.
    pub transport_retries: u64,
    /// Killed-connection chaos events injected.
    pub kills: u64,
    /// Corrupt-frame chaos events injected.
    pub corrupts: u64,
    /// Kernel-fault chaos events injected.
    pub faults: u64,
    /// `RETRY_AFTER` responses absorbed.
    pub shed_retries: u64,
    /// End-to-end per-request latency (µs), chaos retries included.
    pub latency_us: Histogram,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Deterministic digest over the sorted terminal lines.
    pub digest: u64,
    /// Server stats snapshot taken after the run.
    pub server_stats: Option<StatsSnapshot>,
}

impl LoadReport {
    /// The byte-deterministic summary line: everything here is stable
    /// under a fixed configuration (counts of *terminal* outcomes and
    /// the sorted-line digest); timing, shedding and degradation live on
    /// the other report lines.
    pub fn deterministic_line(&self) -> String {
        format!(
            "result: requests={} ok={} failed={} mismatches={} digest=0x{:016x}",
            self.requests, self.ok, self.failed, self.mismatches, self.digest
        )
    }
}

/// The deterministic workload matrix `m` of a run seeded with `seed` —
/// tiny uniform-random matrices; the service is being load-tested, not
/// the kernels.
pub fn workload_matrix(seed: u64, m: usize) -> Coo {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(m as u64 + 1)));
    let rows = rng.gen_range(12..28usize);
    let cols = rng.gen_range(12..28usize);
    let nnz = rng.gen_range(30..90usize);
    gen::random::uniform(rows, cols, nnz, rng.next_u64())
}

/// Per-request chaos draw, pure in `(seed, request_id)`:
/// `0` = none, `1` = kill, `2` = corrupt, `3` = fault.
fn chaos_mode(cfg: &LoadConfig, request_id: u64) -> u8 {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ request_id.wrapping_mul(0xa076_1d64_78bd_642f));
    if !rng.gen_bool(f64::from(cfg.chaos_pct.min(100)) / 100.0) {
        return 0;
    }
    1 + (rng.next_u64() % 3) as u8
}

fn fault_for(cfg: &LoadConfig, request_id: u64) -> FaultRequest {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ request_id.wrapping_mul(0xe703_7ed1_a0b4_28db));
    let class = FaultClass::ALL[(rng.next_u64() % FaultClass::ALL.len() as u64) as usize];
    FaultRequest {
        class,
        seed: rng.next_u64(),
    }
}

/// The op a request id maps to: one SpMV for every two transposes.
fn op_for(request_id: u64) -> RequestOp {
    if request_id % 3 == 2 {
        RequestOp::Spmv
    } else {
        RequestOp::Transpose
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestOp {
    Transpose,
    Spmv,
}

struct ClientOutcome {
    lines: Vec<(u64, String)>,
    latencies: Vec<u64>,
    ok: u64,
    failed: u64,
    degraded: u64,
    mismatches: u64,
    transport_retries: u64,
    kills: u64,
    corrupts: u64,
    faults: u64,
    shed_retries: u64,
}

/// Host-side oracles: the expected canonical digest per (matrix, op).
fn expected_digests(cfg: &LoadConfig) -> Result<Vec<(u64, u64)>, String> {
    use stm_core::exec::spmv_input;
    use stm_core::KernelOutput;
    (0..cfg.matrices)
        .map(|m| {
            let coo = workload_matrix(cfg.seed, m);
            let t = stm_sparse::format::canonical_digest(&coo.transpose_canonical());
            let y = coo
                .spmv(&spmv_input(coo.cols()))
                .map_err(|e| format!("oracle spmv for matrix {m}: {e:?}"))?;
            let s = KernelOutput::Vector(y)
                .canonical_digest()
                .expect("vector digest is total");
            Ok((t, s))
        })
        .collect()
}

fn connect(cfg: &LoadConfig, client_id: u64) -> Result<Client, String> {
    let mut last = String::new();
    for _ in 0..50 {
        match Client::connect(&cfg.addr, client_id, cfg.timeout_ms) {
            Ok(c) => return Ok(c),
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    Err(format!("connect {}: {last}", cfg.addr))
}

#[allow(clippy::too_many_lines)]
fn run_client(
    cfg: &LoadConfig,
    client_idx: usize,
    expected: &[(u64, u64)],
) -> Result<ClientOutcome, String> {
    let client_id = client_idx as u64 + 1;
    let mut conn = connect(cfg, client_id)?;
    let mut out = ClientOutcome {
        lines: Vec::with_capacity(cfg.requests_per_client),
        latencies: Vec::with_capacity(cfg.requests_per_client),
        ok: 0,
        failed: 0,
        degraded: 0,
        mismatches: 0,
        transport_retries: 0,
        kills: 0,
        corrupts: 0,
        faults: 0,
        shed_retries: 0,
    };
    for r in 0..cfg.requests_per_client {
        let request_id = (client_idx * cfg.requests_per_client + r) as u64 + 1;
        let matrix_id = request_id % cfg.matrices as u64;
        let op = op_for(request_id);
        let mut mode = chaos_mode(cfg, request_id);
        // SpMV has no fallback: aiming a kernel fault at it would turn
        // the request into a (deterministic) failure; the harness keeps
        // every terminal outcome Ok so a failure means a real bug.
        if mode == 3 && op == RequestOp::Spmv {
            mode = 1;
        }
        let fault = (mode == 3).then(|| fault_for(cfg, request_id));
        if mode == 3 {
            out.faults += 1;
        }
        let body = || -> RequestBody {
            match op {
                RequestOp::Transpose => RequestBody::Transpose { matrix_id, fault },
                RequestOp::Spmv => RequestBody::Spmv { matrix_id, fault },
            }
        };
        let started = Instant::now();

        if mode == 1 {
            // Kill: fire the request, drop the socket, reconnect. The
            // server may or may not have started it — the re-send below
            // must converge on exactly one execution either way.
            out.kills += 1;
            conn.send_and_abandon(request_id, body()).ok();
            conn = connect(cfg, client_id)?;
        } else if mode == 2 {
            // Corrupt: garbage magic; the server answers BAD_FRAME and
            // hangs up, so reconnect before the real request.
            out.corrupts += 1;
            conn.send_raw(b"XXXX\x04\x00\x00\x00beef").ok();
            let _ = conn.request(request_id, RequestBody::Stats);
            conn = connect(cfg, client_id)?;
        }

        // Send (or re-send) until a terminal response arrives: absorb
        // RETRY_AFTER shedding and transport drops with bounded retries.
        let mut resp = None;
        for _attempt in 0..10_000 {
            match conn.request(request_id, body()) {
                Ok(r) if r.status == Status::RetryAfter => {
                    out.shed_retries += 1;
                    let hint = match r.body {
                        ResponseBody::RetryAfterMs(ms) => u64::from(ms),
                        _ => 1,
                    };
                    std::thread::sleep(Duration::from_millis(hint.clamp(1, 50)));
                }
                Ok(r) => {
                    resp = Some(r);
                    break;
                }
                Err(_) => {
                    out.transport_retries += 1;
                    conn = connect(cfg, client_id)?;
                }
            }
        }
        let resp = resp.ok_or_else(|| format!("request {request_id}: no terminal response"))?;
        out.latencies
            .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);

        let op_name = match op {
            RequestOp::Transpose => "transpose",
            RequestOp::Spmv => "spmv",
        };
        let line = match (resp.status, &resp.body) {
            (Status::Ok, ResponseBody::Digest(d)) => {
                out.ok += 1;
                if resp.degraded {
                    out.degraded += 1;
                }
                let want = match op {
                    RequestOp::Transpose => expected[matrix_id as usize].0,
                    RequestOp::Spmv => expected[matrix_id as usize].1,
                };
                if *d != want {
                    out.mismatches += 1;
                    eprintln!(
                        "stmload: request {request_id} ({op_name} m{matrix_id}): digest \
                         0x{d:016x} != expected 0x{want:016x}"
                    );
                }
                format!("{request_id}:{op_name}:ok:0x{d:016x}")
            }
            (Status::Ok, body) => {
                out.failed += 1;
                out.mismatches += 1;
                eprintln!("stmload: request {request_id}: ok with unexpected body {body:?}");
                format!("{request_id}:{op_name}:bad-body")
            }
            (status, _) => {
                out.failed += 1;
                format!("{request_id}:{op_name}:{}", status.name())
            }
        };
        out.lines.push((request_id, line));
    }
    Ok(out)
}

/// FNV-1a over the newline-terminated lines.
fn fnv_lines(lines: &[(u64, String)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (_, line) in lines {
        for b in line.bytes().chain(std::iter::once(b'\n')) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs the full load campaign: submits the workload matrices, fans out
/// the client threads, and folds their outcomes into one report.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let cfg = LoadConfig {
        matrices: cfg.matrices.max(1),
        clients: cfg.clients.max(1),
        ..cfg.clone()
    };
    let expected = expected_digests(&cfg)?;

    // Submit the workload under client 0 (dedicated control client).
    let mut control = connect(&cfg, 0)?;
    for m in 0..cfg.matrices {
        let coo = workload_matrix(cfg.seed, m);
        let resp = control
            .submit(u64::MAX - m as u64, m as u64, &coo)
            .map_err(|e| format!("submit matrix {m}: {e}"))?;
        if resp.status != Status::Ok {
            return Err(format!("submit matrix {m}: {}", resp.status.name()));
        }
    }

    let started = Instant::now();
    let outcomes: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let cfg = &cfg;
                let expected = &expected;
                scope.spawn(move || run_client(cfg, i, expected))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut lines = Vec::new();
    let mut latency_us = Histogram::default();
    let mut report = LoadReport {
        requests: (cfg.clients * cfg.requests_per_client) as u64,
        ok: 0,
        failed: 0,
        degraded: 0,
        mismatches: 0,
        transport_retries: 0,
        kills: 0,
        corrupts: 0,
        faults: 0,
        shed_retries: 0,
        latency_us: Histogram::default(),
        elapsed,
        digest: 0,
        server_stats: None,
    };
    for out in outcomes {
        let out = out?;
        report.ok += out.ok;
        report.failed += out.failed;
        report.degraded += out.degraded;
        report.mismatches += out.mismatches;
        report.transport_retries += out.transport_retries;
        report.kills += out.kills;
        report.corrupts += out.corrupts;
        report.faults += out.faults;
        report.shed_retries += out.shed_retries;
        for us in out.latencies {
            latency_us.observe(us);
        }
        lines.extend(out.lines);
    }
    lines.sort();
    report.digest = fnv_lines(&lines);
    report.latency_us = latency_us;

    if let Ok(resp) = control.stats(u64::MAX) {
        if let ResponseBody::Stats(v) = resp.body {
            report.server_stats = StatsSnapshot::from_vec(&v);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_and_workload_draws_are_pure() {
        let cfg = LoadConfig {
            chaos_pct: 50,
            ..LoadConfig::default()
        };
        for id in 0..64u64 {
            assert_eq!(chaos_mode(&cfg, id), chaos_mode(&cfg, id));
            assert_eq!(fault_for(&cfg, id), fault_for(&cfg, id));
        }
        let modes: std::collections::HashSet<u8> =
            (0..256).map(|id| chaos_mode(&cfg, id)).collect();
        assert!(modes.contains(&0) && modes.len() >= 3, "{modes:?}");
        assert_eq!(workload_matrix(7, 3), workload_matrix(7, 3));
        assert_ne!(workload_matrix(7, 3), workload_matrix(7, 4));
    }

    #[test]
    fn zero_chaos_means_no_chaos() {
        let cfg = LoadConfig {
            chaos_pct: 0,
            ..LoadConfig::default()
        };
        assert!((0..512).all(|id| chaos_mode(&cfg, id) == 0));
    }
}
