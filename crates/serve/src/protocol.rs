//! The `stm-serve` wire protocol: length-prefixed binary frames over
//! TCP, little-endian throughout.
//!
//! ## Frame layout
//!
//! ```text
//! +------+----------+---------------------+
//! | STM1 | len: u32 | payload (len bytes) |
//! +------+----------+---------------------+
//! ```
//!
//! A frame whose magic is wrong is a protocol violation
//! ([`FrameError::BadMagic`]); a frame whose declared length exceeds the
//! receiver's limit is rejected *before* any allocation
//! ([`FrameError::TooLarge`]) — both are the server's oversized-frame /
//! garbage-client guards.
//!
//! ## Request payload
//!
//! ```text
//! op: u8 | request_id: u64 | client_id: u64 | body…
//! ```
//!
//! | op | body |
//! |---|---|
//! | `SUBMIT`    | `matrix_id u64, rows u32, cols u32, nnz u32, nnz × (row u32, col u32, value f32-bits u32)` |
//! | `TRANSPOSE` | `matrix_id u64, fault u8 ∈ {0,1} [, class u8, seed u64]` — `class` is the `FaultClass::ALL` index, or `ALL.len()` for the mid-run engine bit-flip |
//! | `SPMV`      | same as `TRANSPOSE` |
//! | `FETCH`     | `target_request_id u64` |
//! | `STATS`     | empty |
//! | `SHUTDOWN`  | empty |
//! | `METRICS`   | empty |
//!
//! `request_id` is the idempotency key: re-sending an id that is already
//! in flight joins the original execution, and re-sending a completed id
//! replays the recorded result — at-most-once kernel execution under
//! at-least-once delivery.
//!
//! ## Response payload
//!
//! ```text
//! status: u8 | flags: u8 | request_id: u64 | body…
//! ```
//!
//! Flag bit 0 is **degraded**: the primary kernel did not produce the
//! verified result, the registry fallback did. `Ok` responses to
//! `TRANSPOSE`/`SPMV`/`FETCH` carry the result digest (`u64`);
//! `RETRY_AFTER` carries a backoff hint in milliseconds (`u32`);
//! `STATS` carries a count-prefixed `u64` list (see
//! [`crate::server::StatsSnapshot`] for the field order); `METRICS`
//! carries a `u32::MAX` marker, a `u32` byte length and that many bytes
//! of Prometheus-format UTF-8 text. The marker keeps the `Ok`-body
//! decode unambiguous: a count-prefixed `STATS` list never starts with
//! `u32::MAX`, and the exposition text is never empty, so a `METRICS`
//! body is never 8 bytes long like a digest.

use stm_hism::FaultClass;

/// Frame magic: every frame starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"STM1";

/// Default cap on a frame payload (1 MiB) — a `SUBMIT` of roughly 87k
/// triplets, far above anything the synthetic suites ship.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Response flag bit 0: the result came from the registry fallback.
pub const FLAG_DEGRADED: u8 = 1;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// Upload a matrix under a caller-chosen `matrix_id`.
    Submit = 1,
    /// Transpose a submitted matrix (resilient path, breaker-protected).
    Transpose = 2,
    /// SpMV over a submitted matrix (resilient path, no fallback).
    Spmv = 3,
    /// Replay the recorded result of a completed request id.
    Fetch = 4,
    /// Read the service counters.
    Stats = 5,
    /// Drain in-flight work, checkpoint, and stop the server.
    Shutdown = 6,
    /// Read the live telemetry registry as Prometheus exposition text.
    Metrics = 7,
}

impl Op {
    /// Decodes the wire opcode.
    pub fn from_u8(v: u8) -> Option<Op> {
        match v {
            1 => Some(Op::Submit),
            2 => Some(Op::Transpose),
            3 => Some(Op::Spmv),
            4 => Some(Op::Fetch),
            5 => Some(Op::Stats),
            6 => Some(Op::Shutdown),
            7 => Some(Op::Metrics),
            _ => None,
        }
    }

    /// Stable lowercase name (results log, load-report lines).
    pub fn name(self) -> &'static str {
        match self {
            Op::Submit => "submit",
            Op::Transpose => "transpose",
            Op::Spmv => "spmv",
            Op::Fetch => "fetch",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
            Op::Metrics => "metrics",
        }
    }

    /// Parses [`Op::name`] output.
    pub fn from_name(name: &str) -> Option<Op> {
        match name {
            "submit" => Some(Op::Submit),
            "transpose" => Some(Op::Transpose),
            "spmv" => Some(Op::Spmv),
            "fetch" => Some(Op::Fetch),
            "stats" => Some(Op::Stats),
            "shutdown" => Some(Op::Shutdown),
            "metrics" => Some(Op::Metrics),
            _ => None,
        }
    }
}

/// Typed response status — every failure mode of the resilient pipeline
/// surfaces as one of these, never as a closed connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request completed; an execution response carries the digest.
    Ok = 0,
    /// The frame or payload did not parse.
    BadFrame = 1,
    /// Unknown opcode.
    UnknownOp = 2,
    /// `TRANSPOSE`/`SPMV` named a matrix id that was never submitted.
    UnknownMatrix = 3,
    /// The client exceeded its in-flight request quota.
    QuotaExceeded = 4,
    /// The bounded admission queue is full — retry after the hinted
    /// delay (load shedding, not failure).
    RetryAfter = 5,
    /// The kernel and its fallback (if any) both failed.
    KernelFailed = 6,
    /// The per-request cycle budget was exceeded.
    DeadlineExceeded = 7,
    /// The frame exceeded the server's size limit.
    TooLarge = 8,
    /// The server is draining; no new work is admitted.
    ShuttingDown = 9,
    /// `FETCH` named a request id with no recorded result.
    NotFound = 10,
    /// Integrity verification proved the result wrong and no independent
    /// re-execution could recover a trustworthy majority — the server
    /// refuses to serve a digest it cannot vouch for.
    DataCorrupt = 11,
}

impl Status {
    /// Decodes the wire status.
    pub fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Ok),
            1 => Some(Status::BadFrame),
            2 => Some(Status::UnknownOp),
            3 => Some(Status::UnknownMatrix),
            4 => Some(Status::QuotaExceeded),
            5 => Some(Status::RetryAfter),
            6 => Some(Status::KernelFailed),
            7 => Some(Status::DeadlineExceeded),
            8 => Some(Status::TooLarge),
            9 => Some(Status::ShuttingDown),
            10 => Some(Status::NotFound),
            11 => Some(Status::DataCorrupt),
            _ => None,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::BadFrame => "bad_frame",
            Status::UnknownOp => "unknown_op",
            Status::UnknownMatrix => "unknown_matrix",
            Status::QuotaExceeded => "quota_exceeded",
            Status::RetryAfter => "retry_after",
            Status::KernelFailed => "kernel_failed",
            Status::DeadlineExceeded => "deadline_exceeded",
            Status::TooLarge => "too_large",
            Status::ShuttingDown => "shutting_down",
            Status::NotFound => "not_found",
            Status::DataCorrupt => "data_corrupt",
        }
    }
}

/// A deterministic fault to inject into the request's primary kernel —
/// the chaos face of the protocol, mirroring the soak pipeline's
/// `FaultSpec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRequest {
    /// Fault class, encoded on the wire as its index in
    /// [`FaultClass::ALL`].
    pub class: FaultClass,
    /// Seed choosing the exact corruption site.
    pub seed: u64,
}

/// The op-specific part of a request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Upload a matrix.
    Submit {
        /// Caller-chosen matrix id (re-submitting is idempotent).
        matrix_id: u64,
        /// Row count.
        rows: u32,
        /// Column count.
        cols: u32,
        /// Triplets `(row, col, value)`.
        entries: Vec<(u32, u32, f32)>,
    },
    /// Transpose `matrix_id`, optionally with an injected fault.
    Transpose {
        /// The matrix to transpose.
        matrix_id: u64,
        /// Deterministic fault to inject into the primary kernel.
        fault: Option<FaultRequest>,
    },
    /// SpMV over `matrix_id`, optionally with an injected fault.
    Spmv {
        /// The matrix to multiply.
        matrix_id: u64,
        /// Deterministic fault to inject into the primary kernel.
        fault: Option<FaultRequest>,
    },
    /// Replay the result of completed request `target`.
    Fetch {
        /// The request id to look up.
        target: u64,
    },
    /// Read the service counters.
    Stats,
    /// Drain and stop the server.
    Shutdown,
    /// Read the live telemetry registry (Prometheus text).
    Metrics,
}

impl RequestBody {
    /// The opcode this body encodes under.
    pub fn op(&self) -> Op {
        match self {
            RequestBody::Submit { .. } => Op::Submit,
            RequestBody::Transpose { .. } => Op::Transpose,
            RequestBody::Spmv { .. } => Op::Spmv,
            RequestBody::Fetch { .. } => Op::Fetch,
            RequestBody::Stats => Op::Stats,
            RequestBody::Shutdown => Op::Shutdown,
            RequestBody::Metrics => Op::Metrics,
        }
    }
}

/// One decoded request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Idempotency key; unique per logical request.
    pub request_id: u64,
    /// The submitting client (quota accounting).
    pub client_id: u64,
    /// The op-specific payload.
    pub body: RequestBody,
}

/// The op-specific part of a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseBody {
    /// No payload (errors, `SUBMIT`/`SHUTDOWN` acks).
    Empty,
    /// Result digest of an execution or `FETCH`.
    Digest(u64),
    /// Backoff hint in milliseconds (`RETRY_AFTER`).
    RetryAfterMs(u32),
    /// Counter values in [`crate::server::StatsSnapshot`] field order.
    Stats(Vec<u64>),
    /// Prometheus exposition text (`METRICS`); never empty on the wire.
    Metrics(String),
}

/// One decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Terminal status of the request.
    pub status: Status,
    /// The result was produced by the registry fallback, not the
    /// primary kernel.
    pub degraded: bool,
    /// Echo of the request's idempotency key.
    pub request_id: u64,
    /// The status-specific payload.
    pub body: ResponseBody,
}

impl Response {
    /// An empty-bodied response.
    pub fn empty(status: Status, request_id: u64) -> Response {
        Response {
            status,
            degraded: false,
            request_id,
            body: ResponseBody::Empty,
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed (includes read timeouts and EOF).
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The declared payload length exceeds the receiver's limit; the
    /// payload was *not* read.
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds the limit"),
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (magic, length, payload) and flushes.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing the magic and the `max_len` payload cap.
///
/// The length check runs before any payload allocation, so a hostile
/// 4 GiB length prefix costs the server eight bytes of reading, not an
/// allocation.
pub fn read_frame(r: &mut impl std::io::Read, max_len: usize) -> Result<Vec<u8>, FrameError> {
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    let magic: [u8; 4] = head[..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(head[4..].try_into().expect("4-byte slice"));
    if len as usize > max_len {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Little-endian byte cursor for payload decoding.
struct Cur<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, p: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.p.checked_add(n).filter(|&e| e <= self.b.len());
        match end {
            Some(end) => {
                let s = &self.b[self.p..end];
                self.p = end;
                Ok(s)
            }
            None => Err(format!(
                "payload truncated: wanted {n} bytes at offset {} of {}",
                self.p,
                self.b.len()
            )),
        }
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), String> {
        if self.p == self.b.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after the payload",
                self.b.len() - self.p
            ))
        }
    }
}

fn encode_fault(out: &mut Vec<u8>, fault: &Option<FaultRequest>) {
    match fault {
        None => out.push(0),
        Some(f) => {
            out.push(1);
            // Pre-run image classes use their `ALL` index; the mid-run
            // engine flip (outside `ALL` by design) takes the next slot.
            let idx = FaultClass::ALL
                .iter()
                .position(|c| *c == f.class)
                .unwrap_or(FaultClass::ALL.len()) as u8;
            out.push(idx);
            out.extend_from_slice(&f.seed.to_le_bytes());
        }
    }
}

fn decode_fault(c: &mut Cur<'_>) -> Result<Option<FaultRequest>, String> {
    match c.u8()? {
        0 => Ok(None),
        1 => {
            let idx = c.u8()? as usize;
            let class = match FaultClass::ALL.get(idx) {
                Some(class) => *class,
                None if idx == FaultClass::ALL.len() => FaultClass::MidRunBitFlip,
                None => return Err(format!("fault class index {idx} out of range")),
            };
            Ok(Some(FaultRequest {
                class,
                seed: c.u64()?,
            }))
        }
        v => Err(format!("bad fault flag {v}")),
    }
}

/// Encodes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.push(req.body.op() as u8);
    out.extend_from_slice(&req.request_id.to_le_bytes());
    out.extend_from_slice(&req.client_id.to_le_bytes());
    match &req.body {
        RequestBody::Submit {
            matrix_id,
            rows,
            cols,
            entries,
        } => {
            out.extend_from_slice(&matrix_id.to_le_bytes());
            out.extend_from_slice(&rows.to_le_bytes());
            out.extend_from_slice(&cols.to_le_bytes());
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for &(r, c, v) in entries {
                out.extend_from_slice(&r.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        RequestBody::Transpose { matrix_id, fault } | RequestBody::Spmv { matrix_id, fault } => {
            out.extend_from_slice(&matrix_id.to_le_bytes());
            encode_fault(&mut out, fault);
        }
        RequestBody::Fetch { target } => out.extend_from_slice(&target.to_le_bytes()),
        RequestBody::Stats | RequestBody::Shutdown | RequestBody::Metrics => {}
    }
    out
}

/// Decodes a frame payload into a request. `Err(None)` marks an unknown
/// opcode (reply `UNKNOWN_OP`); `Err(Some(_))` a malformed payload
/// (reply `BAD_FRAME`).
#[allow(clippy::result_large_err)]
pub fn decode_request(payload: &[u8]) -> Result<Request, Option<String>> {
    let mut c = Cur::new(payload);
    let op = c.u8().map_err(Some)?;
    let op = Op::from_u8(op).ok_or(None)?;
    let request_id = c.u64().map_err(Some)?;
    let client_id = c.u64().map_err(Some)?;
    let body = match op {
        Op::Submit => {
            let matrix_id = c.u64().map_err(Some)?;
            let rows = c.u32().map_err(Some)?;
            let cols = c.u32().map_err(Some)?;
            let nnz = c.u32().map_err(Some)? as usize;
            // The frame length cap has already bounded nnz; still, refuse
            // counts the remaining payload cannot hold.
            if nnz > payload.len() / 12 + 1 {
                return Err(Some(format!("nnz {nnz} exceeds the payload")));
            }
            let mut entries = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                let r = c.u32().map_err(Some)?;
                let col = c.u32().map_err(Some)?;
                let v = f32::from_bits(c.u32().map_err(Some)?);
                entries.push((r, col, v));
            }
            RequestBody::Submit {
                matrix_id,
                rows,
                cols,
                entries,
            }
        }
        Op::Transpose => RequestBody::Transpose {
            matrix_id: c.u64().map_err(Some)?,
            fault: decode_fault(&mut c).map_err(Some)?,
        },
        Op::Spmv => RequestBody::Spmv {
            matrix_id: c.u64().map_err(Some)?,
            fault: decode_fault(&mut c).map_err(Some)?,
        },
        Op::Fetch => RequestBody::Fetch {
            target: c.u64().map_err(Some)?,
        },
        Op::Stats => RequestBody::Stats,
        Op::Shutdown => RequestBody::Shutdown,
        Op::Metrics => RequestBody::Metrics,
    };
    c.done().map_err(Some)?;
    Ok(Request {
        request_id,
        client_id,
        body,
    })
}

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.push(resp.status as u8);
    out.push(if resp.degraded { FLAG_DEGRADED } else { 0 });
    out.extend_from_slice(&resp.request_id.to_le_bytes());
    match &resp.body {
        ResponseBody::Empty => {}
        ResponseBody::Digest(d) => out.extend_from_slice(&d.to_le_bytes()),
        ResponseBody::RetryAfterMs(ms) => out.extend_from_slice(&ms.to_le_bytes()),
        ResponseBody::Stats(vals) => {
            out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
            for v in vals {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        ResponseBody::Metrics(text) => {
            out.extend_from_slice(&u32::MAX.to_le_bytes());
            out.extend_from_slice(&(text.len() as u32).to_le_bytes());
            out.extend_from_slice(text.as_bytes());
        }
    }
    out
}

/// Decodes a frame payload into a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let mut c = Cur::new(payload);
    let status = c.u8()?;
    let status = Status::from_u8(status).ok_or_else(|| format!("bad status byte {status}"))?;
    let flags = c.u8()?;
    let request_id = c.u64()?;
    let body = if c.p == payload.len() {
        ResponseBody::Empty
    } else {
        match status {
            Status::RetryAfter => ResponseBody::RetryAfterMs(c.u32()?),
            Status::Ok if payload.len() - c.p > 8 => {
                let n = c.u32()?;
                if n == u32::MAX {
                    let len = c.u32()? as usize;
                    let bytes = c.take(len)?;
                    let text = String::from_utf8(bytes.to_vec())
                        .map_err(|e| format!("metrics payload is not UTF-8: {e}"))?;
                    ResponseBody::Metrics(text)
                } else {
                    let n = n as usize;
                    let mut vals = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        vals.push(c.u64()?);
                    }
                    ResponseBody::Stats(vals)
                }
            }
            _ => ResponseBody::Digest(c.u64()?),
        }
    };
    c.done()?;
    Ok(Response {
        status,
        degraded: flags & FLAG_DEGRADED != 0,
        request_id,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request) {
        let payload = encode_request(&req);
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request {
            request_id: 7,
            client_id: 3,
            body: RequestBody::Submit {
                matrix_id: 0xabcd,
                rows: 16,
                cols: 8,
                entries: vec![(0, 1, 1.5), (15, 7, -0.0)],
            },
        });
        round_trip(Request {
            request_id: u64::MAX,
            client_id: 0,
            body: RequestBody::Transpose {
                matrix_id: 1,
                fault: Some(FaultRequest {
                    class: FaultClass::Truncate,
                    seed: 0x5eed,
                }),
            },
        });
        // The mid-run engine flip sits outside `FaultClass::ALL` and
        // rides the wire on the slot after the last image class.
        round_trip(Request {
            request_id: 8,
            client_id: 1,
            body: RequestBody::Transpose {
                matrix_id: 2,
                fault: Some(FaultRequest {
                    class: FaultClass::MidRunBitFlip,
                    seed: 0x5dc,
                }),
            },
        });
        round_trip(Request {
            request_id: 2,
            client_id: 2,
            body: RequestBody::Spmv {
                matrix_id: 1,
                fault: None,
            },
        });
        round_trip(Request {
            request_id: 3,
            client_id: 2,
            body: RequestBody::Fetch { target: 7 },
        });
        round_trip(Request {
            request_id: 4,
            client_id: 2,
            body: RequestBody::Stats,
        });
        round_trip(Request {
            request_id: 5,
            client_id: 2,
            body: RequestBody::Shutdown,
        });
        round_trip(Request {
            request_id: 6,
            client_id: 2,
            body: RequestBody::Metrics,
        });
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::empty(Status::ShuttingDown, 9),
            Response {
                status: Status::Ok,
                degraded: true,
                request_id: 1,
                body: ResponseBody::Digest(0xdead_beef),
            },
            Response {
                status: Status::RetryAfter,
                degraded: false,
                request_id: 2,
                body: ResponseBody::RetryAfterMs(5),
            },
            Response {
                status: Status::Ok,
                degraded: false,
                request_id: 3,
                body: ResponseBody::Stats(vec![1, 2, 3, u64::MAX]),
            },
            Response {
                status: Status::Ok,
                degraded: false,
                request_id: 4,
                body: ResponseBody::Metrics(
                    "# TYPE stm_serve_completed counter\nstm_serve_completed_total 3\n".to_string(),
                ),
            },
        ] {
            let payload = encode_response(&resp);
            assert_eq!(decode_response(&payload).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Unknown opcode → Err(None) → UNKNOWN_OP.
        let mut p = encode_request(&Request {
            request_id: 1,
            client_id: 1,
            body: RequestBody::Stats,
        });
        p[0] = 0x7f;
        assert!(matches!(decode_request(&p), Err(None)));

        // Truncated payload → Err(Some) → BAD_FRAME.
        let p = encode_request(&Request {
            request_id: 1,
            client_id: 1,
            body: RequestBody::Fetch { target: 3 },
        });
        assert!(matches!(decode_request(&p[..p.len() - 2]), Err(Some(_))));

        // Trailing garbage is rejected, not ignored.
        let mut p = encode_request(&Request {
            request_id: 1,
            client_id: 1,
            body: RequestBody::Stats,
        });
        p.push(0);
        assert!(matches!(decode_request(&p), Err(Some(_))));

        // A runaway nnz that the payload cannot hold is refused.
        let mut p = encode_request(&Request {
            request_id: 1,
            client_id: 1,
            body: RequestBody::Submit {
                matrix_id: 0,
                rows: 4,
                cols: 4,
                entries: vec![(0, 0, 1.0)],
            },
        });
        let nnz_at = 1 + 8 + 8 + 8 + 4 + 4;
        p[nnz_at..nnz_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_request(&p), Err(Some(_))));
    }

    #[test]
    fn frame_guards_fire_before_payload_reads() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(read_frame(&mut &buf[..], 64).unwrap(), b"hello");

        // Oversized: rejected from the 8-byte header alone.
        let r = read_frame(&mut &buf[..], 4);
        assert!(matches!(r, Err(FrameError::TooLarge(5))), "{r:?}");

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut &bad[..], 64),
            Err(FrameError::BadMagic(_))
        ));

        // Short read (slow-loris torso) is an Io error.
        assert!(matches!(
            read_frame(&mut &buf[..6], 64),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn names_round_trip() {
        for op in [
            Op::Submit,
            Op::Transpose,
            Op::Spmv,
            Op::Fetch,
            Op::Stats,
            Op::Shutdown,
            Op::Metrics,
        ] {
            assert_eq!(Op::from_name(op.name()), Some(op));
            assert_eq!(Op::from_u8(op as u8), Some(op));
        }
        for s in 0..=11 {
            let status = Status::from_u8(s).unwrap();
            assert_eq!(status as u8, s);
        }
        assert_eq!(Status::from_u8(12), None);
    }
}
