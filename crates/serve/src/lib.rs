//! Transpose-as-a-service: a fault-tolerant TCP front-end over the
//! resilient pipeline.
//!
//! The crate is deliberately small and dependency-free, like the rest of
//! the workspace:
//!
//! * [`protocol`] — the `STM1` length-prefixed binary wire protocol
//!   (frames, opcodes, typed statuses);
//! * [`store`] — the durable, torn-tail-tolerant results log that
//!   survives `kill -9`;
//! * [`server`] — the `stmserve` server: bounded admission queue,
//!   per-client quotas, circuit-breaker degradation through
//!   `stm_bench::resilient::execute_slot`, load shedding, clean drain;
//! * [`client`] — a blocking client;
//! * [`load`] — the `stmload` chaos-injecting load harness with
//!   digest verification against host oracles;
//! * [`flight`] — the always-on crash flight recorder: a bounded ring
//!   of recent service events, dumped atomically to JSONL on panic,
//!   breaker-open, deadline storms, or `SIGTERM`;
//! * [`scrape`] — a minimal Prometheus scrape client over the
//!   `--metrics-addr` exposition listener (used by `stmtop` and
//!   `stmload`).
//!
//! See DESIGN.md §13 for the architecture and the wire format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod flight;
pub mod load;
pub mod protocol;
pub mod scrape;
pub mod server;
pub mod store;

pub use client::Client;
pub use load::{run_load, LoadConfig, LoadReport};
pub use protocol::{Op, Request, RequestBody, Response, ResponseBody, Status};
pub use server::{ServeConfig, Server, StatsSnapshot};
pub use store::{ResultRecord, ResultsLog};
