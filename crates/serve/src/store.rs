//! The durable results log: what lets a `kill -9`'d server come back
//! and re-serve `FETCH`es for every request it had completed.
//!
//! ## Schema: `stm-serve-results/v2`
//!
//! JSON lines with byte-deterministic layout, one completed request per
//! line, appended and flushed at commit time (never rewritten), every
//! line sealed with a per-record checksum ([`stm_obs::journal::seal`]):
//!
//! ```text
//! {"schema":"stm-serve-results/v2","crc":"0x…"}
//! {"id":"0x0000000000000007","client":"0x0000000000000001","op":"transpose",
//!  "matrix":"0x0000000000000002","status":"ok","degraded":false,
//!  "corrupted":false,"digest":"0x89abcdef01234567","crc":"0x…"}
//! ```
//!
//! All 64-bit values serialize as fixed-width hex strings — the shared
//! JSON parser routes numbers through `f64`, which cannot hold 64 bits
//! (the same rule the soak checkpoint follows for its fingerprint).
//!
//! Because each line is flushed before the response is sent, a `SIGKILL`
//! can lose at most the line being written — and only by tearing it.
//! [`ResultsLog::open`] therefore tolerates exactly one torn **final**
//! line (skipped with a warning, then truncated away so appends stay
//! well-formed); garbage anywhere else — including a line whose seal
//! fails — is corruption and refuses to load. Reading and torn-tail
//! handling go through the shared [`stm_obs::journal`] reader. `v1`
//! files (no seals, no `corrupted` field) still load as legacy.

use crate::protocol::{Op, Status};
use std::io::Write;
use std::path::Path;
use stm_obs::journal;
use stm_obs::json::Json;

/// Schema tag of the header line.
pub const SCHEMA: &str = "stm-serve-results/v2";

/// The previous schema, still accepted on load: no record seals, no
/// `corrupted` field.
pub const SCHEMA_V1: &str = "stm-serve-results/v1";

/// One completed execution request, as recorded durably.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultRecord {
    /// The request's idempotency key.
    pub request_id: u64,
    /// The submitting client.
    pub client_id: u64,
    /// `Transpose` or `Spmv`.
    pub op: Op,
    /// The matrix the request ran over.
    pub matrix_id: u64,
    /// Terminal status (`Ok`, `KernelFailed`, `DeadlineExceeded` or
    /// `DataCorrupt`).
    pub status: Status,
    /// The result came from the registry fallback.
    pub degraded: bool,
    /// Integrity verification convicted the primary's output; the
    /// digest, when present, is the recovered majority result.
    pub corrupted: bool,
    /// Canonical result digest (0 when the request failed).
    pub digest: u64,
}

impl ResultRecord {
    /// The canonical (byte-deterministic) serialization — the unit the
    /// log file is built from.
    pub fn canonical_line(&self) -> String {
        format!(
            "{{\"id\":\"0x{:016x}\",\"client\":\"0x{:016x}\",\"op\":\"{}\",\"matrix\":\"0x{:016x}\",\"status\":\"{}\",\"degraded\":{},\"corrupted\":{},\"digest\":\"0x{:016x}\"}}",
            self.request_id,
            self.client_id,
            self.op.name(),
            self.matrix_id,
            self.status.name(),
            self.degraded,
            self.corrupted,
            self.digest,
        )
    }

    fn parse(json: &Json) -> Result<ResultRecord, String> {
        let hex = |k: &str| -> Result<u64, String> {
            json.get(k)
                .and_then(Json::as_str)
                .and_then(|s| s.strip_prefix("0x"))
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| format!("missing hex field {k:?}"))
        };
        let s = |k: &str| -> Result<&str, String> {
            json.get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let op = s("op")?;
        let op = Op::from_name(op).ok_or_else(|| format!("bad op {op:?}"))?;
        let status = s("status")?;
        let status = status_from_name(status).ok_or_else(|| format!("bad status {status:?}"))?;
        Ok(ResultRecord {
            request_id: hex("id")?,
            client_id: hex("client")?,
            op,
            matrix_id: hex("matrix")?,
            status,
            degraded: json
                .get("degraded")
                .and_then(Json::as_bool)
                .ok_or("missing bool field \"degraded\"")?,
            // v2 field: absent in v1 logs, defaulting to "not detected".
            corrupted: json
                .get("corrupted")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            digest: hex("digest")?,
        })
    }
}

fn status_from_name(name: &str) -> Option<Status> {
    (0..=u8::MAX)
        .map_while(Status::from_u8)
        .find(|s| s.name() == name)
}

/// The append-only results log, flushed per record.
#[derive(Debug)]
pub struct ResultsLog {
    file: std::fs::File,
}

impl ResultsLog {
    /// Opens (or creates) the log at `path`, returning the writer and
    /// every record the previous incarnation committed.
    ///
    /// A torn final line — the signature of a `kill -9` landing
    /// mid-append — is skipped with a warning and truncated away;
    /// corruption anywhere else is an error.
    pub fn open(path: &Path) -> std::io::Result<(ResultsLog, Vec<ResultRecord>)> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let bad = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        let (records, keep_len, fresh) = match std::fs::read_to_string(path) {
            Ok(text) => {
                let (records, keep_len) = parse_log(&text, path).map_err(bad)?;
                (records, keep_len, false)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), 0, true),
            Err(e) => return Err(e),
        };
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        // Drop the torn tail (if any) so the next append starts on a
        // fresh line rather than gluing onto the partial record.
        file.set_len(keep_len as u64)?;
        let mut log = ResultsLog { file };
        if fresh {
            log.write_line(&journal::seal(&format!("{{\"schema\":\"{SCHEMA}\"}}")))?;
        }
        Ok((log, records))
    }

    /// Appends one record (sealed) and flushes it to the OS — after this
    /// returns, a `SIGKILL` cannot lose the record.
    pub fn append(&mut self, rec: &ResultRecord) -> std::io::Result<()> {
        self.write_line(&journal::seal(&rec.canonical_line()))
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }
}

/// Parses the log text through the shared journal reader; returns the
/// records and the byte length of the well-formed prefix (everything up
/// to and including the last complete line).
fn parse_log(text: &str, path: &Path) -> Result<(Vec<ResultRecord>, usize), String> {
    if text.is_empty() {
        return Ok((Vec::new(), 0));
    }
    let read = journal::read_journal(text, |index, body| {
        let json = Json::parse(body).map_err(|e| e.to_string())?;
        if index == 0 {
            let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
            if schema != SCHEMA && schema != SCHEMA_V1 {
                return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
            }
            return Ok(None);
        }
        ResultRecord::parse(&json)
            .map(Some)
            .map_err(|e| format!("record {}: {e}", index - 1))
    })?;
    if let Some(torn) = &read.torn {
        eprintln!(
            "warning: results log {path:?}: skipping torn final line \
             (truncated mid-append record): {torn}"
        );
    }
    Ok((read.records, read.keep_len as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ResultRecord> {
        vec![
            ResultRecord {
                request_id: 7,
                client_id: 1,
                op: Op::Transpose,
                matrix_id: 2,
                status: Status::Ok,
                degraded: true,
                corrupted: false,
                digest: 0x89ab_cdef_0123_4567,
            },
            ResultRecord {
                request_id: 8,
                client_id: 1,
                op: Op::Spmv,
                matrix_id: 3,
                status: Status::KernelFailed,
                degraded: false,
                corrupted: false,
                digest: 0,
            },
        ]
    }

    #[test]
    fn v1_lines_load_as_legacy_and_corrupt_seals_refuse() {
        let dir = std::env::temp_dir().join("stm-serve-log-v1");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.log");
        // An unsealed v1 log: no crc fields, no corrupted field.
        std::fs::write(
            &path,
            format!(
                "{{\"schema\":\"{SCHEMA_V1}\"}}\n\
                 {{\"id\":\"0x0000000000000007\",\"client\":\"0x0000000000000001\",\
                 \"op\":\"transpose\",\"matrix\":\"0x0000000000000002\",\"status\":\"ok\",\
                 \"degraded\":false,\"digest\":\"0x89abcdef01234567\"}}\n"
            ),
        )
        .unwrap();
        let (_, loaded) = ResultsLog::open(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(!loaded[0].corrupted);
        assert_eq!(loaded[0].digest, 0x89ab_cdef_0123_4567);

        // A sealed v2 log with one flipped content bit refuses to load.
        let path2 = dir.join("sealed.log");
        {
            let (mut log, _) = ResultsLog::open(&path2).unwrap();
            for r in &sample() {
                log.append(r).unwrap();
            }
        }
        let text = std::fs::read_to_string(&path2).unwrap();
        let rotten = text.replacen("\"degraded\":true", "\"degraded\":false", 1);
        assert_ne!(rotten, text);
        std::fs::write(&path2, rotten).unwrap();
        let err = ResultsLog::open(&path2).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_reload_round_trips() {
        let dir = std::env::temp_dir().join("stm-serve-log-roundtrip");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("results.log");
        let records = sample();
        {
            let (mut log, loaded) = ResultsLog::open(&path).unwrap();
            assert!(loaded.is_empty());
            for r in &records {
                log.append(r).unwrap();
            }
        }
        let (_, loaded) = ResultsLog::open(&path).unwrap();
        assert_eq!(loaded, records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_torn_final_append_is_dropped_and_truncated() {
        let dir = std::env::temp_dir().join("stm-serve-log-torn");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("results.log");
        let records = sample();
        {
            let (mut log, _) = ResultsLog::open(&path).unwrap();
            for r in &records {
                log.append(r).unwrap();
            }
        }
        // Tear the final record mid-byte, as SIGKILL mid-append would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

        // Reopen: the intact prefix loads, the torn tail is gone, and a
        // fresh append lands on its own line.
        let (mut log, loaded) = ResultsLog::open(&path).unwrap();
        assert_eq!(loaded, records[..1]);
        let extra = ResultRecord {
            request_id: 9,
            ..records[0].clone()
        };
        log.append(&extra).unwrap();
        drop(log);
        let (_, reloaded) = ResultsLog::open(&path).unwrap();
        assert_eq!(reloaded, vec![records[0].clone(), extra]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_garbage_refuses_to_load() {
        let dir = std::env::temp_dir().join("stm-serve-log-garbage");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("results.log");
        {
            let (mut log, _) = ResultsLog::open(&path).unwrap();
            for r in &sample() {
                log.append(r).unwrap();
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let garbled = text.replacen("\"op\":\"transpose\"", "\"op\":", 1);
        std::fs::write(&path, garbled).unwrap();
        assert!(ResultsLog::open(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
