//! Crash flight recorder: an always-on bounded ring of recent service
//! events, dumped atomically to a JSONL file when something goes wrong.
//!
//! The ring is deliberately cheap — one mutex-guarded `VecDeque` per
//! worker shard, instants only, wall-millisecond timestamps relative to
//! server start — so it can stay on in production without perturbing
//! the execution path. A dump:
//!
//! * keeps only the events from the last `window_ms` milliseconds,
//! * merges all shards and sorts by timestamp (so the output passes the
//!   per-lane monotonicity check and loads in `stmprof` / `tracecheck`
//!   like any other trace),
//! * records the trigger as a `flight.reason.<reason>` counter,
//! * is written to a temp file and `rename`d into place, so a reader
//!   never observes a half-written dump — at worst the tail of the
//!   *previous* incomplete attempt, which the JSONL loaders already
//!   tolerate.
//!
//! Triggers (see `server.rs`): worker panic, a circuit breaker opening,
//! a deadline storm, `SIGTERM` in the `stmserve` bin, and the
//! `--flight-every` test hook.

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use stm_obs::{Category, EventKind, Lane, TraceData, TraceEvent};

/// Default cap on buffered events across all shards.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// The always-on ring. Writers pick a shard (worker index; shard
/// indexes wrap), so workers never contend with each other.
pub struct FlightRecorder {
    shards: Vec<Mutex<VecDeque<TraceEvent>>>,
    cap_per_shard: usize,
    window_ms: u64,
    /// Dump sequence number, part of the dump filename so repeated
    /// triggers within one millisecond never collide.
    seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with `shards` stripes (clamped to at least 1), a
    /// dump window of `window_ms` milliseconds (clamped to at least 1),
    /// and [`DEFAULT_CAPACITY`] total buffered events.
    pub fn new(shards: usize, window_ms: u64) -> Self {
        let shards = shards.max(1);
        FlightRecorder {
            cap_per_shard: (DEFAULT_CAPACITY / shards).max(64),
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            window_ms: window_ms.max(1),
            seq: AtomicU64::new(0),
        }
    }

    /// Width of the dump window in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.window_ms
    }

    /// Record an instant on `shard` at wall time `now_ms` (milliseconds
    /// since server start), correlated to request `req` (0 = none).
    pub fn record(&self, shard: usize, name: &'static str, now_ms: u64, req: u64) {
        let mut ring = self.shards[shard % self.shards.len()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.cap_per_shard {
            ring.pop_front();
        }
        ring.push_back(TraceEvent {
            ts: now_ms,
            lane: Lane::Serve,
            cat: Category::Serve,
            name,
            req,
            kind: EventKind::Instant,
        });
    }

    /// The last-window view as ordinary trace data: events within
    /// `(now_ms - window_ms, now_ms]` across all shards, sorted by
    /// timestamp, plus a `flight.reason.<reason>` counter naming the
    /// trigger and a `flight.now_ms` counter anchoring the clock.
    pub fn snapshot(&self, reason: &str, now_ms: u64) -> TraceData {
        // Within the first `window_ms` of uptime the window has no lower
        // bound: `now_ms - window` would saturate to 0 and the strict
        // `>` would wrongly drop events stamped at 0.
        let in_window =
            |ts: u64| ts <= now_ms && (now_ms < self.window_ms || ts > now_ms - self.window_ms);
        let mut events: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock().unwrap_or_else(|e| e.into_inner());
            events.extend(ring.iter().filter(|e| in_window(e.ts)).cloned());
        }
        events.sort_by_key(|e| e.ts);
        TraceData {
            events,
            dropped: 0,
            counters: vec![
                (format!("flight.reason.{reason}"), 1),
                ("flight.now_ms".to_string(), now_ms),
            ],
            histograms: Vec::new(),
        }
    }

    /// Dump the last window to `dir/flight-<now_ms>-<seq>.jsonl`,
    /// atomically (temp file + rename). Returns the final path.
    ///
    /// Every line carries a [`stm_obs::journal`] checksum seal — the
    /// `crc` field is ignored by the JSONL loaders but lets `stmscrub`
    /// verify a dump at rest, the same way it verifies checkpoints and
    /// results logs.
    pub fn dump(&self, dir: &Path, reason: &str, now_ms: u64) -> std::io::Result<PathBuf> {
        let data = self.snapshot(reason, now_ms);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight-{now_ms}-{seq}.jsonl"));
        let tmp = dir.join(format!(".flight-{now_ms}-{seq}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            for line in data.to_jsonl().lines() {
                f.write_all(stm_obs::journal::seal(line).as_bytes())?;
                f.write_all(b"\n")?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_filters_and_sorts_across_shards() {
        let fr = FlightRecorder::new(3, 100);
        fr.record(0, "a", 5, 1);
        fr.record(1, "b", 250, 2);
        fr.record(2, "c", 200, 3);
        let data = fr.snapshot("test", 260);
        // t=5 is outside (160, 260]; the rest sort by timestamp.
        let names: Vec<_> = data.events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["c", "b"]);
        assert_eq!(data.counter("flight.reason.test"), 1);
        assert_eq!(data.counter("flight.now_ms"), 260);
    }

    #[test]
    fn a_dump_in_the_first_millisecond_keeps_ts_zero_events() {
        let fr = FlightRecorder::new(1, 10_000);
        fr.record(0, "flight.execute", 0, 1);
        let data = fr.snapshot("early", 0);
        assert_eq!(data.events.len(), 1, "ts=0 must be inside the window");
    }

    #[test]
    fn ring_is_bounded() {
        let fr = FlightRecorder::new(1, u64::MAX);
        for i in 0..(DEFAULT_CAPACITY as u64 + 500) {
            fr.record(0, "e", i, 0);
        }
        let data = fr.snapshot("cap", DEFAULT_CAPACITY as u64 + 500);
        assert_eq!(data.events.len(), DEFAULT_CAPACITY);
        // Oldest events were evicted first.
        assert_eq!(data.events[0].ts, 500);
    }

    #[test]
    fn dump_is_valid_jsonl_and_atomic() {
        let dir = std::env::temp_dir().join(format!("stm-flight-test-{}", std::process::id()));
        let fr = FlightRecorder::new(2, 1000);
        fr.record(0, "flight.execute", 10, 7);
        fr.record(1, "flight.commit.ok", 20, 7);
        let path = fr.dump(&dir, "unit", 25).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(stm_obs::jsonl::validate_jsonl(&text).is_ok());
        assert!(text.contains("flight.reason.unit"));
        // Every dumped line is checksum-sealed and scrubs clean.
        let scrub = stm_obs::journal::scrub_text(&text);
        assert!(scrub.is_clean());
        assert_eq!(scrub.sealed, scrub.lines);
        // A flipped bit at rest is detected by the scrubber.
        let rotten = text.replacen("flight.execute", "flight.exequte", 1);
        assert!(!stm_obs::journal::scrub_text(&rotten).is_clean());
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
