//! `stmload` — the chaos-injecting synthetic-client harness for
//! `stmserve`.
//!
//! Sustains `--clients` concurrent clients, each issuing `--requests`
//! requests over a shared pool of synthetic matrices, with `--chaos`
//! percent of requests drawing a deterministic chaos event (killed
//! connection, corrupt frame, or kernel fault). Every `Ok` digest is
//! verified against a host-computed oracle.
//!
//! Output: a byte-deterministic `result:` line (counts of terminal
//! outcomes and the sorted-line digest — stable under a fixed seed and
//! shape), then timing/chaos/server lines that legitimately vary run to
//! run.
//!
//! Exit codes: 0 = zero mismatches and zero unexpected failures;
//! 1 = a digest mismatch, failure, or queue-bound violation; 2 = usage
//! or connection error.

use stm_serve::load::{run_load, LoadConfig};
use stm_serve::protocol::Status;

const FLAGS: &[(&str, &str)] = &[
    ("--addr A", "server address (required, host:port)"),
    ("--clients N", "concurrent client threads (default 8)"),
    ("--requests N", "requests per client (default 8)"),
    (
        "--chaos PCT",
        "percent of requests drawing chaos (default 20)",
    ),
    ("--seed N", "workload + chaos seed (default 0x10ad)"),
    ("--matrices N", "distinct workload matrices (default 4)"),
    ("--timeout-ms MS", "client socket timeout (default 30000)"),
    ("--csv FILE", "write the latency histogram as CSV"),
    (
        "--metrics-addr A",
        "scrape the server metrics endpoint and print its p99 next to the client-measured one",
    ),
    ("--shutdown", "drain and stop the server after the run"),
];

fn usage() -> String {
    let width = FLAGS.iter().map(|(f, _)| f.len()).max().unwrap_or(0);
    let mut out = String::from(
        "usage: stmload [flags]\nChaos-injecting load harness for stmserve, with digest verification.\n\nflags:\n",
    );
    for (flag, desc) in FLAGS {
        out.push_str(&format!("  {flag:width$}  {desc}\n"));
    }
    out
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn parsed<T: std::str::FromStr>(flag: &str) -> Option<T> {
    arg_value(flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("stmload: bad value {v:?} for {flag}");
            std::process::exit(2);
        })
    })
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return;
    }
    let Some(addr) = arg_value("--addr") else {
        eprint!("stmload: --addr is required\n\n{}", usage());
        std::process::exit(2);
    };
    let mut cfg = LoadConfig {
        addr,
        ..LoadConfig::default()
    };
    if let Some(n) = parsed("--clients") {
        cfg.clients = n;
    }
    if let Some(n) = parsed("--requests") {
        cfg.requests_per_client = n;
    }
    if let Some(n) = parsed("--chaos") {
        cfg.chaos_pct = n;
    }
    if let Some(n) = parsed("--seed") {
        cfg.seed = n;
    }
    if let Some(n) = parsed("--matrices") {
        cfg.matrices = n;
    }
    if let Some(n) = parsed("--timeout-ms") {
        cfg.timeout_ms = n;
    }

    let report = match run_load(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stmload: {e}");
            std::process::exit(2);
        }
    };

    // Deterministic summary first (CI diffs this line across runs).
    println!("{}", report.deterministic_line());
    println!(
        "chaos: kills={} corrupts={} faults={} shed_retries={} transport_retries={}",
        report.kills, report.corrupts, report.faults, report.shed_retries, report.transport_retries
    );
    println!("degraded: {}", report.degraded);
    let p = |q: u64| report.latency_us.percentile(q).unwrap_or(0);
    // Server-side view of the same tail, scraped from the metrics
    // endpoint: client p99 includes queueing + transport, server p99
    // starts at dequeue — the gap is where the latency lives.
    let scraped = arg_value("--metrics-addr").map(|maddr| {
        stm_serve::scrape::fetch(&maddr, cfg.timeout_ms)
            .map(|text| stm_serve::scrape::parse(&text))
            .unwrap_or_else(|e| {
                eprintln!("stmload: metrics scrape: {e}");
                Vec::new()
            })
    });
    let server_p99 = scraped.as_ref().map(|samples| {
        stm_serve::scrape::value(samples, "stm_serve_latency_us", "quantile=\"0.99\"").unwrap_or(0)
    });
    match server_p99 {
        Some(sp99) => println!(
            "latency_us: p50={} p95={} p99={} max={} server_p99={sp99}",
            p(50),
            p(95),
            p(99),
            report.latency_us.max()
        ),
        None => println!(
            "latency_us: p50={} p95={} p99={} max={}",
            p(50),
            p(95),
            p(99),
            report.latency_us.max()
        ),
    }
    // Server-side integrity plane, from the same scrape: how many
    // silent corruptions the verify legs caught and what became of
    // them.
    if let Some(samples) = &scraped {
        let c = |n: &str| stm_serve::scrape::value(samples, n, "").unwrap_or(0);
        println!(
            "integrity: sdc_detected={} recovered={} unrecovered={} verify_legs={}",
            c("stm_integrity_sdc_detected_total"),
            c("stm_integrity_sdc_recovered_total"),
            c("stm_integrity_sdc_unrecovered_total"),
            c("stm_integrity_verify_legs_total"),
        );
    }
    let secs = report.elapsed.as_secs_f64();
    println!(
        "throughput: {:.0} req/s over {:.2}s",
        if secs > 0.0 {
            report.requests as f64 / secs
        } else {
            0.0
        },
        secs
    );

    let mut bad = 0usize;
    if report.mismatches > 0 {
        eprintln!("stmload: {} digest mismatch(es)", report.mismatches);
        bad += 1;
    }
    if report.failed > 0 {
        eprintln!(
            "stmload: {} request(s) ended in a failure status",
            report.failed
        );
        bad += 1;
    }
    if let Some(stats) = report.server_stats {
        println!(
            "server: accepted={} completed={} shed={} degraded={} queue_max={}/{} bad_frames={}",
            stats.accepted,
            stats.completed,
            stats.shed,
            stats.degraded,
            stats.queue_depth_max,
            stats.queue_depth_limit,
            stats.bad_frames
        );
        // The bounded-memory invariant, asserted from the outside.
        if stats.queue_depth_max > stats.queue_depth_limit {
            eprintln!(
                "stmload: queue high-water {} exceeded the configured depth {}",
                stats.queue_depth_max, stats.queue_depth_limit
            );
            bad += 1;
        }
    }

    if let Some(csv) = arg_value("--csv") {
        let mut text = String::from("bucket_upper_us,count\n");
        for (upper, count) in report.latency_us.nonzero_buckets() {
            text.push_str(&format!("{upper},{count}\n"));
        }
        text.push_str(&format!(
            "p50,{}\np95,{}\np99,{}\nmax,{}\n",
            p(50),
            p(95),
            p(99),
            report.latency_us.max()
        ));
        if let Err(e) = std::fs::write(&csv, text) {
            eprintln!("stmload: writing {csv}: {e}");
            std::process::exit(2);
        }
        println!("csv: {csv}");
    }

    if std::env::args().any(|a| a == "--shutdown") {
        match stm_serve::client::Client::connect(&cfg.addr, 0, cfg.timeout_ms)
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.shutdown(u64::MAX - 1))
        {
            Ok(resp) if resp.status == Status::Ok => println!("shutdown: acknowledged"),
            Ok(resp) => {
                eprintln!("stmload: shutdown refused: {}", resp.status.name());
                bad += 1;
            }
            Err(e) => {
                eprintln!("stmload: shutdown: {e}");
                bad += 1;
            }
        }
    }

    if bad > 0 {
        std::process::exit(1);
    }
}
