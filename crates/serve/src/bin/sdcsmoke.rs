//! `sdcsmoke` — end-to-end silent-data-corruption smoke for the serve
//! integrity plane.
//!
//! Starts an in-process `stmserve` with `--verify-mode vote`, a durable
//! results log, and a flight-recorder directory; submits workload
//! matrices; then issues transpose requests carrying a deterministic
//! `MidRunBitFlip` fault — a single bit flipped in simulated memory
//! mid-run, invisible to every typed error path. The smoke asserts the
//! contract of the integrity plane from the outside:
//!
//! 1. **no silent wrong answer** — every `OK` reply's digest equals the
//!    fault-free digest for that matrix; a flip that manifested either
//!    came back recovered (`OK`, majority digest) or was refused with
//!    `DATA_CORRUPT`, never served wrong;
//! 2. **detection is counted** — `stm_integrity_sdc_detected_total`
//!    matches the number of manifesting flips observed by the client;
//! 3. **every detection left forensics** — at least one flight dump
//!    exists when anything was detected, and every durable artifact
//!    (results log + flight dumps) scrubs clean under
//!    [`stm_obs::journal::scrub_text`].
//!
//! Flags: `--requests N` (flips to inject, default 24), `--seed N`
//! (base flip seed, default 0x5DC), `--keep` (leave the scratch
//! directory behind for inspection).
//!
//! Exit codes: 0 = contract holds; 1 = violation; 2 = setup error.

use stm_hism::FaultClass;
use stm_serve::client::Client;
use stm_serve::load::workload_matrix;
use stm_serve::protocol::{FaultRequest, ResponseBody, Status};
use stm_serve::server::{ServeConfig, Server};

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn parsed<T: std::str::FromStr>(flag: &str) -> Option<T> {
    arg_value(flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("sdcsmoke: bad value {v:?} for {flag}");
            std::process::exit(2);
        })
    })
}

fn prom_counter(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name)?.strip_prefix(' ')?.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let requests: u64 = parsed("--requests").unwrap_or(24);
    let seed: u64 = parsed("--seed").unwrap_or(0x5DC);
    let keep = std::env::args().any(|a| a == "--keep");

    let scratch = std::env::temp_dir().join(format!("stm-sdcsmoke-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!("sdcsmoke: create {}: {e}", scratch.display());
        std::process::exit(2);
    }
    let flight_dir = scratch.join("flight");
    let results_log = scratch.join("results.log");

    let server = match Server::start(ServeConfig {
        workers: 2,
        verify_mode: stm_bench::resilient::VerifyMode::Vote,
        results_log: Some(results_log.clone()),
        flight_dir: Some(flight_dir.clone()),
        ..ServeConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sdcsmoke: start server: {e}");
            std::process::exit(2);
        }
    };
    let addr = server.addr().to_string();
    let mut c = match Client::connect(&addr, 1, 30_000) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sdcsmoke: connect: {e}");
            std::process::exit(2);
        }
    };

    // Workload pool + fault-free reference digests.
    const MATRICES: u64 = 3;
    let mut clean = Vec::new();
    let mut next_id = 1u64;
    for m in 0..MATRICES {
        let coo = workload_matrix(seed, m as usize);
        let resp = c.submit(next_id, m, &coo).expect("submit");
        assert_eq!(resp.status, Status::Ok, "submit failed");
        next_id += 1;
        let resp = c.transpose(next_id, m, None).expect("clean transpose");
        next_id += 1;
        assert_eq!(resp.status, Status::Ok, "clean transpose failed");
        match resp.body {
            ResponseBody::Digest(d) => clean.push(d),
            ref other => panic!("expected digest, got {other:?}"),
        }
    }

    // The flips. Each request aims MidRunBitFlip at a rotating matrix
    // with a distinct seed; the client tallies what came back.
    let mut served_ok = 0u64;
    let mut served_recovered = 0u64;
    let mut refused = 0u64;
    let mut wrong = 0u64;
    for i in 0..requests {
        let m = i % MATRICES;
        let fault = FaultRequest {
            class: FaultClass::MidRunBitFlip,
            seed: seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        };
        let resp = c
            .transpose(next_id, m, Some(fault))
            .expect("faulted transpose");
        next_id += 1;
        match (resp.status, &resp.body) {
            (Status::Ok, ResponseBody::Digest(d)) => {
                if *d == clean[m as usize] {
                    served_ok += 1;
                } else {
                    wrong += 1;
                    eprintln!(
                        "sdcsmoke: request {i}: OK with WRONG digest 0x{d:016x} \
                         (clean 0x{:016x})",
                        clean[m as usize]
                    );
                }
            }
            (Status::DataCorrupt, _) => refused += 1,
            (status, body) => {
                wrong += 1;
                eprintln!(
                    "sdcsmoke: request {i}: unexpected {}: {body:?}",
                    status.name()
                );
            }
        }
    }

    let metrics = server.metrics_text();
    let detected = prom_counter(&metrics, "stm_integrity_sdc_detected_total");
    let recovered = prom_counter(&metrics, "stm_integrity_sdc_recovered_total");
    let unrecovered = prom_counter(&metrics, "stm_integrity_sdc_unrecovered_total");
    let legs = prom_counter(&metrics, "stm_integrity_verify_legs_total");
    served_recovered += recovered;

    // Shut down cleanly so the results log's final append completes.
    let resp = c.shutdown(u64::MAX).expect("shutdown");
    assert_eq!(resp.status, Status::Ok);
    server.join();

    let mut bad = 0usize;
    if wrong > 0 {
        eprintln!("sdcsmoke: {wrong} silent wrong answer(s) served");
        bad += 1;
    }
    // Every manifesting flip the client saw (recovered or refused) must
    // be a counted detection, and vice versa.
    let manifested = recovered + refused;
    if detected != manifested {
        eprintln!(
            "sdcsmoke: detected counter {detected} != manifested flips {manifested} \
             (recovered {recovered} + refused {refused})"
        );
        bad += 1;
    }
    if detected != recovered + unrecovered {
        eprintln!(
            "sdcsmoke: detected {detected} != recovered {recovered} + unrecovered {unrecovered}"
        );
        bad += 1;
    }
    // Detections must leave flight-recorder forensics behind.
    let flights: Vec<_> = std::fs::read_dir(&flight_dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
                .collect()
        })
        .unwrap_or_default();
    if detected > 0 && flights.is_empty() {
        eprintln!("sdcsmoke: {detected} detection(s) but no flight dump written");
        bad += 1;
    }
    // Every durable artifact scrubs clean.
    for path in flights.iter().chain(std::iter::once(&results_log)) {
        match stm_obs::journal::scrub_file(path, false) {
            Ok(r) if r.is_clean() => {}
            Ok(r) => {
                eprintln!(
                    "sdcsmoke: {} fails the scrub ({} bad line(s))",
                    path.display(),
                    r.bad.len()
                );
                bad += 1;
            }
            Err(e) => {
                eprintln!("sdcsmoke: {e}");
                bad += 1;
            }
        }
    }

    println!(
        "sdcsmoke: requests={requests} harmless={} recovered={served_recovered} \
         refused={refused} detected={detected} verify_legs={legs} flights={}",
        served_ok.saturating_sub(recovered),
        flights.len()
    );
    if !keep {
        std::fs::remove_dir_all(&scratch).ok();
    } else {
        println!("sdcsmoke: scratch kept at {}", scratch.display());
    }
    if bad > 0 {
        eprintln!("sdcsmoke: FAILED ({bad} violation(s))");
        std::process::exit(1);
    }
    println!("sdcsmoke: integrity contract holds");
}
