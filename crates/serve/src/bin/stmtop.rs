//! `stmtop` — a live one-screen view of an `stmserve` metrics endpoint.
//!
//! Polls the `--metrics-addr` exposition listener and renders the
//! request counters, live gauges, and latency/cycle quantiles as a
//! compact table, with request throughput derived from counter deltas
//! between scrapes. `--once` takes a single scrape (no screen
//! clearing), `--raw` prints the exposition text verbatim — the CI
//! smoke job uses `--once --raw` as a scrape client.
//!
//! Exit codes: 0 = clean; 1 = a scrape failed after the first; 2 =
//! usage error or the first scrape failed.

use std::io::{IsTerminal, Write};
use stm_serve::scrape::{self, Sample};

const FLAGS: &[(&str, &str)] = &[
    ("--addr A", "metrics endpoint address (required, host:port)"),
    (
        "--interval MS",
        "poll interval in milliseconds (default 1000)",
    ),
    (
        "--count N",
        "stop after N scrapes (default 0 = run forever)",
    ),
    (
        "--once",
        "single scrape, no screen clearing (same as --count 1)",
    ),
    (
        "--raw",
        "print the exposition text verbatim instead of the table",
    ),
];

fn usage() -> String {
    let width = FLAGS.iter().map(|(f, _)| f.len()).max().unwrap_or(0);
    let mut out = String::from(
        "usage: stmtop --addr HOST:PORT [flags]\nLive terminal view of an stmserve metrics endpoint.\n\nflags:\n",
    );
    for (flag, desc) in FLAGS {
        out.push_str(&format!("  {flag:width$}  {desc}\n"));
    }
    out
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn parsed<T: std::str::FromStr>(flag: &str) -> Option<T> {
    arg_value(flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("stmtop: bad value {v:?} for {flag}");
            std::process::exit(2);
        })
    })
}

fn val(samples: &[Sample], name: &str) -> u64 {
    scrape::value(samples, name, "").unwrap_or(0)
}

fn quantiles(samples: &[Sample], name: &str) -> (u64, u64, u64) {
    let q = |frag: &str| scrape::value(samples, name, frag).unwrap_or(0);
    (
        q("quantile=\"0.5\""),
        q("quantile=\"0.95\""),
        q("quantile=\"0.99\""),
    )
}

fn render(samples: &[Sample], addr: &str, scrape_n: u64, req_per_s: f64) -> String {
    let c = |n: &str| val(samples, &format!("stm_serve_requests_{n}_total"));
    let (lp50, lp95, lp99) = quantiles(samples, "stm_serve_latency_us");
    let (kp50, kp95, kp99) = quantiles(samples, "stm_serve_kernel_cycles");
    let mut out = String::new();
    out.push_str(&format!("stmtop — {addr}  (scrape #{scrape_n})\n\n"));
    out.push_str(&format!(
        "  requests   accepted={} completed={} degraded={} failed={} shed={}\n",
        c("accepted"),
        c("completed"),
        c("degraded"),
        c("failed"),
        c("shed"),
    ));
    out.push_str(&format!(
        "  health     bad_frames={} breaker_trips={}  throughput={req_per_s:.1} req/s\n",
        val(samples, "stm_serve_frames_bad_total"),
        val(samples, "stm_serve_breaker_trips_total"),
    ));
    out.push_str(&format!(
        "  integrity  sdc_detected={} recovered={} unrecovered={} verify_legs={}\n",
        val(samples, "stm_integrity_sdc_detected_total"),
        val(samples, "stm_integrity_sdc_recovered_total"),
        val(samples, "stm_integrity_sdc_unrecovered_total"),
        val(samples, "stm_integrity_verify_legs_total"),
    ));
    out.push_str(&format!(
        "  live       queue_depth={} inflight={}\n",
        val(samples, "stm_serve_queue_depth"),
        val(samples, "stm_serve_inflight"),
    ));
    out.push_str(&format!(
        "  latency_us p50={lp50} p95={lp95} p99={lp99}  (window; {} total obs)\n",
        val(samples, "stm_serve_latency_us_count"),
    ));
    out.push_str(&format!(
        "  kernel_cyc p50={kp50} p95={kp95} p99={kp99}  (window; {} total obs)\n",
        val(samples, "stm_serve_kernel_cycles_count"),
    ));
    out
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return;
    }
    let Some(addr) = arg_value("--addr") else {
        eprint!("stmtop: --addr is required\n\n{}", usage());
        std::process::exit(2);
    };
    let interval_ms: u64 = parsed("--interval").unwrap_or(1000);
    let once = std::env::args().any(|a| a == "--once");
    let raw = std::env::args().any(|a| a == "--raw");
    let count: u64 = if once {
        1
    } else {
        parsed("--count").unwrap_or(0)
    };
    let clear = !once && !raw && std::io::stdout().is_terminal();

    let mut prev_completed: Option<u64> = None;
    let mut scrape_n: u64 = 0;
    loop {
        let text = match scrape::fetch(&addr, interval_ms.max(1000)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("stmtop: {e}");
                std::process::exit(if scrape_n == 0 { 2 } else { 1 });
            }
        };
        scrape_n += 1;
        if raw {
            print!("{text}");
        } else {
            let samples = scrape::parse(&text);
            let completed = val(&samples, "stm_serve_requests_completed_total");
            let req_per_s = match prev_completed {
                Some(prev) if interval_ms > 0 => {
                    completed.saturating_sub(prev) as f64 * 1000.0 / interval_ms as f64
                }
                _ => 0.0,
            };
            prev_completed = Some(completed);
            if clear {
                // ANSI: clear screen, home cursor.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render(&samples, &addr, scrape_n, req_per_s));
        }
        std::io::stdout().flush().ok();
        if count > 0 && scrape_n >= count {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(1)));
    }
}
