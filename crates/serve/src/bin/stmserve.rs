//! `stmserve` — the transpose-as-a-service TCP server.
//!
//! Prints `listening: <addr>` once the socket is bound (the line the
//! harnesses parse to find an ephemeral port), serves until a `SHUTDOWN`
//! request drains it, then prints `shutdown: clean`.
//!
//! Exit codes: 0 = clean drain; 2 = configuration/bind/log error.

use stm_bench::resilient::{BreakerConfig, RetryPolicy, VerifyMode};
use stm_serve::server::{ServeConfig, Server};

const FLAGS: &[(&str, &str)] = &[
    ("--addr A", "bind address (default 127.0.0.1:0 = free port)"),
    (
        "--queue-depth N",
        "bounded admission queue depth (default 8)",
    ),
    ("--quota N", "max in-flight requests per client (default 4)"),
    ("--workers N", "kernel worker threads (default 4)"),
    (
        "--deadline CYCLES",
        "per-request cycle budget (typed abort)",
    ),
    ("--breaker-threshold N", "consecutive failures to trip"),
    ("--breaker-cooldown N", "skipped decisions before a probe"),
    ("--max-attempts N", "bounded retry attempts per request"),
    ("--max-frame BYTES", "frame payload cap (default 1 MiB)"),
    (
        "--io-timeout-ms MS",
        "socket read/write timeout (default 10000)",
    ),
    (
        "--results-log FILE",
        "durable results log (resume FETCHes after restart)",
    ),
    ("--trace DIR", "export the server event trace at shutdown"),
    (
        "--verify-mode M",
        "output verification tier, M in {off,checksum,dual,vote} (default off)",
    ),
    (
        "--backend B",
        "execution backend, B in {sim,scalar,simd,auto} (or STM_BACKEND=B)",
    ),
    (
        "--metrics-addr A",
        "bind the Prometheus text exposition listener (port 0 = free port)",
    ),
    (
        "--flight-dir DIR",
        "write crash flight-recorder dumps here (panic, breaker-open, deadline storm, SIGTERM)",
    ),
    (
        "--flight-window MS",
        "flight-recorder dump window in milliseconds (default 10000)",
    ),
    (
        "--flight-every N",
        "test hook: also dump the flight ring every N completed requests",
    ),
];

fn usage() -> String {
    let width = FLAGS.iter().map(|(f, _)| f.len()).max().unwrap_or(0);
    let mut out = String::from(
        "usage: stmserve [flags]\nFault-tolerant transpose/SpMV service over the resilient pipeline.\n\nflags:\n",
    );
    for (flag, desc) in FLAGS {
        out.push_str(&format!("  {flag:width$}  {desc}\n"));
    }
    out
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn parsed<T: std::str::FromStr>(flag: &str) -> Option<T> {
    arg_value(flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("stmserve: bad value {v:?} for {flag}");
            std::process::exit(2);
        })
    })
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return;
    }
    let mut cfg = ServeConfig {
        addr: arg_value("--addr").unwrap_or_else(|| "127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    };
    if let Some(n) = parsed("--queue-depth") {
        cfg.queue_depth = n;
    }
    if let Some(n) = parsed("--quota") {
        cfg.quota = n;
    }
    if let Some(n) = parsed("--workers") {
        cfg.workers = n;
    }
    cfg.deadline = parsed("--deadline");
    let mut breaker = BreakerConfig::default();
    if let Some(t) = parsed("--breaker-threshold") {
        breaker.threshold = t;
    }
    if let Some(c) = parsed("--breaker-cooldown") {
        breaker.cooldown = c;
    }
    cfg.breaker = breaker;
    let mut retry = RetryPolicy::default();
    if let Some(n) = parsed("--max-attempts") {
        retry.max_attempts = n;
    }
    cfg.retry = retry;
    if let Some(n) = parsed("--max-frame") {
        cfg.max_frame = n;
    }
    if let Some(n) = parsed("--io-timeout-ms") {
        cfg.io_timeout_ms = n;
    }
    if let Some(m) = arg_value("--verify-mode") {
        cfg.verify_mode = VerifyMode::from_name(&m).unwrap_or_else(|| {
            eprintln!("stmserve: unknown --verify-mode {m:?} (off|checksum|dual|vote)");
            std::process::exit(2);
        });
    }
    cfg.results_log = arg_value("--results-log").map(Into::into);
    cfg.trace = arg_value("--trace").map(Into::into);
    cfg.backend = stm_bench::backend_from_env();
    cfg.metrics_addr = arg_value("--metrics-addr");
    cfg.flight_dir = arg_value("--flight-dir").map(Into::into);
    if let Some(ms) = parsed("--flight-window") {
        cfg.flight_window_ms = ms;
    }
    cfg.flight_every = parsed("--flight-every");

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stmserve: {e}");
            std::process::exit(2);
        }
    };
    // The harnesses parse these lines to find the ephemeral ports —
    // print and flush before serving.
    println!("listening: {}", server.addr());
    if let Some(maddr) = server.metrics_addr() {
        println!("metrics: {maddr}");
    }
    use std::io::Write;
    std::io::stdout().flush().ok();

    // SIGTERM: flush a last flight dump, then exit. The watcher holds
    // only a FlightDumper, so the server itself can move into join().
    #[cfg(unix)]
    {
        sig::install();
        let dumper = server.flight_dumper();
        std::thread::spawn(move || loop {
            if sig::term_seen() {
                dumper.dump("sigterm");
                println!("shutdown: sigterm");
                std::io::stdout().flush().ok();
                std::process::exit(0);
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }

    server.join();
    println!("shutdown: clean");
}

/// Raw `signal(2)` registration — the workspace is dependency-free, so
/// no `libc` crate; the handler only flips an atomic flag (async-signal
/// safe) and a watcher thread does the actual dump.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);
    const SIGTERM: i32 = 15;

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term);
        }
    }

    pub fn term_seen() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}
