//! The durability acceptance test: `kill -9` the real `stmserve` binary
//! mid-load, restart it on the same results log, and verify the new
//! incarnation re-serves `FETCH`es for every request the old one
//! completed — with identical digests.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use stm_serve::client::Client;
use stm_serve::load::workload_matrix;
use stm_serve::protocol::{ResponseBody, Status};
use stm_serve::store::ResultsLog;

struct Spawned {
    child: Child,
    addr: String,
}

fn spawn_server(log: &std::path::Path) -> Spawned {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stmserve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--results-log",
            log.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stmserve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("stmserve exited before listening")
            .expect("read stmserve stdout");
        if let Some(addr) = line.strip_prefix("listening: ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Spawned { child, addr }
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr, 1, 10_000) {
            Ok(c) => return c,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

#[test]
fn kill_dash_nine_mid_load_then_restart_re_serves_completed_fetches() {
    let dir = std::env::temp_dir().join("stm-serve-kill-resume");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("results.log");

    // Incarnation A: submit the workload and start a stream of
    // transposes/SpMVs that the kill will interrupt somewhere.
    let a = spawn_server(&log);
    let addr_a = a.addr.clone();
    let mut child = a.child;
    {
        let mut c = connect(&addr_a);
        for m in 0..2u64 {
            let coo = workload_matrix(load_seed(), m as usize);
            let resp = c.submit(1000 + m, m, &coo).expect("submit");
            assert_eq!(resp.status, Status::Ok);
        }
    }
    let loader = {
        let addr = addr_a.clone();
        std::thread::spawn(move || {
            let mut c = connect(&addr);
            let mut completed = 0u32;
            for id in 1..=200u64 {
                let r = if id % 3 == 0 {
                    c.spmv(id, id % 2, None)
                } else {
                    c.transpose(id, id % 2, None)
                };
                match r {
                    Ok(resp) if resp.status == Status::Ok => completed += 1,
                    // The kill lands somewhere in here: transport errors
                    // and shutdown statuses are the expected tail.
                    _ => break,
                }
            }
            completed
        })
    };
    // Let some requests land, then SIGKILL — no drain, no flush beyond
    // the per-record ones the server already did.
    std::thread::sleep(Duration::from_millis(300));
    child.kill().expect("SIGKILL stmserve");
    child.wait().expect("reap stmserve");
    let done_before_kill = loader.join().unwrap();
    assert!(
        done_before_kill > 0,
        "the kill window closed before any request completed; widen the sleep"
    );

    // What incarnation A durably recorded (tolerating a torn tail).
    let (_, records) = ResultsLog::open(&log).expect("reload results log");
    assert!(
        !records.is_empty(),
        "completed requests must be on disk after SIGKILL"
    );

    // Incarnation B on the same log must replay every one of them.
    let b = spawn_server(&log);
    let mut c = connect(&b.addr);
    for rec in &records {
        let resp = c
            .fetch(90_000 + rec.request_id, rec.request_id)
            .expect("fetch");
        assert_eq!(resp.status, rec.status, "request 0x{:x}", rec.request_id);
        assert_eq!(
            resp.degraded, rec.degraded,
            "request 0x{:x}",
            rec.request_id
        );
        assert_eq!(
            resp.body,
            ResponseBody::Digest(rec.digest),
            "request 0x{:x}: digest must survive the restart",
            rec.request_id
        );
    }
    // An id the old incarnation never completed is a typed NotFound.
    let resp = c.fetch(99_999, 4_000_000).expect("fetch missing");
    assert_eq!(resp.status, Status::NotFound);

    // And incarnation B is a live server, not a read-only replica: the
    // same matrices can be re-submitted and transposed again.
    let coo = workload_matrix(load_seed(), 0);
    assert_eq!(
        c.submit(2000, 0, &coo).expect("resubmit").status,
        Status::Ok
    );
    let fresh = c.transpose(3000, 0, None).expect("fresh transpose");
    assert_eq!(fresh.status, Status::Ok);
    let expected = records
        .iter()
        .find(|r| r.matrix_id == 0 && r.op == stm_serve::protocol::Op::Transpose)
        .map(|r| r.digest);
    if let (ResponseBody::Digest(d), Some(want)) = (&fresh.body, expected) {
        assert_eq!(*d, want, "fresh transpose agrees with pre-kill results");
    }

    assert_eq!(c.shutdown(77_777).expect("shutdown").status, Status::Ok);
    let status = b.child.wait_with_output().expect("join stmserve B");
    assert!(status.status.success(), "clean drain must exit 0");
    std::fs::remove_dir_all(&dir).ok();
}

/// The shared workload seed (named to avoid sprinkling the literal).
fn load_seed() -> u64 {
    0x5eed_f00d
}
