//! Flight-recorder durability: `kill -9` the real `stmserve` binary
//! mid-load with `--flight-dir` + `--flight-every` active, then verify
//! the most recent *complete* flight dump survives the crash — it must
//! validate structurally, load as a profile, and keep loading when a
//! writer is torn mid-line (the `stmprof` torn-tail tolerance).

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use stm_serve::client::Client;
use stm_serve::load::workload_matrix;
use stm_serve::protocol::Status;

struct Spawned {
    child: Child,
    addr: String,
    metrics_addr: String,
}

fn spawn_server(flight_dir: &std::path::Path) -> Spawned {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stmserve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
            "--flight-dir",
            flight_dir.to_str().unwrap(),
            "--flight-every",
            "1",
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stmserve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut addr = None;
    let mut metrics_addr = None;
    while addr.is_none() || metrics_addr.is_none() {
        let line = lines
            .next()
            .expect("stmserve exited before listening")
            .expect("read stmserve stdout");
        if let Some(a) = line.strip_prefix("listening: ") {
            addr = Some(a.to_string());
        } else if let Some(a) = line.strip_prefix("metrics: ") {
            metrics_addr = Some(a.to_string());
        }
    }
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Spawned {
        child,
        addr: addr.unwrap(),
        metrics_addr: metrics_addr.unwrap(),
    }
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr, 1, 10_000) {
            Ok(c) => return c,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

fn flight_dumps(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut dumps: Vec<_> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".jsonl"))
                })
                .collect()
        })
        .unwrap_or_default();
    // Names embed (zero-padded-free) wall-ms + a monotone sequence; a
    // lexicographic sort is stable enough to find the newest for equal
    // widths, and the exact choice doesn't matter for validity checks.
    dumps.sort();
    dumps
}

#[test]
fn kill_dash_nine_leaves_a_loadable_flight_dump_behind() {
    let dir = std::env::temp_dir().join("stm-serve-kill-flight");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let flight_dir = dir.join("flight");

    let s = spawn_server(&flight_dir);
    let mut child = s.child;
    {
        let mut c = connect(&s.addr);
        for m in 0..2u64 {
            let coo = workload_matrix(0x5eed_f00d, m as usize);
            assert_eq!(
                c.submit(1000 + m, m, &coo).expect("submit").status,
                Status::Ok
            );
        }
    }
    // The metrics listener must be live before the kill.
    let text = stm_serve::scrape::fetch(&s.metrics_addr, 5_000).expect("pre-kill scrape");
    assert!(
        text.contains("stm_serve_requests_accepted_total"),
        "exposition must name the request counters"
    );

    // A stream of transposes the SIGKILL lands somewhere inside; with
    // `--flight-every 1` each completion rewrites a fresh dump.
    let loader = {
        let addr = s.addr.clone();
        std::thread::spawn(move || {
            let mut c = connect(&addr);
            let mut completed = 0u32;
            for id in 1..=200u64 {
                match c.transpose(id, id % 2, None) {
                    Ok(resp) if resp.status == Status::Ok => completed += 1,
                    _ => break,
                }
            }
            completed
        })
    };
    std::thread::sleep(Duration::from_millis(400));
    child.kill().expect("SIGKILL stmserve");
    child.wait().expect("reap stmserve");
    let done_before_kill = loader.join().unwrap();
    assert!(
        done_before_kill > 0,
        "the kill window closed before any request completed; widen the sleep"
    );

    // At least one complete dump must be on disk (rename is atomic, so
    // every `flight-*.jsonl` is complete even after SIGKILL — only a
    // `.tmp` can be torn).
    let dumps = flight_dumps(&flight_dir);
    assert!(
        !dumps.is_empty(),
        "--flight-every must leave dumps behind after SIGKILL"
    );
    let newest = dumps.last().unwrap();
    let text = std::fs::read_to_string(newest).expect("read newest dump");
    let summary = stm_obs::jsonl::validate_jsonl(&text)
        .unwrap_or_else(|e| panic!("{}: invalid dump: {e:?}", newest.display()));
    assert!(summary.events > 0, "the newest dump must not be empty");
    assert!(
        summary
            .counters
            .iter()
            .any(|(k, _)| k.starts_with("flight.reason.")),
        "the dump must record its trigger reason"
    );

    // The dump loads as a profile as-is…
    stm_obs::profile::KernelProfile::from_jsonl("flight", &text).expect("clean load");
    // …and still loads when a writer died mid-append: chop the final
    // line in half and the reload must tolerate exactly that torn tail.
    let whole = text.trim_end();
    let cut = whole.len() - whole.lines().last().unwrap().len() / 2;
    let torn = &whole[..cut];
    stm_obs::profile::KernelProfile::from_jsonl("flight", torn)
        .expect("a torn final line must be tolerated");

    std::fs::remove_dir_all(&dir).ok();
}
