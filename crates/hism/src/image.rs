//! The flat memory image of a HiSM matrix — what the simulated vector
//! processor actually operates on.
//!
//! Layout (32-bit words, addresses are word offsets from the image base):
//!
//! * A blockarray of length `n` occupies `2n` words: entry `k` is the pair
//!   `[payload_k, pos_k]`, where `payload` is the value's bit pattern
//!   (level 0) or the child blockarray's word address (levels ≥ 1), and
//!   `pos = row << 8 | col` packs the 8-bit in-block coordinates.
//! * For levels ≥ 1 the paper's *lengths vector* — `n` words, the k-th
//!   holding the entry count of the k-th child — is stored immediately
//!   after the blockarray (at `addr + 2n`).
//! * Blocks are laid out in post-order (children before parents), so every
//!   pointer refers backwards; the root blockarray is last and is described
//!   by the external [`RootDesc`].
//!
//! The paper packs value + positions into 48 bits; we use two aligned
//! 32-bit words per entry. The cycle model accounts for this via
//! `VpConfig::words_per_entry` (see DESIGN.md, "Deliberate model
//! interpretations").

use crate::error::ImageError;
use crate::matrix::{BlockData, HismBlock, HismMatrix, LeafEntry, NodeEntry};
use stm_sparse::Value;

/// Words per blockarray entry in the image (`[payload, pos]`).
pub const WORDS_PER_ENTRY: u32 = 2;

/// Packs in-block coordinates into a position word (`row << 8 | col`).
pub fn pack_pos(row: u8, col: u8) -> u32 {
    (row as u32) << 8 | col as u32
}

/// Unpacks a position word into `(row, col)`.
pub fn unpack_pos(pos: u32) -> (u8, u8) {
    (((pos >> 8) & 0xff) as u8, (pos & 0xff) as u8)
}

/// Swaps the row/col fields of a position word — the STM's core data
/// transformation.
pub fn swap_pos(pos: u32) -> u32 {
    let (r, c) = unpack_pos(pos);
    pack_pos(c, r)
}

/// The root descriptor the paper keeps outside the image: "the matrix can
/// be referred to in terms of the memory position of the start of the top
/// level s²-blockarray and its length".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootDesc {
    /// Word address of the root blockarray.
    pub addr: u32,
    /// Entry count of the root blockarray.
    pub len: u32,
    /// Number of hierarchy levels `q`.
    pub levels: u32,
    /// Logical rows (pre-padding).
    pub rows: u32,
    /// Logical columns (pre-padding).
    pub cols: u32,
    /// Section size `s`.
    pub s: u32,
}

/// Version of the integrity sidecar header this crate writes.
pub const INTEGRITY_VERSION: u32 = 1;

/// Magic word opening a serialized integrity header (`"HIS" + version
/// marker`), so a stray word vector is never misread as a header.
pub const INTEGRITY_MAGIC: u32 = 0x4849_5349; // "HISI"

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over one word's little-endian bytes. Section checksums XOR
/// these per-word hashes together, so they are order-independent — the
/// simulated STM permutes blockarrays in place, and a permuted-but-intact
/// image must still verify.
fn fnv_word(w: u32) -> u64 {
    let mut h = FNV_OFFSET;
    for b in w.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Order-independent FNV-1a checksums over the four word classes of a
/// HiSM image: leaf values, child pointers, position words, and lengths
/// vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionSums {
    /// XOR of per-word hashes over leaf payload (value-bit) words.
    pub values: u64,
    /// XOR of per-word hashes over node payload (child-pointer) words.
    pub pointers: u64,
    /// XOR of per-word hashes over position words (all levels).
    pub positions: u64,
    /// XOR of per-word hashes over lengths-vector words.
    pub lengths: u64,
}

impl SectionSums {
    /// The first section that disagrees with `other`, as a typed error
    /// (`self` is the header, `other` the recomputed sums).
    fn diff(&self, other: &SectionSums) -> Option<ImageError> {
        let pairs = [
            ("values", self.values, other.values),
            ("pointers", self.pointers, other.pointers),
            ("positions", self.positions, other.positions),
            ("lengths", self.lengths, other.lengths),
        ];
        pairs
            .into_iter()
            .find(|(_, a, b)| a != b)
            .map(|(section, expect, got)| ImageError::Integrity {
                section,
                expect,
                got,
            })
    }
}

/// One leaf payload word, located both in the image (word address) and in
/// the matrix (global coordinates) — the unit of value-targeted fault
/// injection and of weighted site selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueSite {
    /// Word address of the value word inside the image.
    pub addr: u32,
    /// Global row of the entry this word belongs to.
    pub row: u64,
    /// Global column of the entry this word belongs to.
    pub col: u64,
    /// The value currently stored there (bit cast).
    pub value: f32,
}

/// Accumulator for one structural walk over an image.
#[derive(Default)]
struct SectionWalk {
    sums: SectionSums,
    collect_values: bool,
    value_sites: Vec<ValueSite>,
}

/// The versioned sidecar header carrying an image's section checksums.
/// It travels next to the image (never inside the word vector, which
/// stays exactly the hardware layout) and is re-derivable at any time
/// from a structurally valid image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityHeader {
    /// Header format version ([`INTEGRITY_VERSION`]).
    pub version: u32,
    /// The section checksums.
    pub sums: SectionSums,
}

impl IntegrityHeader {
    /// Serialized length in words: magic, version, four 2-word sums.
    pub const WORDS: usize = 10;

    /// Serializes the header to its word form (magic, version, then each
    /// sum as `[lo, hi]`).
    pub fn to_words(&self) -> Vec<u32> {
        let mut w = vec![INTEGRITY_MAGIC, self.version];
        for s in [
            self.sums.values,
            self.sums.pointers,
            self.sums.positions,
            self.sums.lengths,
        ] {
            w.push(s as u32);
            w.push((s >> 32) as u32);
        }
        w
    }

    /// Parses a serialized header. Returns `None` when the magic or
    /// length is wrong — callers treat that as "no header present".
    pub fn from_words(words: &[u32]) -> Option<IntegrityHeader> {
        if words.len() != Self::WORDS || words[0] != INTEGRITY_MAGIC {
            return None;
        }
        let u = |i: usize| words[i] as u64 | (words[i + 1] as u64) << 32;
        Some(IntegrityHeader {
            version: words[1],
            sums: SectionSums {
                values: u(2),
                pointers: u(4),
                positions: u(6),
                lengths: u(8),
            },
        })
    }
}

/// A serialized HiSM matrix: the word image plus its root descriptor and
/// the relocation table (word indices that hold child addresses).
#[derive(Debug, Clone, PartialEq)]
pub struct HismImage {
    /// The image words. Addresses in [`RootDesc`] and in pointer entries
    /// are relative to index 0 of this vector (i.e. the image is linked
    /// for base address 0).
    pub words: Vec<u32>,
    /// Root descriptor.
    pub root: RootDesc,
    /// Word indices that contain child addresses, for [`HismImage::relocate`].
    pub pointer_sites: Vec<u32>,
    /// Section checksums sealed over the current words, when present.
    /// `None` marks a legacy/headerless image — it still loads, but the
    /// consumer counts the absence.
    pub integrity: Option<IntegrityHeader>,
}

impl HismImage {
    /// Serializes a HiSM matrix (blocks are already in post-order in the
    /// arena, so arena order is the layout order).
    pub fn encode(h: &HismMatrix) -> HismImage {
        let mut words: Vec<u32> = Vec::new();
        let mut pointer_sites: Vec<u32> = Vec::new();
        let mut addr_of: Vec<u32> = vec![u32::MAX; h.blocks().len()];
        for (i, b) in h.blocks().iter().enumerate() {
            let addr = words.len() as u32;
            addr_of[i] = addr;
            match &b.data {
                BlockData::Leaf(entries) => {
                    for e in entries {
                        words.push(e.value.to_bits());
                        words.push(pack_pos(e.row, e.col));
                    }
                }
                BlockData::Node(entries) => {
                    for e in entries {
                        pointer_sites.push(words.len() as u32);
                        words.push(addr_of[e.child]);
                        words.push(pack_pos(e.row, e.col));
                    }
                    for e in entries {
                        words.push(h.blocks()[e.child].len() as u32);
                    }
                }
            }
        }
        let root = RootDesc {
            addr: addr_of[h.root()],
            len: h.root_block().len() as u32,
            levels: h.levels() as u32,
            rows: h.rows() as u32,
            cols: h.cols() as u32,
            s: h.section_size() as u32,
        };
        let mut img = HismImage {
            words,
            root,
            pointer_sites,
            integrity: None,
        };
        img.seal_integrity();
        img
    }

    /// Recomputes the section checksums over the current words and walks
    /// the image structure in the process. Fails with the first
    /// structural corruption found, exactly like [`HismImage::decode`]
    /// (minus position-range checks, which are a decode concern).
    pub fn compute_integrity(&self) -> Result<IntegrityHeader, ImageError> {
        let mut walk = SectionWalk::default();
        self.walk_block(
            self.root.addr,
            self.root.len,
            self.root.levels.max(1) - 1,
            (0, 0),
            &mut (self.words.len() as u64 / 2 + 1),
            &mut walk,
        )?;
        Ok(IntegrityHeader {
            version: INTEGRITY_VERSION,
            sums: walk.sums,
        })
    }

    /// Word addresses of every leaf payload (value-bit) word, in layout
    /// order. Empty for an empty matrix. This is the target set for
    /// value-only fault injection: flipping any of these words corrupts
    /// matrix *content* without touching structure.
    pub fn value_sites(&self) -> Result<Vec<u32>, ImageError> {
        Ok(self
            .value_sites_detailed()?
            .iter()
            .map(|s| s.addr)
            .collect())
    }

    /// Every leaf payload word together with its global matrix
    /// coordinates and current value, in layout order. The coordinates
    /// let a fault injector weight sites by how they feed a downstream
    /// computation (e.g. which SpMV input element they multiply).
    pub fn value_sites_detailed(&self) -> Result<Vec<ValueSite>, ImageError> {
        let mut walk = SectionWalk {
            collect_values: true,
            ..SectionWalk::default()
        };
        self.walk_block(
            self.root.addr,
            self.root.len,
            self.root.levels.max(1) - 1,
            (0, 0),
            &mut (self.words.len() as u64 / 2 + 1),
            &mut walk,
        )?;
        Ok(walk.value_sites)
    }

    /// (Re-)seals the integrity header over the current words. A
    /// structurally broken image cannot be summed; it is left headerless.
    pub fn seal_integrity(&mut self) {
        self.integrity = self.compute_integrity().ok();
    }

    /// Re-verifies the sealed checksums against the current words.
    ///
    /// * `Ok(true)` — header present and every section matches.
    /// * `Ok(false)` — no header (or an unknown future version): nothing
    ///   to check; callers count the absence.
    /// * `Err(ImageError::Integrity {..})` — a section disagrees.
    /// * `Err(other)` — the image is too structurally broken to walk.
    pub fn verify_integrity(&self) -> Result<bool, ImageError> {
        let header = match &self.integrity {
            Some(h) if h.version == INTEGRITY_VERSION => h,
            _ => return Ok(false),
        };
        let got = self.compute_integrity()?;
        match header.sums.diff(&got.sums) {
            Some(err) => Err(err),
            None => Ok(true),
        }
    }

    fn walk_block(
        &self,
        addr: u32,
        len: u32,
        level: u32,
        off: (u64, u64),
        budget: &mut u64,
        out: &mut SectionWalk,
    ) -> Result<(), ImageError> {
        let base = addr as usize;
        if (len as u64) > *budget {
            return Err(ImageError::Runaway { addr });
        }
        *budget -= len as u64;
        // Each level-ℓ position addresses an s^ℓ × s^ℓ subblock. The
        // walk runs before decode's section-size guard (the checksum
        // check is the *first* line of defence), so the root descriptor
        // is untrusted here: saturate instead of overflowing on garbage
        // `s`/`levels` — the offsets only matter for valid images.
        let scale = (self.root.s.max(1) as u64).saturating_pow(level);
        if level == 0 {
            for k in 0..len as usize {
                let v = self.word(base + 2 * k)?;
                let p = self.word(base + 2 * k + 1)?;
                out.sums.values ^= fnv_word(v);
                out.sums.positions ^= fnv_word(p);
                if out.collect_values {
                    let (r, c) = unpack_pos(p);
                    out.value_sites.push(ValueSite {
                        addr: (base + 2 * k) as u32,
                        row: off.0.saturating_add(r as u64),
                        col: off.1.saturating_add(c as u64),
                        value: f32::from_bits(v),
                    });
                }
            }
        } else {
            let lens_base = base + 2 * len as usize;
            for k in 0..len as usize {
                let child_addr = self.word(base + 2 * k)?;
                let p = self.word(base + 2 * k + 1)?;
                let child_len = self.word(lens_base + k)?;
                out.sums.pointers ^= fnv_word(child_addr);
                out.sums.positions ^= fnv_word(p);
                out.sums.lengths ^= fnv_word(child_len);
                let (r, c) = unpack_pos(p);
                let child_off = (
                    off.0.saturating_add((r as u64).saturating_mul(scale)),
                    off.1.saturating_add((c as u64).saturating_mul(scale)),
                );
                self.walk_block(child_addr, child_len, level - 1, child_off, budget, out)?;
            }
        }
        Ok(())
    }

    /// Rebuilds the host structure from the image. Works on images whose
    /// blockarrays were permuted in place (e.g. by the simulated STM), as
    /// long as the `(pointer, length)` pairing is consistent.
    ///
    /// The image is treated as untrusted input: the first corruption found
    /// (out-of-bounds pointer or length, position outside the block,
    /// runaway total size) is returned as a typed [`ImageError`] carrying
    /// the offending word address — decoding never panics.
    pub fn decode(&self) -> Result<HismMatrix, ImageError> {
        if self.root.levels == 0 {
            return Err(ImageError::ZeroLevels);
        }
        // A sealed image is checked against its checksums before the
        // structural walk, so a flipped bit is reported as the content
        // corruption it is — even when it lands on a word the structural
        // checks would never look at.
        self.verify_integrity()?;
        if !(2..=256).contains(&(self.root.s as usize)) {
            return Err(ImageError::BadSectionSize(self.root.s));
        }
        let mut blocks: Vec<HismBlock> = Vec::new();
        // A valid image never holds more entries than words/2; use that
        // as a runaway guard against cyclic pointer corruption.
        let mut budget = self.words.len() as u64 / 2 + 1;
        let root = self.decode_block(
            self.root.addr,
            self.root.len,
            self.root.levels - 1,
            &mut blocks,
            &mut budget,
        )?;
        let nnz = blocks
            .iter()
            .map(|b| if b.level == 0 { b.len() } else { 0 })
            .sum();
        Ok(HismMatrix {
            s: self.root.s as usize,
            rows: self.root.rows as usize,
            cols: self.root.cols as usize,
            levels: self.root.levels as usize,
            blocks,
            root,
            nnz,
        })
    }

    fn word(&self, addr: usize) -> Result<u32, ImageError> {
        self.words
            .get(addr)
            .copied()
            .ok_or_else(|| ImageError::OutOfBounds {
                addr: addr.min(u32::MAX as usize) as u32,
                len: self.words.len() as u32,
            })
    }

    fn decode_block(
        &self,
        addr: u32,
        len: u32,
        level: u32,
        arena: &mut Vec<HismBlock>,
        budget: &mut u64,
    ) -> Result<usize, ImageError> {
        let base = addr as usize;
        if (len as u64) > *budget {
            return Err(ImageError::Runaway { addr });
        }
        *budget -= len as u64;
        let s = self.root.s as u8;
        let sw = self.root.s;
        let check_pos = |addr: usize, row: u8, col: u8| -> Result<(), ImageError> {
            if (sw as usize) < 256 && (row >= s || col >= s) {
                return Err(ImageError::BadPosition {
                    addr: addr.min(u32::MAX as usize) as u32,
                    row,
                    col,
                    s: sw,
                });
            }
            Ok(())
        };
        if level == 0 {
            let mut leaf: Vec<LeafEntry> = Vec::with_capacity(len as usize);
            for k in 0..len as usize {
                let v = Value::from_bits(self.word(base + 2 * k)?);
                let (row, col) = unpack_pos(self.word(base + 2 * k + 1)?);
                check_pos(base + 2 * k + 1, row, col)?;
                leaf.push(LeafEntry { row, col, value: v });
            }
            leaf.sort_by_key(|e| (e.row, e.col));
            arena.push(HismBlock {
                level: 0,
                data: BlockData::Leaf(leaf),
            });
        } else {
            let lens_base = base + 2 * len as usize;
            let mut node: Vec<NodeEntry> = Vec::with_capacity(len as usize);
            for k in 0..len as usize {
                let child_addr = self.word(base + 2 * k)?;
                let (row, col) = unpack_pos(self.word(base + 2 * k + 1)?);
                check_pos(base + 2 * k + 1, row, col)?;
                let child_len = self.word(lens_base + k)?;
                let child = self.decode_block(child_addr, child_len, level - 1, arena, budget)?;
                node.push(NodeEntry { row, col, child });
            }
            node.sort_by_key(|e| (e.row, e.col));
            arena.push(HismBlock {
                level: level as usize,
                data: BlockData::Node(node),
            });
        }
        Ok(arena.len() - 1)
    }

    /// Total image size in words.
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Adds `base` to every stored child address and to the root address,
    /// producing an image linked for loading at word address `base`.
    pub fn relocate(&mut self, base: u32) {
        for &site in &self.pointer_sites {
            self.words[site as usize] += base;
        }
        self.root.addr += base;
        // A relocated image is linked for a foreign base address: its
        // words can no longer be walked from index 0, so the sealed sums
        // are unverifiable. Drop the header rather than carry a stale one.
        self.integrity = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use stm_sparse::{gen, Coo};

    #[test]
    fn pos_packing_round_trip() {
        for (r, c) in [(0u8, 0u8), (255, 255), (7, 63), (63, 7)] {
            assert_eq!(unpack_pos(pack_pos(r, c)), (r, c));
        }
        assert_eq!(swap_pos(pack_pos(3, 9)), pack_pos(9, 3));
    }

    #[test]
    fn encode_decode_round_trip() {
        let coo = gen::random::uniform(120, 90, 500, 11);
        let h = build::from_coo(&coo, 8).unwrap();
        let img = HismImage::encode(&h);
        let back = img.decode().unwrap();
        back.validate().unwrap();
        assert_eq!(build::to_coo(&back), build::to_coo(&h));
    }

    #[test]
    fn image_size_accounting() {
        // 3 leaf entries in one block (s=8, 5x5 → 1 level): 6 words.
        let coo = Coo::from_triplets(5, 5, vec![(0, 0, 1.0), (1, 2, 2.0), (4, 4, 3.0)]).unwrap();
        let h = build::from_coo(&coo, 8).unwrap();
        let img = HismImage::encode(&h);
        assert_eq!(img.len_words(), 6);
        assert_eq!(
            img.root,
            RootDesc {
                addr: 0,
                len: 3,
                levels: 1,
                rows: 5,
                cols: 5,
                s: 8
            }
        );
        assert!(img.pointer_sites.is_empty());
    }

    #[test]
    fn two_level_image_has_lengths_vectors() {
        // s=4, 8x8 → 2 levels; two leaves.
        let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let img = HismImage::encode(&h);
        // leaves: 2 + 2 words; root: 2 entries * 2 + 2 lengths = 6 words.
        assert_eq!(img.len_words(), 10);
        assert_eq!(img.pointer_sites.len(), 2);
        // Lengths vector of the root holds 1, 1.
        let root_base = img.root.addr as usize;
        assert_eq!(&img.words[root_base + 4..root_base + 6], &[1, 1]);
    }

    #[test]
    fn pointers_are_backwards() {
        let coo = gen::rmat::rmat(7, 400, gen::rmat::RmatProbs::default(), 5);
        let h = build::from_coo(&coo, 8).unwrap();
        let img = HismImage::encode(&h);
        for &site in &img.pointer_sites {
            assert!(img.words[site as usize] < site);
        }
    }

    #[test]
    fn relocation_shifts_pointers_and_root() {
        let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        let before: Vec<u32> = img
            .pointer_sites
            .iter()
            .map(|&s| img.words[s as usize])
            .collect();
        img.relocate(1000);
        let after: Vec<u32> = img
            .pointer_sites
            .iter()
            .map(|&s| img.words[s as usize])
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b + 1000, *a);
        }
        assert_eq!(img.root.addr, 1000 + 4); // two 2-word leaves precede root
    }

    #[test]
    fn try_decode_rejects_out_of_bounds_pointer() {
        let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        let site = img.pointer_sites[0] as usize;
        img.words[site] = 1_000_000; // dangling child pointer
        assert!(img.decode().is_err());
    }

    #[test]
    fn try_decode_rejects_runaway_length() {
        let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        // Corrupt the root lengths vector with an absurd child length.
        let root_base = img.root.addr as usize;
        img.words[root_base + 2 * img.root.len as usize] = u32::MAX;
        assert!(img.decode().is_err());
    }

    #[test]
    fn try_decode_rejects_bad_position() {
        let coo = Coo::from_triplets(4, 4, vec![(0, 0, 1.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        img.words[1] = pack_pos(200, 200); // outside an s=4 block
        assert!(img.decode().is_err());
    }

    #[test]
    fn try_decode_rejects_zero_levels() {
        let coo = Coo::from_triplets(4, 4, vec![(0, 0, 1.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        img.root.levels = 0;
        assert!(img.decode().is_err());
    }

    #[test]
    fn encode_seals_a_verifiable_header() {
        let coo = gen::random::uniform(120, 90, 500, 11);
        let h = build::from_coo(&coo, 8).unwrap();
        let img = HismImage::encode(&h);
        let header = img.integrity.expect("encode must seal");
        assert_eq!(header.version, INTEGRITY_VERSION);
        assert_eq!(img.verify_integrity(), Ok(true));
        // The sidecar word form round-trips.
        assert_eq!(
            IntegrityHeader::from_words(&header.to_words()),
            Some(header)
        );
        assert_eq!(IntegrityHeader::from_words(&[0, 0, 0]), None);
    }

    #[test]
    fn headerless_images_still_load() {
        let coo = gen::random::uniform(50, 50, 200, 7);
        let h = build::from_coo(&coo, 8).unwrap();
        let mut img = HismImage::encode(&h);
        img.integrity = None; // a legacy image
        assert_eq!(img.verify_integrity(), Ok(false));
        assert_eq!(build::to_coo(&img.decode().unwrap()), build::to_coo(&h));
    }

    #[test]
    fn sealed_sums_survive_blockarray_permutation() {
        // The STM permutes blockarrays in place; a permuted-but-intact
        // image must still verify (sums are order-independent per class).
        let coo = Coo::from_triplets(5, 5, vec![(0, 0, 1.0), (1, 2, 2.0), (4, 4, 3.0)]).unwrap();
        let h = build::from_coo(&coo, 8).unwrap();
        let mut img = HismImage::encode(&h);
        img.words.swap(0, 2);
        img.words.swap(1, 3);
        assert_eq!(img.verify_integrity(), Ok(true));
    }

    #[test]
    fn a_value_bit_flip_is_caught_at_decode_by_the_checksum() {
        // A flipped value bit changes no structure — only the checksum
        // can see it.
        let coo = gen::random::uniform(50, 50, 200, 7);
        let h = build::from_coo(&coo, 8).unwrap();
        let mut img = HismImage::encode(&h);
        let site = img.value_sites().unwrap()[3] as usize;
        img.words[site] ^= 1 << 13;
        match img.decode() {
            Err(ImageError::Integrity { section, .. }) => assert_eq!(section, "values"),
            other => panic!("expected integrity error, got {other:?}"),
        }
        assert!(matches!(
            img.verify_integrity(),
            Err(ImageError::Integrity { .. })
        ));
    }

    #[test]
    fn value_sites_are_exactly_the_leaf_payload_words() {
        let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let img = HismImage::encode(&h);
        // Two 1-entry leaves at words 0..2 and 2..4: payloads at 0 and 2.
        assert_eq!(img.value_sites().unwrap(), vec![0, 2]);
    }

    #[test]
    fn relocation_drops_the_unverifiable_header() {
        let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        assert!(img.integrity.is_some());
        img.relocate(1000);
        assert!(img.integrity.is_none());
    }

    #[test]
    fn decode_tolerates_permuted_blockarrays() {
        // Swap two entries of a leaf blockarray (with their pos words):
        // decode must still recover the same matrix.
        let coo = Coo::from_triplets(5, 5, vec![(0, 0, 1.0), (1, 2, 2.0), (4, 4, 3.0)]).unwrap();
        let h = build::from_coo(&coo, 8).unwrap();
        let mut img = HismImage::encode(&h);
        img.words.swap(0, 2);
        img.words.swap(1, 3);
        let back = img.decode().unwrap();
        assert_eq!(build::to_coo(&back), build::to_coo(&h));
    }
}
