//! The flat memory image of a HiSM matrix — what the simulated vector
//! processor actually operates on.
//!
//! Layout (32-bit words, addresses are word offsets from the image base):
//!
//! * A blockarray of length `n` occupies `2n` words: entry `k` is the pair
//!   `[payload_k, pos_k]`, where `payload` is the value's bit pattern
//!   (level 0) or the child blockarray's word address (levels ≥ 1), and
//!   `pos = row << 8 | col` packs the 8-bit in-block coordinates.
//! * For levels ≥ 1 the paper's *lengths vector* — `n` words, the k-th
//!   holding the entry count of the k-th child — is stored immediately
//!   after the blockarray (at `addr + 2n`).
//! * Blocks are laid out in post-order (children before parents), so every
//!   pointer refers backwards; the root blockarray is last and is described
//!   by the external [`RootDesc`].
//!
//! The paper packs value + positions into 48 bits; we use two aligned
//! 32-bit words per entry. The cycle model accounts for this via
//! `VpConfig::words_per_entry` (see DESIGN.md, "Deliberate model
//! interpretations").

use crate::error::ImageError;
use crate::matrix::{BlockData, HismBlock, HismMatrix, LeafEntry, NodeEntry};
use stm_sparse::Value;

/// Words per blockarray entry in the image (`[payload, pos]`).
pub const WORDS_PER_ENTRY: u32 = 2;

/// Packs in-block coordinates into a position word (`row << 8 | col`).
pub fn pack_pos(row: u8, col: u8) -> u32 {
    (row as u32) << 8 | col as u32
}

/// Unpacks a position word into `(row, col)`.
pub fn unpack_pos(pos: u32) -> (u8, u8) {
    (((pos >> 8) & 0xff) as u8, (pos & 0xff) as u8)
}

/// Swaps the row/col fields of a position word — the STM's core data
/// transformation.
pub fn swap_pos(pos: u32) -> u32 {
    let (r, c) = unpack_pos(pos);
    pack_pos(c, r)
}

/// The root descriptor the paper keeps outside the image: "the matrix can
/// be referred to in terms of the memory position of the start of the top
/// level s²-blockarray and its length".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootDesc {
    /// Word address of the root blockarray.
    pub addr: u32,
    /// Entry count of the root blockarray.
    pub len: u32,
    /// Number of hierarchy levels `q`.
    pub levels: u32,
    /// Logical rows (pre-padding).
    pub rows: u32,
    /// Logical columns (pre-padding).
    pub cols: u32,
    /// Section size `s`.
    pub s: u32,
}

/// A serialized HiSM matrix: the word image plus its root descriptor and
/// the relocation table (word indices that hold child addresses).
#[derive(Debug, Clone, PartialEq)]
pub struct HismImage {
    /// The image words. Addresses in [`RootDesc`] and in pointer entries
    /// are relative to index 0 of this vector (i.e. the image is linked
    /// for base address 0).
    pub words: Vec<u32>,
    /// Root descriptor.
    pub root: RootDesc,
    /// Word indices that contain child addresses, for [`HismImage::relocate`].
    pub pointer_sites: Vec<u32>,
}

impl HismImage {
    /// Serializes a HiSM matrix (blocks are already in post-order in the
    /// arena, so arena order is the layout order).
    pub fn encode(h: &HismMatrix) -> HismImage {
        let mut words: Vec<u32> = Vec::new();
        let mut pointer_sites: Vec<u32> = Vec::new();
        let mut addr_of: Vec<u32> = vec![u32::MAX; h.blocks().len()];
        for (i, b) in h.blocks().iter().enumerate() {
            let addr = words.len() as u32;
            addr_of[i] = addr;
            match &b.data {
                BlockData::Leaf(entries) => {
                    for e in entries {
                        words.push(e.value.to_bits());
                        words.push(pack_pos(e.row, e.col));
                    }
                }
                BlockData::Node(entries) => {
                    for e in entries {
                        pointer_sites.push(words.len() as u32);
                        words.push(addr_of[e.child]);
                        words.push(pack_pos(e.row, e.col));
                    }
                    for e in entries {
                        words.push(h.blocks()[e.child].len() as u32);
                    }
                }
            }
        }
        let root = RootDesc {
            addr: addr_of[h.root()],
            len: h.root_block().len() as u32,
            levels: h.levels() as u32,
            rows: h.rows() as u32,
            cols: h.cols() as u32,
            s: h.section_size() as u32,
        };
        HismImage {
            words,
            root,
            pointer_sites,
        }
    }

    /// Rebuilds the host structure from the image. Works on images whose
    /// blockarrays were permuted in place (e.g. by the simulated STM), as
    /// long as the `(pointer, length)` pairing is consistent.
    ///
    /// The image is treated as untrusted input: the first corruption found
    /// (out-of-bounds pointer or length, position outside the block,
    /// runaway total size) is returned as a typed [`ImageError`] carrying
    /// the offending word address — decoding never panics.
    pub fn decode(&self) -> Result<HismMatrix, ImageError> {
        if self.root.levels == 0 {
            return Err(ImageError::ZeroLevels);
        }
        if !(2..=256).contains(&(self.root.s as usize)) {
            return Err(ImageError::BadSectionSize(self.root.s));
        }
        let mut blocks: Vec<HismBlock> = Vec::new();
        // A valid image never holds more entries than words/2; use that
        // as a runaway guard against cyclic pointer corruption.
        let mut budget = self.words.len() as u64 / 2 + 1;
        let root = self.decode_block(
            self.root.addr,
            self.root.len,
            self.root.levels - 1,
            &mut blocks,
            &mut budget,
        )?;
        let nnz = blocks
            .iter()
            .map(|b| if b.level == 0 { b.len() } else { 0 })
            .sum();
        Ok(HismMatrix {
            s: self.root.s as usize,
            rows: self.root.rows as usize,
            cols: self.root.cols as usize,
            levels: self.root.levels as usize,
            blocks,
            root,
            nnz,
        })
    }

    fn word(&self, addr: usize) -> Result<u32, ImageError> {
        self.words
            .get(addr)
            .copied()
            .ok_or_else(|| ImageError::OutOfBounds {
                addr: addr.min(u32::MAX as usize) as u32,
                len: self.words.len() as u32,
            })
    }

    fn decode_block(
        &self,
        addr: u32,
        len: u32,
        level: u32,
        arena: &mut Vec<HismBlock>,
        budget: &mut u64,
    ) -> Result<usize, ImageError> {
        let base = addr as usize;
        if (len as u64) > *budget {
            return Err(ImageError::Runaway { addr });
        }
        *budget -= len as u64;
        let s = self.root.s as u8;
        let sw = self.root.s;
        let check_pos = |addr: usize, row: u8, col: u8| -> Result<(), ImageError> {
            if (sw as usize) < 256 && (row >= s || col >= s) {
                return Err(ImageError::BadPosition {
                    addr: addr.min(u32::MAX as usize) as u32,
                    row,
                    col,
                    s: sw,
                });
            }
            Ok(())
        };
        if level == 0 {
            let mut leaf: Vec<LeafEntry> = Vec::with_capacity(len as usize);
            for k in 0..len as usize {
                let v = Value::from_bits(self.word(base + 2 * k)?);
                let (row, col) = unpack_pos(self.word(base + 2 * k + 1)?);
                check_pos(base + 2 * k + 1, row, col)?;
                leaf.push(LeafEntry { row, col, value: v });
            }
            leaf.sort_by_key(|e| (e.row, e.col));
            arena.push(HismBlock {
                level: 0,
                data: BlockData::Leaf(leaf),
            });
        } else {
            let lens_base = base + 2 * len as usize;
            let mut node: Vec<NodeEntry> = Vec::with_capacity(len as usize);
            for k in 0..len as usize {
                let child_addr = self.word(base + 2 * k)?;
                let (row, col) = unpack_pos(self.word(base + 2 * k + 1)?);
                check_pos(base + 2 * k + 1, row, col)?;
                let child_len = self.word(lens_base + k)?;
                let child = self.decode_block(child_addr, child_len, level - 1, arena, budget)?;
                node.push(NodeEntry { row, col, child });
            }
            node.sort_by_key(|e| (e.row, e.col));
            arena.push(HismBlock {
                level: level as usize,
                data: BlockData::Node(node),
            });
        }
        Ok(arena.len() - 1)
    }

    /// Total image size in words.
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Adds `base` to every stored child address and to the root address,
    /// producing an image linked for loading at word address `base`.
    pub fn relocate(&mut self, base: u32) {
        for &site in &self.pointer_sites {
            self.words[site as usize] += base;
        }
        self.root.addr += base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use stm_sparse::{gen, Coo};

    #[test]
    fn pos_packing_round_trip() {
        for (r, c) in [(0u8, 0u8), (255, 255), (7, 63), (63, 7)] {
            assert_eq!(unpack_pos(pack_pos(r, c)), (r, c));
        }
        assert_eq!(swap_pos(pack_pos(3, 9)), pack_pos(9, 3));
    }

    #[test]
    fn encode_decode_round_trip() {
        let coo = gen::random::uniform(120, 90, 500, 11);
        let h = build::from_coo(&coo, 8).unwrap();
        let img = HismImage::encode(&h);
        let back = img.decode().unwrap();
        back.validate().unwrap();
        assert_eq!(build::to_coo(&back), build::to_coo(&h));
    }

    #[test]
    fn image_size_accounting() {
        // 3 leaf entries in one block (s=8, 5x5 → 1 level): 6 words.
        let coo = Coo::from_triplets(5, 5, vec![(0, 0, 1.0), (1, 2, 2.0), (4, 4, 3.0)]).unwrap();
        let h = build::from_coo(&coo, 8).unwrap();
        let img = HismImage::encode(&h);
        assert_eq!(img.len_words(), 6);
        assert_eq!(
            img.root,
            RootDesc {
                addr: 0,
                len: 3,
                levels: 1,
                rows: 5,
                cols: 5,
                s: 8
            }
        );
        assert!(img.pointer_sites.is_empty());
    }

    #[test]
    fn two_level_image_has_lengths_vectors() {
        // s=4, 8x8 → 2 levels; two leaves.
        let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let img = HismImage::encode(&h);
        // leaves: 2 + 2 words; root: 2 entries * 2 + 2 lengths = 6 words.
        assert_eq!(img.len_words(), 10);
        assert_eq!(img.pointer_sites.len(), 2);
        // Lengths vector of the root holds 1, 1.
        let root_base = img.root.addr as usize;
        assert_eq!(&img.words[root_base + 4..root_base + 6], &[1, 1]);
    }

    #[test]
    fn pointers_are_backwards() {
        let coo = gen::rmat::rmat(7, 400, gen::rmat::RmatProbs::default(), 5);
        let h = build::from_coo(&coo, 8).unwrap();
        let img = HismImage::encode(&h);
        for &site in &img.pointer_sites {
            assert!(img.words[site as usize] < site);
        }
    }

    #[test]
    fn relocation_shifts_pointers_and_root() {
        let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        let before: Vec<u32> = img
            .pointer_sites
            .iter()
            .map(|&s| img.words[s as usize])
            .collect();
        img.relocate(1000);
        let after: Vec<u32> = img
            .pointer_sites
            .iter()
            .map(|&s| img.words[s as usize])
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b + 1000, *a);
        }
        assert_eq!(img.root.addr, 1000 + 4); // two 2-word leaves precede root
    }

    #[test]
    fn try_decode_rejects_out_of_bounds_pointer() {
        let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        let site = img.pointer_sites[0] as usize;
        img.words[site] = 1_000_000; // dangling child pointer
        assert!(img.decode().is_err());
    }

    #[test]
    fn try_decode_rejects_runaway_length() {
        let coo = Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 2.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        // Corrupt the root lengths vector with an absurd child length.
        let root_base = img.root.addr as usize;
        img.words[root_base + 2 * img.root.len as usize] = u32::MAX;
        assert!(img.decode().is_err());
    }

    #[test]
    fn try_decode_rejects_bad_position() {
        let coo = Coo::from_triplets(4, 4, vec![(0, 0, 1.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        img.words[1] = pack_pos(200, 200); // outside an s=4 block
        assert!(img.decode().is_err());
    }

    #[test]
    fn try_decode_rejects_zero_levels() {
        let coo = Coo::from_triplets(4, 4, vec![(0, 0, 1.0)]).unwrap();
        let h = build::from_coo(&coo, 4).unwrap();
        let mut img = HismImage::encode(&h);
        img.root.levels = 0;
        assert!(img.decode().is_err());
    }

    #[test]
    fn decode_tolerates_permuted_blockarrays() {
        // Swap two entries of a leaf blockarray (with their pos words):
        // decode must still recover the same matrix.
        let coo = Coo::from_triplets(5, 5, vec![(0, 0, 1.0), (1, 2, 2.0), (4, 4, 3.0)]).unwrap();
        let h = build::from_coo(&coo, 8).unwrap();
        let mut img = HismImage::encode(&h);
        img.words.swap(0, 2);
        img.words.swap(1, 3);
        let back = img.decode().unwrap();
        assert_eq!(build::to_coo(&back), build::to_coo(&h));
    }
}
