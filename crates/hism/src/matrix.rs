//! The host-side HiSM structure: an arena of hierarchical `s x s` blocks.

use stm_sparse::Value;

/// One non-zero of a level-0 blockarray: value + 8-bit in-block position.
///
/// The paper stores 8 bits per row/column position because `s < 256` on
/// every vector architecture it targets; we keep the same bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafEntry {
    /// Row position inside the block (`0 .. s`).
    pub row: u8,
    /// Column position inside the block (`0 .. s`).
    pub col: u8,
    /// The non-zero value.
    pub value: Value,
}

/// One entry of a level ≥ 1 blockarray: a pointer to a non-empty child
/// blockarray plus its 8-bit in-block position. The child's *length* (the
/// paper's lengths vector) is recovered from the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeEntry {
    /// Row position inside the block (`0 .. s`).
    pub row: u8,
    /// Column position inside the block (`0 .. s`).
    pub col: u8,
    /// Arena index of the child block.
    pub child: usize,
}

/// The payload of a block: values at level 0, child pointers above.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockData {
    /// A level-0 blockarray of values.
    Leaf(Vec<LeafEntry>),
    /// A level ≥ 1 blockarray of child pointers.
    Node(Vec<NodeEntry>),
}

/// One `s x s` block (an *s²-block* in the paper's terms).
#[derive(Debug, Clone, PartialEq)]
pub struct HismBlock {
    /// Hierarchy level: 0 for leaves, `levels - 1` for the root.
    pub level: usize,
    /// The blockarray. Entries are kept sorted row-major within the block
    /// (the paper permits any fixed order per level; we use row-major at
    /// every level).
    pub data: BlockData,
}

impl HismBlock {
    /// Number of entries in the blockarray (the paper's "length").
    pub fn len(&self) -> usize {
        match &self.data {
            BlockData::Leaf(v) => v.len(),
            BlockData::Node(v) => v.len(),
        }
    }

    /// True when the blockarray is empty (never stored by the builder,
    /// but possible to construct by hand).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A sparse matrix in the Hierarchical Sparse Matrix format.
///
/// Blocks live in an arena (`blocks`); `root` indexes the top-level block.
/// The logical (pre-padding) shape is kept so round-trips through COO are
/// exact.
#[derive(Debug, Clone, PartialEq)]
pub struct HismMatrix {
    /// Section size `s` (block dimension at every level).
    pub(crate) s: usize,
    /// Logical number of rows (before padding to `s^q`).
    pub(crate) rows: usize,
    /// Logical number of columns (before padding to `s^q`).
    pub(crate) cols: usize,
    /// Number of hierarchy levels `q`.
    pub(crate) levels: usize,
    /// Block arena; children always precede their parent (post-order), and
    /// the root is the last element.
    pub(crate) blocks: Vec<HismBlock>,
    /// Arena index of the root block.
    pub(crate) root: usize,
    /// Total number of non-zero values (leaf entries).
    pub(crate) nnz: usize,
}

impl HismMatrix {
    /// Section size `s`.
    pub fn section_size(&self) -> usize {
        self.s
    }

    /// Logical number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Logical shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of hierarchy levels `q = max(⌈log_s M⌉, ⌈log_s N⌉)` (≥ 1).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The padded dimension `s^q`.
    pub fn padded_dim(&self) -> usize {
        self.s.pow(self.levels as u32)
    }

    /// Number of stored non-zero values.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Arena access.
    pub fn blocks(&self) -> &[HismBlock] {
        &self.blocks
    }

    /// Index of the root block in the arena.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The root block.
    pub fn root_block(&self) -> &HismBlock {
        &self.blocks[self.root]
    }

    /// Number of blocks stored at a given level.
    pub fn block_count_at(&self, level: usize) -> usize {
        self.blocks.iter().filter(|b| b.level == level).count()
    }

    /// Total entries over all blockarrays of a given level.
    pub fn entries_at(&self, level: usize) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.level == level)
            .map(HismBlock::len)
            .sum()
    }

    /// Average leaf blockarray fill `nnz / (number of level-0 blocks)`.
    /// This is the quantity the paper's *locality* metric is a proxy for.
    pub fn avg_leaf_fill(&self) -> f64 {
        let leaves = self.block_count_at(0);
        if leaves == 0 {
            0.0
        } else {
            self.nnz as f64 / leaves as f64
        }
    }

    /// Value at `(row, col)` of the logical matrix, or `None` when
    /// structurally zero. Walks the hierarchy using the paper's coordinate
    /// decomposition `i = i_0 + i_1 s + … + i_q s^q`.
    pub fn get(&self, row: usize, col: usize) -> Option<Value> {
        if row >= self.rows || col >= self.cols {
            return None;
        }
        let mut block = self.root;
        let mut level = self.levels - 1;
        loop {
            let step = self.s.pow(level as u32);
            let (br, bc) = ((row / step % self.s) as u8, (col / step % self.s) as u8);
            match &self.blocks[block].data {
                BlockData::Leaf(entries) => {
                    return entries
                        .iter()
                        .find(|e| e.row == br && e.col == bc)
                        .map(|e| e.value);
                }
                BlockData::Node(entries) => {
                    let child = entries.iter().find(|e| e.row == br && e.col == bc)?;
                    block = child.child;
                    level -= 1;
                }
            }
        }
    }

    /// Checks structural invariants: positions within `0..s`, row-major
    /// ordering with no duplicates per blockarray, level consistency of
    /// children, and the nnz count.
    pub fn validate(&self) -> Result<(), String> {
        if self.s < 2 || self.s > 256 {
            return Err(format!("section size {} out of range 2..=256", self.s));
        }
        if self.levels == 0 {
            return Err("levels must be >= 1".into());
        }
        let mut leaf_nnz = 0usize;
        for (i, b) in self.blocks.iter().enumerate() {
            let coords: Vec<(u8, u8)> = match &b.data {
                BlockData::Leaf(v) => {
                    if b.level != 0 {
                        return Err(format!("leaf data at level {} (block {i})", b.level));
                    }
                    leaf_nnz += v.len();
                    v.iter().map(|e| (e.row, e.col)).collect()
                }
                BlockData::Node(v) => {
                    if b.level == 0 {
                        return Err(format!("node data at level 0 (block {i})"));
                    }
                    for e in v {
                        if e.child >= self.blocks.len() {
                            return Err(format!("dangling child {} in block {i}", e.child));
                        }
                        let cl = self.blocks[e.child].level;
                        if cl + 1 != b.level {
                            return Err(format!(
                                "block {i} (level {}) points at level {cl}",
                                b.level
                            ));
                        }
                        if self.blocks[e.child].is_empty() {
                            return Err(format!("block {i} stores an empty child"));
                        }
                    }
                    v.iter().map(|e| (e.row, e.col)).collect()
                }
            };
            for &(r, c) in &coords {
                if r as usize >= self.s || c as usize >= self.s {
                    return Err(format!("position ({r},{c}) outside s={} block", self.s));
                }
            }
            if coords.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("blockarray {i} not strictly row-major"));
            }
        }
        if self.root >= self.blocks.len() {
            return Err("root out of range".into());
        }
        if self.blocks[self.root].level + 1 != self.levels {
            return Err(format!(
                "root level {} inconsistent with levels {}",
                self.blocks[self.root].level, self.levels
            ));
        }
        if leaf_nnz != self.nnz {
            return Err(format!("nnz {} != leaf entries {leaf_nnz}", self.nnz));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use stm_sparse::Coo;

    fn small() -> HismMatrix {
        // 10x10 with s=4 → q=2 levels.
        let coo = Coo::from_triplets(
            10,
            10,
            vec![(0, 0, 1.0), (9, 9, 2.0), (3, 7, 3.0), (5, 1, 4.0)],
        )
        .unwrap();
        build::from_coo(&coo, 4).unwrap()
    }

    #[test]
    fn basic_shape_and_levels() {
        let h = small();
        assert_eq!(h.shape(), (10, 10));
        assert_eq!(h.levels(), 2);
        assert_eq!(h.padded_dim(), 16);
        assert_eq!(h.nnz(), 4);
        h.validate().unwrap();
    }

    #[test]
    fn get_finds_all_entries() {
        let h = small();
        assert_eq!(h.get(0, 0), Some(1.0));
        assert_eq!(h.get(9, 9), Some(2.0));
        assert_eq!(h.get(3, 7), Some(3.0));
        assert_eq!(h.get(5, 1), Some(4.0));
        assert_eq!(h.get(1, 1), None);
        assert_eq!(h.get(20, 0), None);
    }

    #[test]
    fn block_counts() {
        let h = small();
        assert_eq!(h.block_count_at(1), 1); // the root
                                            // entries (0,0),(3,7) are in distinct 4x4 leaves; (5,1),(9,9) too.
        assert_eq!(h.block_count_at(0), 4);
        assert_eq!(h.entries_at(0), 4);
        assert_eq!(h.entries_at(1), 4);
    }

    #[test]
    fn avg_leaf_fill() {
        let h = small();
        assert!((h.avg_leaf_fill() - 1.0).abs() < 1e-12);
    }
}
