//! Lazy iteration over a HiSM matrix's non-zeros in global coordinates —
//! no intermediate COO materialization, using an explicit DFS stack over
//! the hierarchy.

use crate::matrix::{BlockData, HismMatrix};
use stm_sparse::Value;

/// Iterator over `(row, col, value)` triplets of a [`HismMatrix`].
///
/// Order: depth-first over the hierarchy with blocks visited row-major at
/// every level — i.e. block-row-major, *not* global row-major. Collect
/// and sort (or go through [`crate::build::to_coo`]) when a global order
/// is needed.
pub struct TripletIter<'a> {
    h: &'a HismMatrix,
    /// `(block index, entry cursor, origin)` frames, innermost last.
    stack: Vec<(usize, usize, (usize, usize))>,
}

impl<'a> TripletIter<'a> {
    pub(crate) fn new(h: &'a HismMatrix) -> Self {
        TripletIter {
            h,
            stack: vec![(h.root(), 0, (0, 0))],
        }
    }
}

impl Iterator for TripletIter<'_> {
    type Item = (usize, usize, Value);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let &(block, cursor, origin) = self.stack.last()?;
            let level = self.h.blocks()[block].level;
            match &self.h.blocks()[block].data {
                BlockData::Leaf(entries) => {
                    if let Some(e) = entries.get(cursor) {
                        self.stack.last_mut().unwrap().1 += 1;
                        return Some((
                            origin.0 + e.row as usize,
                            origin.1 + e.col as usize,
                            e.value,
                        ));
                    }
                    self.stack.pop();
                }
                BlockData::Node(entries) => {
                    if let Some(e) = entries.get(cursor) {
                        self.stack.last_mut().unwrap().1 += 1;
                        // A node at `level` covers s^(level+1) cells per
                        // side; each child covers s^level.
                        let step = self.h.section_size().pow(level as u32);
                        let child_origin = (
                            origin.0 + e.row as usize * step,
                            origin.1 + e.col as usize * step,
                        );
                        self.stack.push((e.child, 0, child_origin));
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // We cannot cheaply know how many remain mid-walk, but the total
        // is bounded by nnz.
        (0, Some(self.h.nnz()))
    }
}

impl HismMatrix {
    /// Lazily iterates over all non-zeros in global coordinates (see
    /// [`TripletIter`] for the traversal order).
    pub fn iter(&self) -> TripletIter<'_> {
        TripletIter::new(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::build;
    use stm_sparse::{gen, Coo};

    #[test]
    fn iterates_all_entries() {
        let coo = gen::random::uniform(70, 70, 350, 5);
        let h = build::from_coo(&coo, 8).unwrap();
        let mut got: Vec<_> = h.iter().collect();
        got.sort_by_key(|&(r, c, _)| (r, c));
        let mut expect = coo.clone();
        expect.canonicalize();
        assert_eq!(got, expect.entries());
        assert_eq!(h.iter().count(), h.nnz());
    }

    #[test]
    fn empty_matrix_yields_nothing() {
        let h = build::from_coo(&Coo::new(10, 10), 4).unwrap();
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn single_block_is_row_major() {
        let coo = Coo::from_triplets(8, 8, vec![(5, 1, 1.0), (0, 3, 2.0), (5, 0, 3.0)]).unwrap();
        let h = build::from_coo(&coo, 8).unwrap();
        let got: Vec<_> = h.iter().collect();
        assert_eq!(got, vec![(0, 3, 2.0), (5, 0, 3.0), (5, 1, 1.0)]);
    }

    #[test]
    fn size_hint_upper_bound_is_nnz() {
        let coo = gen::structured::tridiagonal(30);
        let h = build::from_coo(&coo, 4).unwrap();
        assert_eq!(h.iter().size_hint().1, Some(h.nnz()));
    }

    #[test]
    fn iter_agrees_with_to_coo_as_sets() {
        let coo = gen::blocks::block_dense(64, 8, 4, 0.6, 2);
        let h = build::from_coo(&coo, 8).unwrap();
        let mut a: Vec<_> = h.iter().collect();
        a.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(a, build::to_coo(&h).entries());
    }
}
