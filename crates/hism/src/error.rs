//! Typed errors for HiSM memory-image decoding.
//!
//! A HiSM image is raw hardware-facing memory: backwards pointers, packed
//! `row << 8 | col` positions and lengths vectors, with nothing but
//! convention keeping them consistent. Decoding therefore treats the image
//! as untrusted input and reports the first corruption it finds as an
//! [`ImageError`] carrying the offending *word address* — the same
//! information a hardware walker's trap register would hold.

use std::fmt;

/// A corruption found while walking a HiSM memory image.
///
/// Every variant that concerns a specific image word carries its word
/// address (relative to the image base), so a fault can be traced back to
/// the byte the injector (or the outside world) flipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The root descriptor declares zero hierarchy levels.
    ZeroLevels,
    /// The root descriptor's section size is outside `2..=256`.
    BadSectionSize(u32),
    /// A blockarray, lengths vector, or entry extends past the image end.
    OutOfBounds {
        /// First word address of the out-of-range access.
        addr: u32,
        /// Image length in words.
        len: u32,
    },
    /// A position word holds coordinates outside the `s x s` block.
    BadPosition {
        /// Word address of the position word.
        addr: u32,
        /// Unpacked row coordinate.
        row: u8,
        /// Unpacked column coordinate.
        col: u8,
        /// Section size the coordinates must stay under.
        s: u32,
    },
    /// The declared hierarchy holds more entries than the image has room
    /// for — the signature of a pointer cycle or corrupted lengths vector.
    Runaway {
        /// Blockarray address at which the entry budget ran out.
        addr: u32,
    },
    /// A section checksum carried in the image's integrity header does not
    /// match the words actually present — the image was modified after it
    /// was sealed.
    Integrity {
        /// Which section class disagrees (`values`, `pointers`,
        /// `positions`, or `lengths`).
        section: &'static str,
        /// Checksum recorded in the header.
        expect: u64,
        /// Checksum recomputed from the image words.
        got: u64,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::ZeroLevels => write!(f, "root descriptor declares zero levels"),
            ImageError::BadSectionSize(s) => {
                write!(f, "section size {s} outside the supported 2..=256 range")
            }
            ImageError::OutOfBounds { addr, len } => {
                write!(f, "image read past end: word {addr} of {len}")
            }
            ImageError::BadPosition { addr, row, col, s } => write!(
                f,
                "position ({row},{col}) at word {addr} outside the s={s} block"
            ),
            ImageError::Runaway { addr } => write!(
                f,
                "hierarchy at word {addr} larger than the image itself (pointer cycle?)"
            ),
            ImageError::Integrity {
                section,
                expect,
                got,
            } => write!(
                f,
                "integrity: {section} checksum mismatch (header 0x{expect:016x}, image 0x{got:016x})"
            ),
        }
    }
}

impl std::error::Error for ImageError {}
