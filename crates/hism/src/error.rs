//! Typed errors for HiSM memory-image decoding.
//!
//! A HiSM image is raw hardware-facing memory: backwards pointers, packed
//! `row << 8 | col` positions and lengths vectors, with nothing but
//! convention keeping them consistent. Decoding therefore treats the image
//! as untrusted input and reports the first corruption it finds as an
//! [`ImageError`] carrying the offending *word address* — the same
//! information a hardware walker's trap register would hold.

use std::fmt;

/// A corruption found while walking a HiSM memory image.
///
/// Every variant that concerns a specific image word carries its word
/// address (relative to the image base), so a fault can be traced back to
/// the byte the injector (or the outside world) flipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The root descriptor declares zero hierarchy levels.
    ZeroLevels,
    /// The root descriptor's section size is outside `2..=256`.
    BadSectionSize(u32),
    /// A blockarray, lengths vector, or entry extends past the image end.
    OutOfBounds {
        /// First word address of the out-of-range access.
        addr: u32,
        /// Image length in words.
        len: u32,
    },
    /// A position word holds coordinates outside the `s x s` block.
    BadPosition {
        /// Word address of the position word.
        addr: u32,
        /// Unpacked row coordinate.
        row: u8,
        /// Unpacked column coordinate.
        col: u8,
        /// Section size the coordinates must stay under.
        s: u32,
    },
    /// The declared hierarchy holds more entries than the image has room
    /// for — the signature of a pointer cycle or corrupted lengths vector.
    Runaway {
        /// Blockarray address at which the entry budget ran out.
        addr: u32,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::ZeroLevels => write!(f, "root descriptor declares zero levels"),
            ImageError::BadSectionSize(s) => {
                write!(f, "section size {s} outside the supported 2..=256 range")
            }
            ImageError::OutOfBounds { addr, len } => {
                write!(f, "image read past end: word {addr} of {len}")
            }
            ImageError::BadPosition { addr, row, col, s } => write!(
                f,
                "position ({row},{col}) at word {addr} outside the s={s} block"
            ),
            ImageError::Runaway { addr } => write!(
                f,
                "hierarchy at word {addr} larger than the image itself (pointer cycle?)"
            ),
        }
    }
}

impl std::error::Error for ImageError {}
