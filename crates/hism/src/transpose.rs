//! Software reference transposition of a HiSM matrix.
//!
//! Section III of the paper proves that transposing *every* `s²`-block at
//! *every* hierarchy level — i.e. swapping each entry's in-block `(row,
//! col)` coordinates — transposes the whole matrix, because the global
//! coordinates decompose as `i = i_0 + i_1 s + … + i_q s^q` and the swap
//! happens level-wise. This module implements exactly that per-block swap
//! (plus the row-major re-sort the storage order requires) and is the
//! oracle the simulated STM kernel is validated against.

use crate::matrix::{BlockData, HismBlock, HismMatrix};

/// Returns the transposed matrix. Every blockarray keeps its arena index
/// and length; only in-block coordinates are swapped and entries re-sorted
/// row-major — mirroring the fact that the hardware transposes each
/// blockarray *in place* ("the same memory location and amount as the
/// original is needed", Section IV-A).
pub fn transpose(h: &HismMatrix) -> HismMatrix {
    let blocks = h
        .blocks()
        .iter()
        .map(|b| HismBlock {
            level: b.level,
            data: transpose_block_data(&b.data),
        })
        .collect();
    HismMatrix {
        s: h.section_size(),
        rows: h.cols(),
        cols: h.rows(),
        levels: h.levels(),
        blocks,
        root: h.root(),
        nnz: h.nnz(),
    }
}

fn transpose_block_data(data: &BlockData) -> BlockData {
    match data {
        BlockData::Leaf(entries) => {
            let mut out = entries.clone();
            for e in &mut out {
                std::mem::swap(&mut e.row, &mut e.col);
            }
            out.sort_by_key(|e| (e.row, e.col));
            BlockData::Leaf(out)
        }
        BlockData::Node(entries) => {
            let mut out = entries.clone();
            for e in &mut out {
                std::mem::swap(&mut e.row, &mut e.col);
            }
            out.sort_by_key(|e| (e.row, e.col));
            BlockData::Node(out)
        }
    }
}

/// The paper's coordinate decomposition: splits a global coordinate into
/// its per-level digits `(i_0, i_1, …, i_{q-1})` base `s` (least
/// significant first). Exposed for tests of the Section III identity.
pub fn coordinate_digits(i: usize, s: usize, levels: usize) -> Vec<usize> {
    let mut digits = Vec::with_capacity(levels);
    let mut rest = i;
    for _ in 0..levels {
        digits.push(rest % s);
        rest /= s;
    }
    assert_eq!(
        rest, 0,
        "coordinate {i} does not fit in {levels} levels of base {s}"
    );
    digits
}

/// Recomposes digits into a coordinate (inverse of [`coordinate_digits`]).
pub fn coordinate_from_digits(digits: &[usize], s: usize) -> usize {
    digits.iter().rev().fold(0, |acc, &d| acc * s + d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use stm_sparse::gen;

    #[test]
    fn transpose_matches_coo_oracle() {
        let coo = gen::random::uniform(100, 60, 400, 9);
        let h = build::from_coo(&coo, 8).unwrap();
        let t = transpose(&h);
        t.validate().unwrap();
        assert_eq!(t.shape(), (60, 100));
        assert_eq!(build::to_coo(&t), coo.transpose_canonical());
    }

    #[test]
    fn transpose_is_involution() {
        let coo = gen::blocks::block_dense(128, 16, 5, 0.7, 3);
        let h = build::from_coo(&coo, 16).unwrap();
        assert_eq!(transpose(&transpose(&h)), h);
    }

    #[test]
    fn transpose_preserves_block_lengths() {
        // The in-place property: every blockarray keeps its length.
        let coo = gen::rmat::rmat(8, 900, gen::rmat::RmatProbs::default(), 4);
        let h = build::from_coo(&coo, 8).unwrap();
        let t = transpose(&h);
        for (a, b) in h.blocks().iter().zip(t.blocks()) {
            assert_eq!(a.len(), b.len());
            assert_eq!(a.level, b.level);
        }
    }

    #[test]
    fn digits_round_trip() {
        for i in [0usize, 1, 63, 64, 100, 4095] {
            let d = coordinate_digits(i, 64, 2);
            assert_eq!(coordinate_from_digits(&d, 64), i);
        }
    }

    #[test]
    fn section_iii_identity() {
        // Swapping digits level-wise equals swapping global coordinates:
        // for all (i, j): recompose(digits(j)) == j used as the new i.
        let s = 8;
        let levels = 3;
        for (i, j) in [(5usize, 500usize), (63, 64), (0, 511), (100, 100)] {
            let di = coordinate_digits(i, s, levels);
            let dj = coordinate_digits(j, s, levels);
            // After per-level swap, the new row digits are dj, new col di.
            assert_eq!(coordinate_from_digits(&dj, s), j);
            assert_eq!(coordinate_from_digits(&di, s), i);
        }
    }

    #[test]
    fn rectangular_matrix_padding_transpose() {
        // 100x10 pads to 128x128 at s=... (levels_for uses max dim).
        let coo = gen::random::uniform(100, 10, 120, 2);
        let h = build::from_coo(&coo, 4).unwrap();
        let t = transpose(&h);
        assert_eq!(build::to_coo(&t), coo.transpose_canonical());
    }

    #[test]
    fn diagonal_transpose_is_itself() {
        let coo = gen::structured::diagonal(200);
        let h = build::from_coo(&coo, 64).unwrap();
        let t = transpose(&h);
        let mut orig = coo;
        orig.canonicalize();
        assert_eq!(build::to_coo(&t), orig);
    }
}
