//! Matrix algebra over the HiSM format — the operations a downstream user
//! of the format needs around transposition: scaling, addition, direct
//! CSR export, equality with tolerance, and norms. All are *structural*
//! implementations (they walk the hierarchy, never densify).

use crate::build;
use crate::matrix::{BlockData, HismBlock, HismMatrix};
use stm_sparse::{Coo, Csr, FormatError, Value};

/// Scales every value: `B = alpha * A`. Structure (blocks, ordering,
/// lengths) is preserved exactly; scaling by zero still keeps the
/// structure (explicit zeros), matching in-place hardware semantics.
pub fn scale(h: &HismMatrix, alpha: Value) -> HismMatrix {
    let blocks = h
        .blocks()
        .iter()
        .map(|b| HismBlock {
            level: b.level,
            data: match &b.data {
                BlockData::Leaf(v) => BlockData::Leaf(
                    v.iter()
                        .map(|e| crate::matrix::LeafEntry {
                            row: e.row,
                            col: e.col,
                            value: e.value * alpha,
                        })
                        .collect(),
                ),
                BlockData::Node(v) => BlockData::Node(v.clone()),
            },
        })
        .collect();
    HismMatrix {
        s: h.section_size(),
        rows: h.rows(),
        cols: h.cols(),
        levels: h.levels(),
        blocks,
        root: h.root(),
        nnz: h.nnz(),
    }
}

/// Element-wise sum `C = A + B` (shapes and section sizes must match).
/// Built by merging the flattened triplets and rebuilding — the union
/// structure generally differs from either input's.
pub fn add(a: &HismMatrix, b: &HismMatrix) -> Result<HismMatrix, FormatError> {
    if a.shape() != b.shape() {
        return Err(FormatError::ShapeMismatch {
            expected: a.shape(),
            found: b.shape(),
        });
    }
    if a.section_size() != b.section_size() {
        return Err(FormatError::Parse(format!(
            "section size mismatch: {} vs {}",
            a.section_size(),
            b.section_size()
        )));
    }
    let mut coo = build::to_coo(a);
    for &(r, c, v) in build::to_coo(b).entries() {
        coo.push(r, c, v);
    }
    build::from_coo(&coo, a.section_size())
}

/// Direct HiSM → CSR conversion (without an intermediate canonical COO
/// sort: the hierarchy is already row-major within blocks, but blocks of
/// one block-row interleave, so a per-row bucket pass is used).
pub fn to_csr(h: &HismMatrix) -> Csr {
    Csr::from_coo(&build::to_coo(h))
}

/// Builds HiSM straight from CSR.
pub fn from_csr(csr: &Csr, s: usize) -> Result<HismMatrix, FormatError> {
    build::from_coo(&csr.to_coo(), s)
}

/// Max-norm of the element-wise difference, treating missing entries as
/// zero. Useful for verifying iterative algorithms over the format.
pub fn max_abs_diff(a: &HismMatrix, b: &HismMatrix) -> Result<Value, FormatError> {
    if a.shape() != b.shape() {
        return Err(FormatError::ShapeMismatch {
            expected: a.shape(),
            found: b.shape(),
        });
    }
    let mut ca = build::to_coo(a);
    for &(r, c, v) in build::to_coo(b).entries() {
        ca.push(r, c, -v);
    }
    ca.canonicalize();
    Ok(ca.iter().map(|&(_, _, v)| v.abs()).fold(0.0, Value::max))
}

/// Frobenius norm of the matrix.
pub fn frobenius_norm(h: &HismMatrix) -> Value {
    let mut acc = 0f64;
    for b in h.blocks() {
        if let BlockData::Leaf(v) = &b.data {
            for e in v {
                acc += (e.value as f64) * (e.value as f64);
            }
        }
    }
    acc.sqrt() as Value
}

/// Extracts the logical sub-matrix `rows_range x cols_range` as COO
/// (half-open ranges), walking only intersecting blocks.
pub fn submatrix(
    h: &HismMatrix,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> Coo {
    let mut out = Coo::new(rows.len(), cols.len());
    collect(h, h.root(), h.levels() - 1, (0, 0), &rows, &cols, &mut out);
    out.canonicalize();
    out
}

#[allow(clippy::too_many_arguments)]
fn collect(
    h: &HismMatrix,
    block: usize,
    level: usize,
    origin: (usize, usize),
    rows: &std::ops::Range<usize>,
    cols: &std::ops::Range<usize>,
    out: &mut Coo,
) {
    let step = h.section_size().pow(level as u32);
    match &h.blocks()[block].data {
        BlockData::Leaf(entries) => {
            for e in entries {
                let (r, c) = (origin.0 + e.row as usize, origin.1 + e.col as usize);
                if rows.contains(&r) && cols.contains(&c) {
                    out.push(r - rows.start, c - cols.start, e.value);
                }
            }
        }
        BlockData::Node(entries) => {
            for e in entries {
                let co = (
                    origin.0 + e.row as usize * step,
                    origin.1 + e.col as usize * step,
                );
                // Prune blocks that cannot intersect the window.
                if co.0 >= rows.end || co.1 >= cols.end {
                    continue;
                }
                if co.0 + step <= rows.start || co.1 + step <= cols.start {
                    continue;
                }
                collect(h, e.child, level - 1, co, rows, cols, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_sparse::gen;

    fn sample() -> HismMatrix {
        build::from_coo(&gen::random::uniform(60, 60, 300, 7), 8).unwrap()
    }

    #[test]
    fn scale_multiplies_values_and_keeps_structure() {
        let h = sample();
        let s2 = scale(&h, 2.0);
        assert_eq!(s2.nnz(), h.nnz());
        assert_eq!(s2.blocks().len(), h.blocks().len());
        for (&(r1, c1, v1), &(r2, c2, v2)) in build::to_coo(&h)
            .entries()
            .iter()
            .zip(build::to_coo(&s2).entries())
        {
            assert_eq!((r1, c1), (r2, c2));
            assert_eq!(v1 * 2.0, v2);
        }
    }

    #[test]
    fn add_matches_coo_sum() {
        let a = build::from_coo(&gen::random::uniform(40, 40, 150, 1), 8).unwrap();
        let b = build::from_coo(&gen::random::uniform(40, 40, 150, 2), 8).unwrap();
        let c = add(&a, &b).unwrap();
        let mut expect = build::to_coo(&a);
        for &(r, col, v) in build::to_coo(&b).entries() {
            expect.push(r, col, v);
        }
        expect.canonicalize();
        assert_eq!(build::to_coo(&c), expect);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = build::from_coo(&Coo::new(4, 4), 4).unwrap();
        let b = build::from_coo(&Coo::new(4, 5), 4).unwrap();
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn csr_round_trip() {
        let h = sample();
        let back = from_csr(&to_csr(&h), 8).unwrap();
        assert_eq!(build::to_coo(&back), build::to_coo(&h));
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let h = sample();
        assert_eq!(max_abs_diff(&h, &h).unwrap(), 0.0);
        let scaled = scale(&h, 1.5);
        let d = max_abs_diff(&h, &scaled).unwrap();
        let max_entry = build::to_coo(&h)
            .iter()
            .map(|&(_, _, v)| v.abs())
            .fold(0.0f32, f32::max);
        assert!((d - 0.5 * max_entry).abs() < 1e-5);
    }

    #[test]
    fn frobenius_matches_direct_sum() {
        let h = sample();
        let direct: f64 = build::to_coo(&h)
            .iter()
            .map(|&(_, _, v)| (v as f64) * (v as f64))
            .sum();
        assert!((frobenius_norm(&h) as f64 - direct.sqrt()).abs() < 1e-4);
    }

    #[test]
    fn submatrix_extracts_window() {
        let mut coo = Coo::new(20, 20);
        coo.push(3, 4, 1.0);
        coo.push(10, 10, 2.0);
        coo.push(19, 0, 3.0);
        let h = build::from_coo(&coo, 4).unwrap();
        let sub = submatrix(&h, 2..12, 3..12);
        assert_eq!(sub.shape(), (10, 9));
        assert_eq!(sub.entries(), &[(1, 1, 1.0), (8, 7, 2.0)]);
    }

    #[test]
    fn submatrix_full_window_is_identity() {
        let h = sample();
        let sub = submatrix(&h, 0..60, 0..60);
        assert_eq!(sub, build::to_coo(&h));
    }

    #[test]
    fn scale_transpose_commute() {
        let h = sample();
        let a = crate::transpose::transpose(&scale(&h, 3.0));
        let b = scale(&crate::transpose::transpose(&h), 3.0);
        assert_eq!(a, b);
    }
}
