//! The Hierarchical Sparse Matrix (HiSM) storage format.
//!
//! HiSM (Stathis et al., IPDPS 2003 — reference \[5\] of the STM paper)
//! partitions an `M x N` sparse matrix into a hierarchy of `s x s` blocks,
//! where `s` is the section size of the target vector processor:
//!
//! * the matrix is zero-padded to `s^q x s^q`, with
//!   `q = max(ceil(log_s M), ceil(log_s N))` hierarchy levels;
//! * **level 0** blocks (leaves) store the non-zero *values* together with
//!   their 8-bit row/column positions inside the block, row-wise, in an
//!   array called an *s²-blockarray*;
//! * **levels ≥ 1** store, in the same blockarray form, *pointers* to the
//!   non-empty blockarrays one level below, plus a parallel *lengths
//!   vector* giving the number of entries of each child blockarray.
//!
//! The crate provides the host-side structure ([`HismMatrix`]), the builder
//! from/into COO, the software reference transposition (the per-level
//! coordinate swap of the paper's Section III), storage accounting
//! ([`stats`]), an SpMV reference, and — crucially for the simulator — the
//! flat 32-bit-word *memory image* ([`image`]) the vector-processor kernels
//! operate on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod error;
pub mod faults;
pub mod image;
pub mod iter;
pub mod matrix;
pub mod ops;
pub mod spmv;
pub mod stats;
pub mod transpose;

pub use error::ImageError;
pub use faults::{FaultClass, FaultRecord};
pub use image::{HismImage, RootDesc};
pub use matrix::{BlockData, HismBlock, HismMatrix, LeafEntry, NodeEntry};
pub use stats::StorageStats;

/// The default section size used throughout the paper's evaluation.
pub const DEFAULT_SECTION_SIZE: usize = 64;
