//! Deterministic fault injection for HiSM memory images.
//!
//! The STM walks raw memory images, so a single corrupted word is all it
//! takes to send a hardware walker out of bounds. This module produces
//! exactly such corruptions on demand — seeded, reproducible, one fault
//! per call — so the decoding and kernel layers can prove they degrade
//! into typed errors ([`crate::ImageError`], kernel-level errors) instead
//! of panicking or silently returning a wrong answer.
//!
//! The paper's hardware has no fault model; this layer is a deliberate
//! deviation for robustness testing (DESIGN.md, "Error taxonomy & fault
//! injection").

use crate::image::{pack_pos, HismImage};
use std::fmt;
use stm_sparse::rng::StdRng;

/// The classes of corruption the injector can apply to an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Flip one random bit of one random image word.
    BitFlip,
    /// Retarget a child pointer past the end of the image.
    PointerRetarget,
    /// Replace a lengths-vector word with a runaway entry count.
    LengthCorruption,
    /// Drop words from the end of the image (the root lives there).
    Truncate,
    /// Overwrite a position word with coordinates outside the block.
    PosGarbage,
    /// Flip one bit of one leaf *value* word, then re-seal the integrity
    /// header — modelling corruption at the data's source, before
    /// checksumming. Structure, positions, and checksums all stay valid,
    /// so the fault is type-silent by construction: only comparing output
    /// digests can catch it.
    ValueCorruption,
    /// Flip a seeded bit of a value word in *simulated memory* after a
    /// configured cycle count, mid-run. Not an image mutation — the
    /// vector-processor engine hosts it (`stm_vpsim::MidRunFlip`), so
    /// [`inject`] reports it unsupported; kernel adapters arm it on the
    /// engine instead. Deliberately outside [`FaultClass::ALL`]: the
    /// pre-run sweeps cannot host it.
    MidRunBitFlip,
}

impl FaultClass {
    /// Every *pre-run image* fault class, in canonical order (sweep tests
    /// and chaos draws iterate this). [`FaultClass::MidRunBitFlip`] is
    /// excluded: it corrupts simulated memory mid-run, not the image.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::BitFlip,
        FaultClass::PointerRetarget,
        FaultClass::LengthCorruption,
        FaultClass::Truncate,
        FaultClass::PosGarbage,
        FaultClass::ValueCorruption,
    ];

    /// Stable name, usable on a command line.
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::BitFlip => "bit_flip",
            FaultClass::PointerRetarget => "pointer_retarget",
            FaultClass::LengthCorruption => "length_corruption",
            FaultClass::Truncate => "truncate",
            FaultClass::PosGarbage => "pos_garbage",
            FaultClass::ValueCorruption => "value_corruption",
            FaultClass::MidRunBitFlip => "mid_run_bit_flip",
        }
    }

    /// Parses a [`FaultClass::name`] back into the class.
    pub fn from_name(name: &str) -> Option<FaultClass> {
        Self::ALL
            .into_iter()
            .chain([FaultClass::MidRunBitFlip])
            .find(|c| c.name() == name)
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What one [`inject`] call actually did to the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The class that was applied.
    pub class: FaultClass,
    /// The corrupted word address, when the fault targets one word
    /// (`None` for truncation).
    pub word: Option<u32>,
    /// Human-readable description of the mutation.
    pub detail: String,
}

/// Applies one fault of `class` to `image`, deterministically derived
/// from `seed`. Returns `None` when the image cannot host the fault
/// (e.g. pointer faults on a single-level image, any fault on an empty
/// image) — callers treat that as "fault unsupported here", not an error.
pub fn inject(image: &mut HismImage, class: FaultClass, seed: u64) -> Option<FaultRecord> {
    let mut r = StdRng::seed_from_u64(seed ^ 0x5712_fa17_0000 ^ class.name().len() as u64);
    let n = image.words.len();
    if n == 0 {
        return None;
    }
    match class {
        FaultClass::BitFlip => {
            let w = r.gen_range(0..n) as u32;
            let bit = (r.next_u64() % 32) as u32;
            image.words[w as usize] ^= 1 << bit;
            Some(FaultRecord {
                class,
                word: Some(w),
                detail: format!("flipped bit {bit} of word {w}"),
            })
        }
        FaultClass::PointerRetarget => {
            if image.pointer_sites.is_empty() {
                return None;
            }
            let site = image.pointer_sites[r.gen_range(0..image.pointer_sites.len())];
            let target = n as u32 + 1 + (r.next_u64() % 4096) as u32;
            image.words[site as usize] = target;
            Some(FaultRecord {
                class,
                word: Some(site),
                detail: format!("pointer at word {site} retargeted to {target} (image: {n} words)"),
            })
        }
        FaultClass::LengthCorruption => {
            if image.root.levels < 2 {
                return None;
            }
            // The root is a node blockarray: its lengths vector sits right
            // after its 2*len entry words.
            let k = r.gen_range(0..image.root.len.max(1) as usize) as u32;
            let w = image.root.addr + 2 * image.root.len + k;
            let bogus = n as u32 + 17 + (r.next_u64() % 4096) as u32;
            image.words[w as usize] = bogus;
            Some(FaultRecord {
                class,
                word: Some(w),
                detail: format!("root lengths[{k}] at word {w} set to {bogus}"),
            })
        }
        FaultClass::Truncate => {
            // The root blockarray is last, so any truncation amputates it.
            let cut = 1 + (r.next_u64() as usize % n.min(8));
            image.words.truncate(n - cut);
            Some(FaultRecord {
                class,
                word: None,
                detail: format!("truncated {cut} of {n} words"),
            })
        }
        FaultClass::PosGarbage => {
            if image.root.s >= 256 {
                return None; // every 8-bit coordinate is in range at s=256
            }
            // Post-order layout ⇒ the block at word 0 is a leaf whenever
            // the matrix is non-empty, so word 1 is a position word.
            let w = 1u32;
            image.words[w as usize] = pack_pos(255, 255);
            Some(FaultRecord {
                class,
                word: Some(w),
                detail: format!("position word {w} set to (255,255), s={}", image.root.s),
            })
        }
        FaultClass::ValueCorruption => inject_value_corruption(image, |_, _, v| v.abs() as f64),
        // Mid-run memory corruption is hosted by the simulator engine,
        // not by image mutation.
        FaultClass::MidRunBitFlip => None,
    }
}

/// Weighted [`FaultClass::ValueCorruption`]: flips the *sign* bit of the
/// nonzero value site maximizing `weight(row, col, value)`, then re-seals
/// the integrity header. Sign-negating a dominant term is the one value
/// corruption that can never round away inside an f32 accumulation, so
/// callers pick the weight that models their downstream computation —
/// `|v|` for transposes (any value word lands raw in the output),
/// `|v · x[col]|` for SpMV (the term must actually feed `y`). Returns
/// `None` when no site has positive weight: every candidate is dead for
/// that computation and the class is unsupported there.
pub fn inject_value_corruption(
    image: &mut HismImage,
    weight: impl Fn(u64, u64, f32) -> f64,
) -> Option<FaultRecord> {
    let sites = image.value_sites_detailed().ok()?;
    let (site, _) = sites
        .iter()
        .map(|s| (s, weight(s.row, s.col, s.value)))
        .filter(|&(s, w)| s.value != 0.0 && w > 0.0 && w.is_finite())
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                // Deterministic tie-break: lowest word address wins.
                .then(b.0.addr.cmp(&a.0.addr))
        })?;
    let site = *site;
    image.words[site.addr as usize] ^= 1 << 31;
    // Re-seal: the corruption happened "before" checksumming, so every
    // structural and integrity check passes — only a digest comparison
    // against an independent execution can see it.
    image.seal_integrity();
    Some(FaultRecord {
        class: FaultClass::ValueCorruption,
        word: Some(site.addr),
        detail: format!(
            "sign-flipped value {} at ({}, {}), word {} (header re-sealed)",
            site.value, site.row, site.col, site.addr
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use stm_sparse::gen;

    fn image(levels_big: bool) -> HismImage {
        let coo = if levels_big {
            gen::random::uniform(50, 50, 200, 7) // 2 levels at s=8
        } else {
            gen::random::uniform(8, 8, 20, 7) // 1 level at s=8
        };
        HismImage::encode(&build::from_coo(&coo, 8).unwrap())
    }

    #[test]
    fn class_names_round_trip() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(c.name()), Some(c));
        }
        assert_eq!(FaultClass::from_name("nonsense"), None);
    }

    #[test]
    fn injection_is_deterministic() {
        for class in FaultClass::ALL {
            let mut a = image(true);
            let mut b = image(true);
            let ra = inject(&mut a, class, 42);
            let rb = inject(&mut b, class, 42);
            assert_eq!(ra, rb, "{class}");
            assert_eq!(a.words, b.words, "{class}");
        }
    }

    #[test]
    fn different_seeds_differ_for_random_classes() {
        let mut a = image(true);
        let mut b = image(true);
        inject(&mut a, FaultClass::BitFlip, 1).unwrap();
        inject(&mut b, FaultClass::BitFlip, 2).unwrap();
        assert_ne!(a.words, b.words);
    }

    #[test]
    fn every_class_mutates_a_two_level_image() {
        for class in FaultClass::ALL {
            let clean = image(true);
            let mut faulty = clean.clone();
            let rec = inject(&mut faulty, class, 7).unwrap_or_else(|| panic!("{class}"));
            assert_eq!(rec.class, class);
            assert_ne!(clean.words, faulty.words, "{class} left the image intact");
        }
    }

    #[test]
    fn structural_faults_are_unsupported_on_single_level_images() {
        let mut img = image(false);
        assert!(inject(&mut img, FaultClass::PointerRetarget, 3).is_none());
        assert!(inject(&mut img, FaultClass::LengthCorruption, 3).is_none());
        // Value-level faults still apply.
        assert!(inject(&mut img, FaultClass::BitFlip, 3).is_some());
        assert!(inject(&mut img, FaultClass::PosGarbage, 3).is_some());
        assert!(inject(&mut img, FaultClass::Truncate, 3).is_some());
    }

    #[test]
    fn empty_images_host_no_faults() {
        let mut img = HismImage::encode(&build::from_coo(&stm_sparse::Coo::new(8, 8), 8).unwrap());
        for class in FaultClass::ALL {
            assert!(inject(&mut img, class, 1).is_none(), "{class}");
        }
    }

    #[test]
    fn structural_faults_break_decode_with_typed_errors() {
        use crate::error::ImageError;
        for class in [
            FaultClass::PointerRetarget,
            FaultClass::LengthCorruption,
            FaultClass::Truncate,
            FaultClass::PosGarbage,
        ] {
            let mut img = image(true);
            inject(&mut img, class, 11).unwrap();
            let err = img.decode().expect_err(&format!("{class} not detected"));
            // Since images are sealed at encode time, the checksum check
            // may fire before the structural one — both are typed.
            match (class, &err) {
                (_, ImageError::Integrity { .. })
                | (FaultClass::PointerRetarget, ImageError::OutOfBounds { .. })
                | (FaultClass::PointerRetarget, ImageError::BadPosition { .. })
                | (FaultClass::LengthCorruption, ImageError::Runaway { .. })
                | (FaultClass::LengthCorruption, ImageError::OutOfBounds { .. })
                | (FaultClass::Truncate, ImageError::OutOfBounds { .. })
                | (FaultClass::PosGarbage, ImageError::BadPosition { .. }) => {}
                other => panic!("unexpected error for {class}: {other:?}"),
            }
        }
    }

    #[test]
    fn value_corruption_is_type_silent() {
        for big in [false, true] {
            let clean = image(big);
            let mut faulty = clean.clone();
            let rec = inject(&mut faulty, FaultClass::ValueCorruption, 9).unwrap();
            assert_ne!(clean.words, faulty.words);
            // Every typed check passes: checksums were re-sealed and the
            // structure is untouched...
            assert_eq!(faulty.verify_integrity(), Ok(true));
            let decoded = faulty.decode().expect("must decode cleanly");
            decoded.validate().expect("must validate cleanly");
            // ...but the content differs: the flipped value word is live.
            let w = rec.word.unwrap() as usize;
            assert!(clean.value_sites().unwrap().contains(&(w as u32)));
            assert_ne!(
                crate::build::to_coo(&decoded),
                crate::build::to_coo(&clean.decode().unwrap())
            );
        }
    }

    #[test]
    fn mid_run_bit_flip_is_not_an_image_fault() {
        let mut img = image(true);
        let before = img.clone();
        assert!(inject(&mut img, FaultClass::MidRunBitFlip, 5).is_none());
        assert_eq!(img, before);
        // ...but it still round-trips by name for command lines.
        assert_eq!(
            FaultClass::from_name("mid_run_bit_flip"),
            Some(FaultClass::MidRunBitFlip)
        );
    }
}
