//! Sparse matrix–vector multiplication over HiSM.
//!
//! The HiSM format was originally introduced (paper reference \[5\]) for
//! SpMV; the STM paper argues the format pays off for *other* operations
//! too. This software SpMV exercises the hierarchical traversal end to end
//! and powers the domain examples (PageRank, BiCG), where transposition
//! and multiplication are combined.

use crate::matrix::{BlockData, HismMatrix};
use stm_sparse::{FormatError, Value};

/// Computes `y = A * x` over the hierarchical structure.
pub fn spmv(h: &HismMatrix, x: &[Value]) -> Result<Vec<Value>, FormatError> {
    if x.len() != h.cols() {
        return Err(FormatError::ShapeMismatch {
            expected: (h.cols(), 1),
            found: (x.len(), 1),
        });
    }
    let mut y = vec![0.0; h.rows()];
    walk(h, h.root(), h.levels() - 1, (0, 0), x, &mut y);
    Ok(y)
}

fn walk(
    h: &HismMatrix,
    block: usize,
    level: usize,
    origin: (usize, usize),
    x: &[Value],
    y: &mut [Value],
) {
    let step = h.section_size().pow(level as u32);
    match &h.blocks()[block].data {
        BlockData::Leaf(entries) => {
            for e in entries {
                let (r, c) = (origin.0 + e.row as usize, origin.1 + e.col as usize);
                // Padding cells never hold entries, but guard anyway: the
                // logical matrix may be smaller than the padded square.
                if r < y.len() && c < x.len() {
                    y[r] += e.value * x[c];
                }
            }
        }
        BlockData::Node(entries) => {
            for e in entries {
                let child_origin = (
                    origin.0 + e.row as usize * step,
                    origin.1 + e.col as usize * step,
                );
                walk(h, e.child, level - 1, child_origin, x, y);
            }
        }
    }
}

/// Computes `y = Aᵀ * x` by multiplying with the software-transposed
/// matrix — convenience for the iterative-solver examples.
pub fn spmv_transposed(h: &HismMatrix, x: &[Value]) -> Result<Vec<Value>, FormatError> {
    spmv(&crate::transpose::transpose(h), x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use stm_sparse::{gen, Coo, Csr};

    #[test]
    fn spmv_matches_csr() {
        let coo = gen::random::uniform(80, 60, 400, 21);
        let h = build::from_coo(&coo, 8).unwrap();
        let csr = Csr::from_coo(&coo);
        let x: Vec<f32> = (0..60).map(|i| (i as f32 * 0.37).sin()).collect();
        let yh = spmv(&h, &x).unwrap();
        let yc = csr.spmv(&x).unwrap();
        for (a, b) in yh.iter().zip(&yc) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn spmv_transposed_matches_explicit_transpose() {
        let coo = gen::structured::grid2d_5pt(9, 7);
        let h = build::from_coo(&coo, 8).unwrap();
        let x: Vec<f32> = (0..63).map(|i| i as f32 % 5.0 - 2.0).collect();
        let a = spmv_transposed(&h, &x).unwrap();
        let b = Csr::from_coo(&coo.transpose_canonical()).spmv(&x).unwrap();
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn spmv_rejects_bad_length() {
        let h = build::from_coo(&Coo::new(4, 4), 4).unwrap();
        assert!(spmv(&h, &[1.0]).is_err());
    }

    #[test]
    fn empty_matrix_gives_zero_vector() {
        let h = build::from_coo(&Coo::new(3, 3), 4).unwrap();
        assert_eq!(spmv(&h, &[1.0, 2.0, 3.0]).unwrap(), vec![0.0; 3]);
    }
}
