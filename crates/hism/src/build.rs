//! Building HiSM matrices from COO and flattening them back.

use crate::matrix::{BlockData, HismBlock, HismMatrix, LeafEntry, NodeEntry};
use stm_sparse::{Coo, FormatError};

/// Number of hierarchy levels for an `rows x cols` matrix at section size
/// `s`: `q = max(⌈log_s rows⌉, ⌈log_s cols⌉)`, at least 1 (the paper pads
/// the matrix with zeros to `s^q x s^q`).
pub fn levels_for(rows: usize, cols: usize, s: usize) -> usize {
    assert!(s >= 2);
    let dim = rows.max(cols).max(1);
    let mut q = 1usize;
    let mut span = s;
    while span < dim {
        span *= s;
        q += 1;
    }
    q
}

/// Builds a HiSM matrix from a COO matrix with section size `s`
/// (2 ..= 256, since in-block positions are stored in 8 bits).
///
/// The input is canonicalized first (duplicates summed, zeros dropped).
/// Children are emitted into the arena before their parents (post-order),
/// so the root is always the last block — the same order the memory-image
/// serializer uses.
///
/// ```
/// use stm_sparse::Coo;
/// let coo = Coo::from_triplets(100, 100, vec![(0, 0, 1.0), (99, 99, 2.0)]).unwrap();
/// let h = stm_hism::build::from_coo(&coo, 64).unwrap();
/// assert_eq!(h.levels(), 2);          // 100 > 64 → two levels
/// assert_eq!(h.get(99, 99), Some(2.0));
/// assert_eq!(stm_hism::build::to_coo(&h), coo);
/// ```
pub fn from_coo(coo: &Coo, s: usize) -> Result<HismMatrix, FormatError> {
    if !(2..=256).contains(&s) {
        return Err(FormatError::Parse(format!(
            "section size {s} outside the supported 2..=256 range"
        )));
    }
    let mut canon = coo.clone();
    canon.canonicalize();
    // Entries outside the declared shape would silently truncate when the
    // in-block coordinates are narrowed to 8 bits below — reject them here
    // with the typed bounds error instead.
    canon.validate(false)?;
    let (rows, cols) = canon.shape();
    let levels = levels_for(rows, cols, s);
    let mut blocks: Vec<HismBlock> = Vec::new();
    let entries = canon.entries();
    let root = build_block(entries, levels - 1, (0, 0), s, &mut blocks);
    let nnz = canon.nnz();
    let m = HismMatrix {
        s,
        rows,
        cols,
        levels,
        blocks,
        root,
        nnz,
    };
    debug_assert_eq!(m.validate(), Ok(()));
    Ok(m)
}

/// Recursively builds the block at `level` covering the `s^(level+1)` -wide
/// square at `origin`, from row-major-sorted triplets. Returns the arena
/// index. An empty triplet slice still creates the (empty) block when it is
/// the root, so that empty matrices are representable.
fn build_block(
    entries: &[(usize, usize, f32)],
    level: usize,
    origin: (usize, usize),
    s: usize,
    arena: &mut Vec<HismBlock>,
) -> usize {
    if level == 0 {
        let mut leaf: Vec<LeafEntry> = entries
            .iter()
            .map(|&(r, c, v)| LeafEntry {
                row: (r - origin.0) as u8,
                col: (c - origin.1) as u8,
                value: v,
            })
            .collect();
        leaf.sort_by_key(|e| (e.row, e.col));
        arena.push(HismBlock {
            level: 0,
            data: BlockData::Leaf(leaf),
        });
        return arena.len() - 1;
    }
    let step = s.pow(level as u32);
    // Group triplets by their in-block coordinate at this level: tag each
    // with its key, sort by key (O(z log z)), and split into runs —
    // avoids a per-entry linear scan over the occupied-block list.
    // Triplets tagged with their in-block coordinate key.
    type Tagged = ((u8, u8), (usize, usize, f32));
    let mut tagged: Vec<Tagged> = entries
        .iter()
        .map(|&(r, c, v)| {
            (
                (((r - origin.0) / step) as u8, ((c - origin.1) / step) as u8),
                (r, c, v),
            )
        })
        .collect();
    tagged.sort_by_key(|&(key, (r, c, _))| (key, r, c));
    let mut node: Vec<NodeEntry> = Vec::new();
    let mut i = 0usize;
    while i < tagged.len() {
        let key = tagged[i].0;
        let mut j = i;
        while j < tagged.len() && tagged[j].0 == key {
            j += 1;
        }
        let bucket: Vec<(usize, usize, f32)> = tagged[i..j].iter().map(|&(_, e)| e).collect();
        let (br, bc) = key;
        let child_origin = (origin.0 + br as usize * step, origin.1 + bc as usize * step);
        let child = build_block(&bucket, level - 1, child_origin, s, arena);
        node.push(NodeEntry {
            row: br,
            col: bc,
            child,
        });
        i = j;
    }
    arena.push(HismBlock {
        level,
        data: BlockData::Node(node),
    });
    arena.len() - 1
}

/// Flattens a HiSM matrix back to canonical COO.
pub fn to_coo(h: &HismMatrix) -> Coo {
    let mut coo = Coo::new(h.rows(), h.cols());
    collect(h, h.root(), h.levels() - 1, (0, 0), &mut coo);
    coo.canonicalize();
    coo
}

fn collect(h: &HismMatrix, block: usize, level: usize, origin: (usize, usize), out: &mut Coo) {
    let step = h.section_size().pow(level as u32);
    match &h.blocks()[block].data {
        BlockData::Leaf(entries) => {
            for e in entries {
                out.push(
                    origin.0 + e.row as usize,
                    origin.1 + e.col as usize,
                    e.value,
                );
            }
        }
        BlockData::Node(entries) => {
            for e in entries {
                let child_origin = (
                    origin.0 + e.row as usize * step,
                    origin.1 + e.col as usize * step,
                );
                collect(h, e.child, level - 1, child_origin, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_sparse::gen;

    #[test]
    fn levels_formula_matches_paper() {
        // s=64: up to 64 → 1 level; up to 4096 → 2; up to 262144 → 3.
        assert_eq!(levels_for(64, 64, 64), 1);
        assert_eq!(levels_for(65, 1, 64), 2);
        assert_eq!(levels_for(4096, 4096, 64), 2);
        assert_eq!(levels_for(4097, 1, 64), 3);
        assert_eq!(levels_for(1, 1, 64), 1);
    }

    #[test]
    fn round_trip_small() {
        let coo = Coo::from_triplets(7, 13, vec![(0, 12, 1.0), (6, 0, 2.0), (3, 3, 3.0)]).unwrap();
        let h = from_coo(&coo, 4).unwrap();
        h.validate().unwrap();
        let mut orig = coo;
        orig.canonicalize();
        assert_eq!(to_coo(&h), orig);
    }

    #[test]
    fn round_trip_generator_families() {
        for (i, coo) in [
            gen::structured::tridiagonal(200),
            gen::random::uniform(150, 150, 900, 5),
            gen::blocks::block_dense(128, 16, 6, 0.8, 6),
            gen::rmat::rmat(7, 500, gen::rmat::RmatProbs::default(), 7),
        ]
        .into_iter()
        .enumerate()
        {
            for s in [4usize, 8, 64] {
                let h = from_coo(&coo, s).unwrap();
                h.validate().unwrap();
                let mut orig = coo.clone();
                orig.canonicalize();
                assert_eq!(to_coo(&h), orig, "family {i}, s={s}");
            }
        }
    }

    #[test]
    fn empty_matrix_is_representable() {
        let h = from_coo(&Coo::new(100, 100), 8).unwrap();
        assert_eq!(h.nnz(), 0);
        assert_eq!(to_coo(&h).nnz(), 0);
        h.validate().unwrap();
    }

    #[test]
    fn single_level_when_matrix_fits_one_block() {
        let coo = Coo::from_triplets(5, 5, vec![(4, 4, 1.0)]).unwrap();
        let h = from_coo(&coo, 8).unwrap();
        assert_eq!(h.levels(), 1);
        assert_eq!(h.blocks().len(), 1);
    }

    #[test]
    fn rejects_oversized_section() {
        assert!(from_coo(&Coo::new(2, 2), 512).is_err());
        assert!(from_coo(&Coo::new(2, 2), 1).is_err());
    }

    #[test]
    fn builder_revalidates_entry_bounds() {
        // `Coo::push` asserts bounds at insertion, so every in-API COO
        // passes; the builder still revalidates so no future unchecked
        // constructor can smuggle out-of-shape coordinates into the 8-bit
        // narrowing of `build_block`.
        let coo = Coo::from_triplets(10, 10, vec![(9, 9, 1.0)]).unwrap();
        assert!(from_coo(&coo, 8).is_ok());
    }

    #[test]
    fn post_order_children_before_parents() {
        let coo = gen::random::uniform(100, 100, 300, 1);
        let h = from_coo(&coo, 8).unwrap();
        for (i, b) in h.blocks().iter().enumerate() {
            if let BlockData::Node(v) = &b.data {
                for e in v {
                    assert!(e.child < i, "child after parent");
                }
            }
        }
        assert_eq!(h.root(), h.blocks().len() - 1);
    }

    #[test]
    fn three_level_hierarchy() {
        // s=4, dim 70 → q=3 (4^2=16 < 70 <= 64? no: 4^3 = 64 < 70 → q=4).
        assert_eq!(levels_for(70, 70, 4), 4);
        let coo = Coo::from_triplets(70, 70, vec![(69, 69, 1.0), (0, 0, 2.0)]).unwrap();
        let h = from_coo(&coo, 4).unwrap();
        assert_eq!(h.levels(), 4);
        assert_eq!(h.get(69, 69), Some(1.0));
        let mut orig = coo;
        orig.canonicalize();
        assert_eq!(to_coo(&h), orig);
    }
}
