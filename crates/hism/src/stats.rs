//! Storage accounting for HiSM, validating the paper's two storage claims:
//!
//! 1. a level-0 entry needs only 8+8 position bits next to its 32-bit
//!    value (48 bits), versus "at least a 32-bit entry … for each non-zero"
//!    in CRS-like formats (Section II);
//! 2. the upper hierarchy levels amount "typically to about 2–5% of the
//!    total matrix storage for s = 64" (Section IV-A).

use crate::matrix::{BlockData, HismMatrix};

/// Bit-level storage breakdown of one HiSM matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Bits of level-0 blockarrays: 32 (value) + 16 (positions) per entry.
    pub leaf_bits: u64,
    /// Bits of level ≥ 1 blockarrays: 32 (pointer) + 16 (positions) per
    /// entry, plus the 32-bit lengths-vector word per entry.
    pub upper_bits: u64,
    /// Number of hierarchy levels.
    pub levels: usize,
}

/// Bits per leaf entry in the paper's packing (32-bit value + two 8-bit
/// positions).
pub const LEAF_ENTRY_BITS: u64 = 32 + 8 + 8;
/// Bits per upper-level entry (32-bit pointer + two 8-bit positions +
/// 32-bit length word).
pub const NODE_ENTRY_BITS: u64 = 32 + 8 + 8 + 32;

impl StorageStats {
    /// Computes the breakdown.
    pub fn compute(h: &HismMatrix) -> Self {
        let mut leaf_bits = 0u64;
        let mut upper_bits = 0u64;
        for b in h.blocks() {
            match &b.data {
                BlockData::Leaf(v) => leaf_bits += LEAF_ENTRY_BITS * v.len() as u64,
                BlockData::Node(v) => upper_bits += NODE_ENTRY_BITS * v.len() as u64,
            }
        }
        StorageStats {
            leaf_bits,
            upper_bits,
            levels: h.levels(),
        }
    }

    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.leaf_bits + self.upper_bits
    }

    /// Fraction of storage spent on the upper levels — the paper's
    /// "2–5%" quantity.
    pub fn upper_fraction(&self) -> f64 {
        if self.total_bits() == 0 {
            0.0
        } else {
            self.upper_bits as f64 / self.total_bits() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use stm_sparse::{gen, Csr};

    #[test]
    fn single_level_matrix_has_no_upper_storage() {
        let coo = gen::structured::tridiagonal(60);
        let h = build::from_coo(&coo, 64).unwrap();
        let st = StorageStats::compute(&h);
        assert_eq!(st.upper_bits, 0);
        assert_eq!(st.leaf_bits, LEAF_ENTRY_BITS * coo.nnz() as u64);
    }

    #[test]
    fn storage_overhead_of_upper_levels_is_small_at_s64() {
        // The paper: ~2-5% for s=64 on typical matrices. A 2000x2000
        // stencil matrix at s=64 has 2 levels; every 64x64 diagonal block
        // is non-empty, so upper entries ≈ blocks ≈ nnz/avg_fill.
        let coo = gen::structured::grid2d_5pt(45, 45); // 2025 rows
        let h = build::from_coo(&coo, 64).unwrap();
        assert_eq!(h.levels(), 2);
        let st = StorageStats::compute(&h);
        let f = st.upper_fraction();
        assert!(f > 0.0 && f < 0.06, "upper fraction = {f}");
    }

    #[test]
    fn hism_beats_crs_storage_on_typical_matrices() {
        // Section II: HiSM stores 16 position bits/entry vs CRS's 32-bit
        // column index + row pointers.
        let coo = gen::random::uniform(1000, 1000, 15000, 3);
        let h = build::from_coo(&coo, 64).unwrap();
        let csr = Csr::from_coo(&coo);
        let hism_bits = StorageStats::compute(&h).total_bits();
        assert!(
            hism_bits < csr.storage_bits(),
            "HiSM {hism_bits} vs CRS {}",
            csr.storage_bits()
        );
    }

    #[test]
    fn empty_matrix_stats() {
        let h = build::from_coo(&stm_sparse::Coo::new(10, 10), 8).unwrap();
        let st = StorageStats::compute(&h);
        assert_eq!(st.total_bits(), 0);
        assert_eq!(st.upper_fraction(), 0.0);
    }
}
