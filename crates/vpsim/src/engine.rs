//! The vector execution engine: functional semantics + per-element timing.
//!
//! Kernels are ordinary Rust functions that call the `v_*` methods below —
//! the embedded equivalent of the paper's hand-coded vector assembly. Each
//! call (1) performs the real data movement on [`Memory`] and (2) computes
//! per-element completion times, respecting functional-unit occupancy and
//! vector chaining. The engine's final cycle count is the time the last
//! element of the last instruction completes.

use crate::config::{MidRunFlip, VpConfig};
use crate::mem::Memory;
use crate::stats::{EngineStats, StallBreakdown, StallCauses};
use crate::timing::{TimingKind, TimingModel};
use crate::trace::{FuBusy, Trace, TraceEvent};
use stm_obs::{Category, Lane, Recorder};

/// Typed abort payload: the engine exceeded its configured cycle budget
/// ([`VpConfig::cycle_budget`]).
///
/// The engine aborts by unwinding with this struct as the panic payload
/// (via `std::panic::panic_any`), so a harness that `catch_unwind`s a
/// kernel can downcast the payload and report a typed deadline error
/// instead of a generic panic. The check runs at every watchdog point —
/// instruction issue, serial phases, STM stalls — so a runaway kernel is
/// stopped within one instruction of crossing the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded {
    /// The configured budget in cycles.
    pub budget: u64,
    /// The simulated cycle count at the watchdog point that fired.
    pub cycles: u64,
}

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle budget exceeded: {} cycles > budget {}",
            self.cycles, self.budget
        )
    }
}

/// Why the in-order front end was not issuing during an interval (the
/// engine-wide stall timeline consumed by per-port gap attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallKind {
    /// Waiting for a busy functional-unit port to free.
    Port,
    /// Blocked on an STM barrier (`Engine::stall_until`).
    Stm,
    /// Executing scalar/control code (loop overhead, serial phases).
    Scalar,
}

/// Per-port stall accounting state: the running bucket totals plus the
/// gap-attribution cursor into the engine-wide stall timeline.
#[derive(Debug, Clone, Copy, Default)]
struct PortAcct {
    busy: u64,
    chain_wait: u64,
    port_wait: u64,
    stm_wait: u64,
    scalar_wait: u64,
    /// End of this port's latest occupancy interval.
    last_end: u64,
    /// First stall interval that may still overlap a future gap.
    cursor: usize,
}

impl PortAcct {
    /// Attributes the idle gap `[self.last_end, gap_end)` to the stall
    /// intervals overlapping it. Intervals are sorted and disjoint (the
    /// issue clock is monotone), so a cursor walks them once per port;
    /// it never advances past an interval that could extend into a
    /// later gap. Gap time no interval covers is left for the `idle`
    /// bucket (computed as the remainder in [`Engine::stall_breakdown`]).
    fn attribute_gap(&mut self, intervals: &[(u64, u64, StallKind)], gap_end: u64) {
        let gap_start = self.last_end;
        while self.cursor < intervals.len() && intervals[self.cursor].1 <= gap_start {
            self.cursor += 1;
        }
        let mut i = self.cursor;
        while i < intervals.len() && intervals[i].0 < gap_end {
            let (s, e, kind) = intervals[i];
            let lo = s.max(gap_start);
            let hi = e.min(gap_end);
            if hi > lo {
                let d = hi - lo;
                match kind {
                    StallKind::Port => self.port_wait += d,
                    StallKind::Stm => self.stm_wait += d,
                    StallKind::Scalar => self.scalar_wait += d,
                }
            }
            i += 1;
        }
    }

    /// Folds the account into a [`StallCauses`] row over a run of
    /// `total` cycles, attributing the tail gap `[last_end, total)` and
    /// leaving the uncovered remainder as `idle`.
    fn causes(&self, intervals: &[(u64, u64, StallKind)], total: u64) -> StallCauses {
        let mut acct = *self;
        acct.attribute_gap(intervals, total);
        let attributed =
            acct.busy + acct.chain_wait + acct.port_wait + acct.stm_wait + acct.scalar_wait;
        debug_assert!(
            attributed <= total,
            "stall accounting over-attributed: {attributed} > {total}"
        );
        StallCauses {
            busy: acct.busy,
            chain_wait: acct.chain_wait,
            port_wait: acct.port_wait,
            stm_wait: acct.stm_wait,
            scalar_wait: acct.scalar_wait,
            idle: total.saturating_sub(attributed),
        }
    }
}

/// Functional-unit ports of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fu {
    /// The vector load/store unit (one port: contiguous and indexed
    /// accesses serialize against each other, as on real VPs).
    Mem,
    /// The vector ALU.
    Alu,
    /// The Sparse matrix Transposition Mechanism (driven by `stm-core`).
    Stm,
}

/// Cost class of a vector instruction — the single place per-op statistics
/// are accounted (see [`Engine::account`]), instead of each `v_*` method
/// bumping counters by hand.
#[derive(Debug, Clone, Copy)]
enum OpClass {
    /// Contiguous memory stream moving `words` memory words.
    MemContig { words: u64 },
    /// Indexed (gather/scatter) memory stream moving `words` words.
    MemIndexed { words: u64 },
    /// Vector ALU operation.
    Alu,
    /// STM coprocessor operation.
    Stm,
    /// Untyped stream (external callers of [`Engine::run_stream`] on a
    /// unit the engine does not classify): element count only.
    Generic,
}

/// A vector register: element data plus per-element ready times.
///
/// The simulator does not model a named register file — kernels hold
/// `VReg` values directly, which is timing-equivalent as long as the
/// kernel respects the machine's register count (the paper's kernels use
/// two vector registers at a time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VReg {
    /// Element payloads (32-bit words).
    pub data: Vec<u32>,
    /// Cycle at which each element becomes readable (for chaining).
    pub ready: Vec<u64>,
}

impl VReg {
    /// A register whose elements are all available at cycle `at`.
    pub fn ready_at(data: Vec<u32>, at: u64) -> Self {
        let ready = vec![at; data.len()];
        VReg { data, ready }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the register holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Cycle at which the whole register is available.
    pub fn last_ready(&self) -> u64 {
        self.ready.iter().copied().max().unwrap_or(0)
    }

    /// A sub-register view (copy) of elements `range` — what `ssvl` +
    /// register addressing give a strip-mined loop.
    pub fn slice(&self, range: std::ops::Range<usize>) -> VReg {
        VReg {
            data: self.data[range.clone()].to_vec(),
            ready: self.ready[range].to_vec(),
        }
    }

    fn assert_same_len(&self, other: &VReg) {
        assert_eq!(self.len(), other.len(), "vector length mismatch");
    }
}

/// The vector processor engine.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: VpConfig,
    mem: Memory,
    /// Next instruction-issue cycle.
    clock: u64,
    /// Per-memory-port busy-until cycles (the paper's machine has one).
    mem_busy: Vec<u64>,
    /// Busy-until cycles of the ALU and the STM.
    busy: [u64; 2],
    /// Latest completion observed so far.
    horizon: u64,
    stats: EngineStats,
    busy_acct: FuBusy,
    /// Front-end stall timeline: sorted disjoint intervals during which
    /// the issue clock was held back, tagged with the cause.
    stall_intervals: Vec<(u64, u64, StallKind)>,
    /// Per-memory-port stall accounts (parallel to `mem_busy`).
    mem_acct: Vec<PortAcct>,
    /// Stall accounts of the ALU and STM ports.
    fu_acct: [PortAcct; 2],
    trace: Option<Trace>,
    /// The armed-but-not-yet-fired mid-run bit flip, if any (disarmed
    /// once it fires).
    armed_flip: Option<MidRunFlip>,
    /// Structured observability sink (no-op unless a live recorder is
    /// installed via [`Engine::set_recorder`]).
    obs: Recorder,
    /// The timing model completing every instruction (see [`crate::timing`]).
    timing: &'static dyn TimingModel,
}

impl Engine {
    /// Creates an engine over a memory with the given machine config and
    /// the paper's timing model.
    pub fn new(cfg: VpConfig, mem: Memory) -> Self {
        Self::with_timing(cfg, mem, TimingKind::default())
    }

    /// Creates an engine with an explicit timing model. Functional results
    /// are identical across models; only completion times differ.
    pub fn with_timing(cfg: VpConfig, mem: Memory, timing: TimingKind) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let ports = cfg.mem_ports;
        let armed_flip = cfg.mid_run_flip;
        Engine {
            cfg,
            mem,
            clock: 0,
            mem_busy: vec![0; ports],
            busy: [0; 2],
            horizon: 0,
            stats: EngineStats::default(),
            busy_acct: FuBusy::default(),
            stall_intervals: Vec::new(),
            mem_acct: vec![PortAcct::default(); ports],
            fu_acct: [PortAcct::default(); 2],
            trace: None,
            armed_flip,
            obs: Recorder::disabled(),
            timing: timing.model(),
        }
    }

    /// The timing model this engine runs under.
    pub fn timing(&self) -> &'static dyn TimingModel {
        self.timing
    }

    /// Turns on instruction tracing, keeping at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The instruction trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Installs a structured-event recorder: every retired instruction
    /// becomes a `Complete` span on its functional-unit lane, serial
    /// phases land on the scalar lane. A disabled recorder (the default)
    /// records nothing.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.obs = rec;
    }

    /// The installed observability recorder (shared handle).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Per-functional-unit busy-cycle accounting.
    pub fn fu_busy(&self) -> &FuBusy {
        &self.busy_acct
    }

    /// Per-port stall-cause breakdown of the run so far: every port's
    /// cycles split into busy / chaining wait / port-conflict wait /
    /// STM-barrier wait / scalar wait / idle, each row summing exactly
    /// to [`Engine::cycles`]. Purely observational — calling it never
    /// perturbs timing.
    pub fn stall_breakdown(&self) -> StallBreakdown {
        let total = self.cycles();
        StallBreakdown {
            mem: self
                .mem_acct
                .iter()
                .map(|a| a.causes(&self.stall_intervals, total))
                .collect(),
            alu: self.fu_acct[0].causes(&self.stall_intervals, total),
            stm: self.fu_acct[1].causes(&self.stall_intervals, total),
            cycles: total,
        }
    }

    /// Machine configuration.
    pub fn cfg(&self) -> &VpConfig {
        &self.cfg
    }

    /// Shared memory (read access).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Shared memory (write access, e.g. for the scalar core phases).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Consumes the engine, returning the memory (for result decoding).
    pub fn into_mem(self) -> Memory {
        self.mem
    }

    /// Total cycles elapsed: the later of the issue clock and the last
    /// element completion.
    pub fn cycles(&self) -> u64 {
        self.horizon.max(self.clock)
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Run statistics with the guarded-memory OOB event count folded in.
    /// Kernels report this snapshot so corrupted runs expose their fault
    /// activity alongside the timing numbers.
    pub fn stats_snapshot(&self) -> EngineStats {
        EngineStats {
            mem_oob_events: self.mem.oob_events(),
            ..self.stats
        }
    }

    /// The first out-of-bounds access the guarded memory recorded, if any.
    pub fn mem_fault(&self) -> Option<crate::mem::MemFault> {
        self.mem.fault()
    }

    /// Appends `[start, end)` tagged `kind` to the front-end stall
    /// timeline. The issue clock is monotone and every interval ends at
    /// (or before) the post-advance clock, so the timeline stays sorted
    /// and disjoint by construction.
    fn note_stall(&mut self, start: u64, end: u64, kind: StallKind) {
        if end > start {
            debug_assert!(self
                .stall_intervals
                .last()
                .is_none_or(|&(_, e, _)| e <= start));
            self.stall_intervals.push((start, end, kind));
        }
    }

    /// The deadline watchdog: unwinds with a typed [`DeadlineExceeded`]
    /// payload once the run has consumed more cycles than the configured
    /// budget. Called at every point the engine advances its timeline, so
    /// the abort happens within one watchdog interval (one instruction /
    /// one serial phase) of crossing the budget. A no-op without a budget.
    fn check_deadline(&self) {
        if let Some(budget) = self.cfg.cycle_budget {
            let cycles = self.cycles();
            if cycles > budget {
                std::panic::panic_any(DeadlineExceeded { budget, cycles });
            }
        }
    }

    /// Fires the armed mid-run bit flip once the clock has passed its
    /// threshold: a direct XOR into memory with no guard, no fault
    /// record, and no cycle charge — a modelled soft error is silent by
    /// construction. A no-op when nothing is armed (the common case).
    fn maybe_flip(&mut self) {
        if let Some(f) = self.armed_flip {
            if self.cycles() >= f.after_cycle {
                self.armed_flip = None;
                self.mem.corrupt(f.word, 1 << (f.bit & 31));
            }
        }
    }

    /// The combined watchdog run at every timeline advance: fire any due
    /// mid-run fault, then enforce the cycle budget.
    fn watchdog(&mut self) {
        self.maybe_flip();
        self.check_deadline();
    }

    /// Charges scalar loop-control overhead on the issue timeline (it can
    /// overlap in-flight vector work, like scalar code on a decoupled VP).
    pub fn loop_overhead(&mut self) {
        let c = self.timing.scalar_cycles(self.cfg.loop_overhead);
        self.note_stall(self.clock, self.clock + c, StallKind::Scalar);
        self.clock += c;
        self.stats.overhead_cycles += c;
        self.watchdog();
    }

    /// Charges an arbitrary number of scalar cycles on the issue timeline.
    pub fn scalar_cycles(&mut self, cycles: u64) {
        let c = self.timing.scalar_cycles(cycles);
        self.note_stall(self.clock, self.clock + c, StallKind::Scalar);
        self.clock += c;
        self.stats.overhead_cycles += c;
        self.watchdog();
    }

    /// Serializes with a scalar-core phase of `cycles` length: everything
    /// in flight completes, then the scalar phase runs to completion.
    /// (The drain up to `start` is in-flight vector work — ports are
    /// either occupied or idle there — so only the scalar phase itself
    /// lands on the stall timeline.)
    pub fn advance_serial(&mut self, cycles: u64) {
        let c = self.timing.scalar_cycles(cycles);
        let start = self.cycles();
        self.note_stall(start, start + c, StallKind::Scalar);
        self.clock = start + c;
        self.horizon = self.horizon.max(self.clock);
        self.stats.scalar_cycles += c;
        if self.obs.is_enabled() {
            self.obs
                .complete(Lane::Scalar, Category::Scalar, "serial", start, c, 0);
        }
        self.watchdog();
    }

    /// Blocks instruction issue until cycle `t` (used by the STM's
    /// fill-before-read barrier).
    pub fn stall_until(&mut self, t: u64) {
        self.note_stall(self.clock, t, StallKind::Stm);
        self.clock = self.clock.max(t);
        self.watchdog();
    }

    /// Issues an instruction on `fu`: waits for the issue slot and for a
    /// unit port to be free; returns the start cycle and the port taken.
    fn issue(&mut self, fu: Fu) -> (u64, usize) {
        self.watchdog();
        let (port, unit_free) = match fu {
            Fu::Mem => {
                let (port, &busy) = self
                    .mem_busy
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &b)| b)
                    .expect("at least one memory port");
                (port, busy)
            }
            Fu::Alu => (0, self.busy[0]),
            Fu::Stm => (0, self.busy[1]),
        };
        let t = self.clock.max(unit_free);
        // The front end waited for the chosen port itself to free; on
        // every *other* port this interval shows up as port-conflict
        // wait (the chosen port's own gap here is empty).
        self.note_stall(self.clock, t, StallKind::Port);
        self.clock = t + self.timing.issue_cycles(&self.cfg);
        self.stats.instructions += 1;
        (t, port)
    }

    /// The one place per-instruction statistics are charged.
    fn account(&mut self, class: OpClass, elements: u64) {
        self.stats.elements += elements;
        match class {
            OpClass::MemContig { words } => {
                self.stats.mem_contig_ops += 1;
                self.stats.mem_words += words;
            }
            OpClass::MemIndexed { words } => {
                self.stats.mem_indexed_ops += 1;
                self.stats.mem_words += words;
            }
            OpClass::Alu => self.stats.alu_ops += 1,
            OpClass::Stm => self.stats.stm_ops += 1,
            OpClass::Generic => {}
        }
    }

    /// Retires an instruction: updates port occupancy, the horizon, and
    /// both busy accountings. `unconstrained_last` is the completion of
    /// the same instruction re-timed without operand constraints (`None`
    /// when the instruction had no chained inputs); the difference
    /// between actual and unconstrained occupancy is charged as
    /// chaining wait.
    fn retire(
        &mut self,
        op: &'static str,
        fu: Fu,
        port: usize,
        issue: u64,
        completion: &[u64],
        unconstrained_last: Option<u64>,
    ) {
        if let Some(&last) = completion.last() {
            let acct = match fu {
                Fu::Mem => &mut self.mem_acct[port],
                Fu::Alu => &mut self.fu_acct[0],
                Fu::Stm => &mut self.fu_acct[1],
            };
            // Attribute the idle gap since this port's previous retire
            // *before* moving its occupancy edge.
            acct.attribute_gap(&self.stall_intervals, issue);
            let occupancy = last + 1 - issue.min(last);
            let pure = unconstrained_last
                .map(|ml| ml + 1 - issue.min(ml))
                .unwrap_or(occupancy)
                .min(occupancy);
            acct.busy += pure;
            acct.chain_wait += occupancy - pure;
            acct.last_end = last + 1;
            match fu {
                Fu::Mem => self.mem_busy[port] = last + 1,
                Fu::Alu => self.busy[0] = last + 1,
                Fu::Stm => self.busy[1] = last + 1,
            }
            self.horizon = self.horizon.max(last + 1);
            self.busy_acct.add(fu, occupancy);
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                op,
                fu,
                issue,
                first_done: completion.first().copied().unwrap_or(issue),
                last_done: completion.last().copied().unwrap_or(issue),
                elements: completion.len(),
            });
        }
        if self.obs.is_enabled() {
            let (lane, cat) = match fu {
                Fu::Mem => (Lane::Mem(port as u8), Category::Mem),
                Fu::Alu => (Lane::Alu, Category::Alu),
                Fu::Stm => (Lane::Stm, Category::Stm),
            };
            let last = completion.last().copied().unwrap_or(issue);
            let dur = (last + 1).saturating_sub(issue);
            self.obs
                .complete(lane, cat, op, issue, dur, completion.len() as u64);
            self.obs.observe("instr.cycles", dur);
        }
    }

    /// Per-element availability of a source operand under the chaining
    /// setting (public for coprocessor crates such as the STM).
    pub fn chained_ready(&self, reg: &VReg) -> Vec<u64> {
        self.chain(reg)
    }

    /// Element-wise max of two operands' availability (two-source chain).
    pub fn chained_ready2(&self, a: &VReg, b: &VReg) -> Vec<u64> {
        self.chain2(a, b)
    }

    /// Runs a *batched* stream on `fu`: the unit accepts one whole group
    /// per cycle (a group being, e.g., one STM buffer transfer), each group
    /// no earlier than its elements' readiness; every element completes
    /// `latency` cycles after its group is accepted. Returns per-element
    /// completion times, flattened in group order.
    pub fn run_batched(
        &mut self,
        op: &'static str,
        fu: Fu,
        startup: u64,
        latency: u64,
        group_sizes: &[usize],
        input_ready: Option<&[u64]>,
    ) -> Vec<u64> {
        let n: usize = group_sizes.iter().sum();
        if let Some(r) = input_ready {
            assert_eq!(r.len(), n, "input_ready length mismatch");
        }
        let (issue, port) = self.issue(fu);
        let done = self
            .timing
            .batched(issue, startup, latency, group_sizes, input_ready);
        let pure_last = input_ready.map(|_| {
            self.timing
                .batched(issue, startup, latency, group_sizes, None)
                .last()
                .copied()
                .unwrap_or(issue)
        });
        self.retire(op, fu, port, issue, &done, pure_last);
        let class = if fu == Fu::Stm {
            OpClass::Stm
        } else {
            OpClass::Generic
        };
        self.account(class, n as u64);
        done
    }

    /// Per-element availability of a source operand under the chaining
    /// setting: with chaining each element forwards individually; without,
    /// the consumer sees every element at the producer's completion.
    fn chain(&self, reg: &VReg) -> Vec<u64> {
        if self.cfg.chaining {
            reg.ready.clone()
        } else {
            vec![reg.last_ready(); reg.len()]
        }
    }

    fn chain2(&self, a: &VReg, b: &VReg) -> Vec<u64> {
        a.assert_same_len(b);
        let (ra, rb) = (self.chain(a), self.chain(b));
        ra.iter().zip(&rb).map(|(x, y)| *x.max(y)).collect()
    }

    /// Generic stream execution on a functional unit — also the hook the
    /// STM coprocessor in `stm-core` uses to time its instructions.
    /// `op` is the mnemonic recorded in the instruction trace.
    #[allow(clippy::too_many_arguments)]
    pub fn run_stream(
        &mut self,
        op: &'static str,
        fu: Fu,
        startup: u64,
        rate: u64,
        latency: u64,
        n: usize,
        input_ready: Option<&[u64]>,
    ) -> Vec<u64> {
        let class = if fu == Fu::Stm {
            OpClass::Stm
        } else {
            OpClass::Generic
        };
        self.exec_stream(
            op,
            fu,
            class,
            startup,
            rate,
            latency,
            n,
            n as u64,
            input_ready,
        )
    }

    /// The single stream funnel every `v_*` instruction goes through:
    /// issue, model-supplied completion times, retirement, and cost
    /// accounting. `elems` is the element count charged to statistics
    /// (it differs from `n` when an instruction streams several memory
    /// words per logical element, e.g. scatter-add).
    #[allow(clippy::too_many_arguments)]
    fn exec_stream(
        &mut self,
        op: &'static str,
        fu: Fu,
        class: OpClass,
        startup: u64,
        rate: u64,
        latency: u64,
        n: usize,
        elems: u64,
        input_ready: Option<&[u64]>,
    ) -> Vec<u64> {
        let (issue, port) = self.issue(fu);
        let done = self
            .timing
            .stream(issue, startup, rate, latency, n, input_ready);
        let pure_last = input_ready.map(|_| {
            self.timing
                .stream(issue, startup, rate, latency, n, None)
                .last()
                .copied()
                .unwrap_or(issue)
        });
        self.retire(op, fu, port, issue, &done, pure_last);
        self.account(class, elems);
        done
    }

    // ------------------------------------------------------------------
    // Vector memory instructions
    // ------------------------------------------------------------------

    /// `v_ld`: contiguous load of `n` one-word elements from `addr`.
    pub fn v_ld(&mut self, addr: u32, n: usize) -> VReg {
        let data = self.mem.read_block(addr, n);
        let rate = self.cfg.contig_rate(1);
        let startup = self.cfg.mem_startup;
        let class = OpClass::MemContig { words: n as u64 };
        let done = self.exec_stream("v_ld", Fu::Mem, class, startup, rate, 0, n, n as u64, None);
        VReg { data, ready: done }
    }

    /// `v_st`: contiguous store of a register to `addr`. Returns the
    /// completion time of the last element.
    pub fn v_st(&mut self, addr: u32, src: &VReg) -> u64 {
        self.mem.write_block(addr, &src.data);
        let rate = self.cfg.contig_rate(1);
        let startup = self.cfg.mem_startup;
        let input = self.chain(src);
        let n = src.len();
        let class = OpClass::MemContig { words: n as u64 };
        let done = self.exec_stream(
            "v_st",
            Fu::Mem,
            class,
            startup,
            rate,
            0,
            n,
            n as u64,
            Some(&input),
        );
        done.last().copied().unwrap_or(0)
    }

    /// `v_ld_strided`: loads `n` one-word elements starting at `addr`
    /// with a constant word stride — the access a *dense* transpose uses
    /// ("addressing a row-wise stored matrix with a stride equal to the
    /// number of rows", paper Section II). Non-unit strides go at the
    /// indexed rate (1 word/cycle), unit stride at the contiguous rate.
    pub fn v_ld_strided(&mut self, addr: u32, stride: u32, n: usize) -> VReg {
        let data: Vec<u32> = (0..n as u32)
            .map(|k| self.mem.read(addr.wrapping_add(k * stride)))
            .collect();
        let words = n as u64;
        let (rate, class) = if stride == 1 {
            (self.cfg.contig_rate(1), OpClass::MemContig { words })
        } else {
            (self.cfg.indexed_rate(1), OpClass::MemIndexed { words })
        };
        let startup = self.cfg.mem_startup;
        let done = self.exec_stream("v_ld_str", Fu::Mem, class, startup, rate, 0, n, words, None);
        VReg { data, ready: done }
    }

    /// `v_ldb`-style paired load: `n` two-word entries `[payload, pos]`
    /// streamed contiguously from `addr` into two registers. The stream
    /// rate honours `VpConfig::words_per_entry`.
    pub fn v_ld_pair(&mut self, addr: u32, n: usize) -> (VReg, VReg) {
        let raw = self.mem.read_block(addr, 2 * n);
        let payload: Vec<u32> = raw.iter().step_by(2).copied().collect();
        let pos: Vec<u32> = raw.iter().skip(1).step_by(2).copied().collect();
        let rate = self.cfg.contig_rate(self.cfg.words_per_entry);
        let startup = self.cfg.mem_startup;
        let class = OpClass::MemContig {
            words: 2 * n as u64,
        };
        let done = self.exec_stream("v_ldb", Fu::Mem, class, startup, rate, 0, n, n as u64, None);
        (
            VReg {
                data: payload,
                ready: done.clone(),
            },
            VReg {
                data: pos,
                ready: done,
            },
        )
    }

    /// `v_stb`-style paired store: writes `[payload, pos]` entries back to
    /// `addr` contiguously, chained on both source registers.
    pub fn v_st_pair(&mut self, addr: u32, payload: &VReg, pos: &VReg) -> u64 {
        payload.assert_same_len(pos);
        let n = payload.len();
        let mut raw = Vec::with_capacity(2 * n);
        for k in 0..n {
            raw.push(payload.data[k]);
            raw.push(pos.data[k]);
        }
        self.mem.write_block(addr, &raw);
        let rate = self.cfg.contig_rate(self.cfg.words_per_entry);
        let startup = self.cfg.mem_startup;
        let input = self.chain2(payload, pos);
        let class = OpClass::MemContig {
            words: 2 * n as u64,
        };
        let done = self.exec_stream(
            "v_stb",
            Fu::Mem,
            class,
            startup,
            rate,
            0,
            n,
            n as u64,
            Some(&input),
        );
        done.last().copied().unwrap_or(0)
    }

    /// `v_ld_idx`: gather — element `i` loads from `base + idx[i]`.
    pub fn v_ld_idx(&mut self, base: u32, idx: &VReg) -> VReg {
        let data: Vec<u32> = idx
            .data
            .iter()
            .map(|&off| self.mem.read(base.wrapping_add(off)))
            .collect();
        let rate = self.cfg.indexed_rate(1);
        let startup = self.cfg.mem_startup;
        let input = self.chain(idx);
        let n = idx.len();
        let class = OpClass::MemIndexed { words: n as u64 };
        let done = self.exec_stream(
            "v_ld_idx",
            Fu::Mem,
            class,
            startup,
            rate,
            0,
            n,
            n as u64,
            Some(&input),
        );
        VReg { data, ready: done }
    }

    /// `v_st_idx`: scatter — element `i` stores `vals[i]` to `base + idx[i]`.
    ///
    /// When two elements of `idx` collide, the later element wins, matching
    /// left-to-right execution of the scalar loop being vectorized.
    pub fn v_st_idx(&mut self, vals: &VReg, base: u32, idx: &VReg) -> u64 {
        vals.assert_same_len(idx);
        for k in 0..vals.len() {
            self.mem.write(base.wrapping_add(idx.data[k]), vals.data[k]);
        }
        let rate = self.cfg.indexed_rate(1);
        let startup = self.cfg.mem_startup;
        let input = self.chain2(vals, idx);
        let n = vals.len();
        let class = OpClass::MemIndexed { words: n as u64 };
        let done = self.exec_stream(
            "v_st_idx",
            Fu::Mem,
            class,
            startup,
            rate,
            0,
            n,
            n as u64,
            Some(&input),
        );
        done.last().copied().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Vector ALU instructions
    // ------------------------------------------------------------------

    /// Shared timing/accounting path of every ALU instruction: `n`
    /// elements at `lanes` per cycle after the ALU pipeline fill.
    fn alu_stream(&mut self, op: &'static str, n: usize, input: Option<&[u64]>) -> Vec<u64> {
        let (startup, rate) = (self.cfg.alu_latency, self.cfg.lanes);
        self.exec_stream(
            op,
            Fu::Alu,
            OpClass::Alu,
            startup,
            rate,
            0,
            n,
            n as u64,
            input,
        )
    }

    fn alu_unop(&mut self, op: &'static str, src: &VReg, f: impl Fn(u32) -> u32) -> VReg {
        let data = src.data.iter().map(|&x| f(x)).collect();
        let input = self.chain(src);
        let done = self.alu_stream(op, src.len(), Some(&input));
        VReg { data, ready: done }
    }

    /// `v_setimm`: broadcast an immediate into an `n`-element register.
    pub fn v_set_imm(&mut self, n: usize, value: u32) -> VReg {
        let done = self.alu_stream("v_setimm", n, None);
        VReg {
            data: vec![value; n],
            ready: done,
        }
    }

    /// `v_iota`: element `i` gets `start + i * step` (index generation).
    pub fn v_iota(&mut self, n: usize, start: u32, step: u32) -> VReg {
        let done = self.alu_stream("v_iota", n, None);
        let data = (0..n as u32)
            .map(|i| start.wrapping_add(i.wrapping_mul(step)))
            .collect();
        VReg { data, ready: done }
    }

    /// `v_add_imm`: adds an immediate to every element (wrapping).
    pub fn v_add_imm(&mut self, src: &VReg, imm: u32) -> VReg {
        self.alu_unop("v_add_imm", src, |x| x.wrapping_add(imm))
    }

    /// `v_sll_imm`: logical left shift by an immediate.
    pub fn v_sll_imm(&mut self, src: &VReg, sh: u32) -> VReg {
        self.alu_unop("v_sll_imm", src, |x| x << sh)
    }

    /// `v_add`: element-wise addition of two registers (wrapping).
    pub fn v_add(&mut self, a: &VReg, b: &VReg) -> VReg {
        a.assert_same_len(b);
        let data = a
            .data
            .iter()
            .zip(&b.data)
            .map(|(x, y)| x.wrapping_add(*y))
            .collect();
        let input = self.chain2(a, b);
        let done = self.alu_stream("v_add", a.len(), Some(&input));
        VReg { data, ready: done }
    }

    /// `v_and_imm`: bitwise AND with an immediate (e.g. extracting the
    /// 8-bit column field of a packed HiSM position word).
    pub fn v_and_imm(&mut self, src: &VReg, mask: u32) -> VReg {
        self.alu_unop("v_and_imm", src, |x| x & mask)
    }

    /// `v_srl_imm`: logical right shift by an immediate (e.g. extracting
    /// the row field of a packed position word).
    pub fn v_srl_imm(&mut self, src: &VReg, sh: u32) -> VReg {
        self.alu_unop("v_srl_imm", src, |x| x >> sh)
    }

    /// `v_fmul`: element-wise IEEE-754 single-precision multiply (the
    /// elements are f32 bit patterns).
    pub fn v_fmul(&mut self, a: &VReg, b: &VReg) -> VReg {
        a.assert_same_len(b);
        let data = a
            .data
            .iter()
            .zip(&b.data)
            .map(|(&x, &y)| (f32::from_bits(x) * f32::from_bits(y)).to_bits())
            .collect();
        let input = self.chain2(a, b);
        let done = self.alu_stream("v_fmul", a.len(), Some(&input));
        VReg { data, ready: done }
    }

    /// `v_fadd`: element-wise single-precision add.
    pub fn v_fadd(&mut self, a: &VReg, b: &VReg) -> VReg {
        a.assert_same_len(b);
        let data = a
            .data
            .iter()
            .zip(&b.data)
            .map(|(&x, &y)| (f32::from_bits(x) + f32::from_bits(y)).to_bits())
            .collect();
        let input = self.chain2(a, b);
        let done = self.alu_stream("v_fadd", a.len(), Some(&input));
        VReg { data, ready: done }
    }

    /// `v_sca_f32`: indexed scatter-*accumulate* — element `i` performs
    /// `mem[base + idx[i]] +=f32 vals[i]`, left to right (so colliding
    /// indices accumulate correctly, like the sequential loop being
    /// vectorized). Each element is a read-modify-write: two words on the
    /// 1-word-per-cycle indexed port, i.e. half the scatter rate.
    pub fn v_scatter_add_f32(&mut self, vals: &VReg, base: u32, idx: &VReg) -> u64 {
        vals.assert_same_len(idx);
        for k in 0..vals.len() {
            let addr = base.wrapping_add(idx.data[k]);
            let acc = f32::from_bits(self.mem.read(addr)) + f32::from_bits(vals.data[k]);
            self.mem.write(addr, acc.to_bits());
        }
        // Two indexed words per element; the model's minimum rate is one
        // element per cycle, so charge the extra word as latency-per-pair
        // by halving throughput: use groups of one element every 2 cycles.
        let startup = self.cfg.mem_startup;
        let input = self.chain2(vals, idx);
        // rate 1 with an extra cycle per element: emulate via run_batched
        // with explicit per-element groups at 1 accept/cycle costs 1; we
        // charge 2 words by running a stream of 2*n "words".
        let n = vals.len();
        let word_ready: Vec<u64> = input.iter().flat_map(|&t| [t, t]).collect();
        let class = OpClass::MemIndexed {
            words: 2 * n as u64,
        };
        let done_words = self.exec_stream(
            "v_sca_f32",
            Fu::Mem,
            class,
            startup,
            self.cfg.mem_indexed_words_per_cycle,
            0,
            2 * n,    // word-slots streamed
            n as u64, // elements charged to statistics
            Some(&word_ready),
        );
        done_words.last().copied().unwrap_or(0)
    }

    /// `v_cmp_eq_imm`: element-wise compare against an immediate,
    /// producing a 0/1 mask register (the mask-vector primitive of the
    /// paper's *rejected* vectorized histogram: "a mask vector `M_i[j]` is
    /// generated, so that `M_i[j] = 1` iff `JA[j] = i`").
    pub fn v_cmp_eq_imm(&mut self, src: &VReg, imm: u32) -> VReg {
        self.alu_unop("v_cmp_eq", src, |x| (x == imm) as u32)
    }

    /// `v_reduce_add`: sums a register into element 0 of a 1-element
    /// result via the log-step slide/add network (charged as
    /// `ceil(log2 n)` chained ALU passes, like the scan).
    pub fn v_reduce_add(&mut self, src: &VReg) -> VReg {
        let mut cur = src.clone();
        let mut k = 1usize;
        while k < cur.len() {
            let shifted = self.v_slide_up(&cur, k, 0);
            cur = self.v_add(&cur, &shifted);
            k *= 2;
        }
        let total = cur.data.last().copied().unwrap_or(0);
        let ready = cur.ready.last().copied().unwrap_or(0);
        VReg {
            data: vec![total],
            ready: vec![ready],
        }
    }

    /// `v_slide_up`: shifts elements towards higher indices by `k`,
    /// filling vacated slots with `fill` — the register-slide primitive
    /// the log-step scan-add (Wang et al. \[11\]) is built from.
    pub fn v_slide_up(&mut self, src: &VReg, k: usize, fill: u32) -> VReg {
        let n = src.len();
        let mut data = vec![fill; n];
        if k < n {
            data[k..n].copy_from_slice(&src.data[..n - k]);
        }
        let input = self.chain(src);
        let done = self.alu_stream("v_slide", n, Some(&input));
        VReg { data, ready: done }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(VpConfig::paper(), Memory::new())
    }

    #[test]
    fn deadline_aborts_with_a_typed_payload() {
        let cfg = VpConfig {
            cycle_budget: Some(40),
            ..VpConfig::paper()
        };
        let caught = std::panic::catch_unwind(move || {
            let mut e = Engine::new(cfg, Memory::new());
            // Each 64-word load is 36 cycles; the second crosses the
            // budget and the third must never issue.
            for _ in 0..100 {
                e.v_ld(0, 64);
            }
        })
        .expect_err("budget must abort the run");
        let d = caught
            .downcast_ref::<DeadlineExceeded>()
            .expect("payload must be the typed DeadlineExceeded");
        assert_eq!(d.budget, 40);
        assert!(d.cycles > 40, "fired before the budget: {}", d.cycles);
        // Within one watchdog interval: one instruction past the budget.
        assert!(d.cycles <= 40 + 36, "fired late: {}", d.cycles);
        assert!(d.to_string().contains("budget 40"), "{d}");
    }

    #[test]
    fn deadline_covers_serial_and_stall_paths() {
        let cfg = VpConfig {
            cycle_budget: Some(10),
            ..VpConfig::paper()
        };
        for op in [
            (|e: &mut Engine| e.advance_serial(100)) as fn(&mut Engine),
            |e| e.scalar_cycles(100),
            |e| e.stall_until(100),
        ] {
            let cfg = cfg.clone();
            let caught = std::panic::catch_unwind(move || op(&mut Engine::new(cfg, Memory::new())))
                .expect_err("serial path must hit the watchdog");
            assert!(caught.downcast_ref::<DeadlineExceeded>().is_some());
        }
    }

    #[test]
    fn generous_deadline_is_cycle_invisible() {
        let mut plain = engine();
        let mut budgeted = Engine::new(
            VpConfig {
                cycle_budget: Some(u64::MAX),
                ..VpConfig::paper()
            },
            Memory::new(),
        );
        for e in [&mut plain, &mut budgeted] {
            e.v_ld(0, 64);
            e.loop_overhead();
            e.v_ld(64, 64);
        }
        assert_eq!(plain.cycles(), budgeted.cycles());
    }

    #[test]
    fn mem_model_contiguous_64_word_load_is_36_cycles() {
        // The paper's worked example (Section IV-A).
        let mut e = engine();
        let r = e.v_ld(0, 64);
        assert_eq!(r.last_ready() + 1, 36);
    }

    #[test]
    fn mem_model_indexed_64_word_load_is_84_cycles() {
        let mut e = engine();
        let idx = VReg::ready_at((0..64).collect(), 0);
        let r = e.v_ld_idx(0, &idx);
        assert_eq!(r.last_ready() + 1, 84);
    }

    #[test]
    fn load_reads_real_data() {
        let mut mem = Memory::new();
        mem.write_block(10, &[7, 8, 9]);
        let mut e = Engine::new(VpConfig::paper(), mem);
        let r = e.v_ld(10, 3);
        assert_eq!(r.data, vec![7, 8, 9]);
    }

    #[test]
    fn store_writes_real_data() {
        let mut e = engine();
        let r = VReg::ready_at(vec![1, 2, 3], 0);
        e.v_st(100, &r);
        assert_eq!(e.mem().read_block(100, 3), vec![1, 2, 3]);
    }

    #[test]
    fn strided_load_gathers_columns() {
        let mut mem = Memory::new();
        // 3x4 row-major matrix; column 1 = words 1, 5, 9.
        mem.write_block(0, &[0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23]);
        let mut e = Engine::new(VpConfig::paper(), mem);
        let col = e.v_ld_strided(1, 4, 3);
        assert_eq!(col.data, vec![1, 11, 21]);
        // Non-unit stride runs at the 1-word/cycle indexed rate: 20+3.
        assert_eq!(col.last_ready() + 1, 23);
        let row = e.v_ld_strided(4, 1, 4);
        assert_eq!(row.data, vec![10, 11, 12, 13]);
    }

    #[test]
    fn pair_load_deinterleaves() {
        let mut mem = Memory::new();
        mem.write_block(0, &[10, 11, 20, 21, 30, 31]);
        let mut e = Engine::new(VpConfig::paper(), mem);
        let (payload, pos) = e.v_ld_pair(0, 3);
        assert_eq!(payload.data, vec![10, 20, 30]);
        assert_eq!(pos.data, vec![11, 21, 31]);
        // Default words_per_entry = 1: 4 entries/cycle → 20 + 1 = 21.
        assert_eq!(payload.last_ready() + 1, 21);
    }

    #[test]
    fn pair_load_rate_honours_words_per_entry() {
        let mut cfg = VpConfig::paper();
        cfg.words_per_entry = 2;
        let mut mem = Memory::new();
        mem.write_block(0, &[0; 12]);
        let mut e = Engine::new(cfg, mem);
        let (payload, _) = e.v_ld_pair(0, 6);
        // 6 entries of 2 charged words at 2 entries/cycle: 20 + 3 = 23.
        assert_eq!(payload.last_ready() + 1, 23);
    }

    #[test]
    fn pair_store_interleaves() {
        let mut e = engine();
        let payload = VReg::ready_at(vec![1, 2], 0);
        let pos = VReg::ready_at(vec![9, 8], 0);
        e.v_st_pair(50, &payload, &pos);
        assert_eq!(e.mem().read_block(50, 4), vec![1, 9, 2, 8]);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let mut mem = Memory::new();
        mem.write_block(0, &[5, 6, 7, 8]);
        let mut e = Engine::new(VpConfig::paper(), mem);
        let idx = VReg::ready_at(vec![3, 1], 0);
        let g = e.v_ld_idx(0, &idx);
        assert_eq!(g.data, vec![8, 6]);
        e.v_st_idx(&g, 100, &idx);
        assert_eq!(e.mem().read(103), 8);
        assert_eq!(e.mem().read(101), 6);
    }

    #[test]
    fn scatter_collision_last_wins() {
        let mut e = engine();
        let idx = VReg::ready_at(vec![0, 0], 0);
        let vals = VReg::ready_at(vec![1, 2], 0);
        e.v_st_idx(&vals, 40, &idx);
        assert_eq!(e.mem().read(40), 2);
    }

    #[test]
    fn chaining_overlaps_load_and_alu() {
        // Load chained into an ALU op (different FUs): with chaining the
        // ALU consumes elements as they arrive; without, it waits for the
        // whole register.
        let run = |chaining: bool| {
            let mut cfg = VpConfig::paper();
            cfg.chaining = chaining;
            let mut e = Engine::new(cfg, Memory::new());
            let r = e.v_ld(0, 64);
            e.v_add_imm(&r, 1);
            e.cycles()
        };
        let chained = run(true);
        let unchained = run(false);
        assert!(chained < unchained, "{chained} !< {unchained}");
        // Chained: ALU tracks the memory stream, last element at 35 → 36.
        assert_eq!(chained, 36);
        // Unchained: ALU starts at the load's completion (cycle 35) and
        // pushes 64 elements at 4/cycle → 35 + 15 + 1 = 51.
        assert_eq!(unchained, 51);
    }

    #[test]
    fn mem_to_mem_chain_serializes_on_the_port() {
        // v_ld chained into v_st still serializes: there is one memory
        // port, so chaining cannot overlap two memory instructions.
        let mut e = engine();
        let r = e.v_ld(0, 64);
        e.v_st(1000, &r);
        assert_eq!(e.cycles(), 36 + 36);
    }

    #[test]
    fn dual_ported_memory_overlaps_independent_loads() {
        let mut cfg = VpConfig::paper();
        cfg.mem_ports = 2;
        let mut e = Engine::new(cfg, Memory::new());
        let a = e.v_ld(0, 64);
        let b = e.v_ld(1000, 64);
        // Both streams run concurrently on separate ports.
        assert!(b.last_ready() <= a.last_ready() + 2);
        assert_eq!(e.cycles(), 37); // 36 + 1 issue-slot skew
    }

    #[test]
    fn fu_occupancy_serializes_memory_ops() {
        let mut e = engine();
        let a = e.v_ld(0, 64);
        let b = e.v_ld(1000, 64);
        // Second load cannot start until the port frees.
        assert!(b.ready[0] > a.last_ready());
    }

    #[test]
    fn alu_ops_compute() {
        let mut e = engine();
        let a = e.v_iota(8, 5, 2);
        assert_eq!(a.data, vec![5, 7, 9, 11, 13, 15, 17, 19]);
        let b = e.v_add_imm(&a, 1);
        assert_eq!(b.data[0], 6);
        let c = e.v_add(&a, &b);
        assert_eq!(c.data[7], 19 + 20);
        let d = e.v_slide_up(&a, 2, 0);
        assert_eq!(d.data, vec![0, 0, 5, 7, 9, 11, 13, 15]);
        let s = e.v_sll_imm(&a, 1);
        assert_eq!(s.data[0], 10);
    }

    #[test]
    fn alu_and_mem_overlap() {
        // Independent ALU work can proceed while the memory port streams.
        let mut e = engine();
        let _ld = e.v_ld(0, 64); // mem busy till ~35
        let before = e.cycles();
        let _a = e.v_set_imm(64, 1); // issues immediately on the ALU
                                     // ALU op of 64 elems at 4/cycle + latency ≈ done before the load.
        assert!(e.cycles() <= before.max(36));
    }

    #[test]
    fn stats_accumulate() {
        let mut e = engine();
        let r = e.v_ld(0, 16);
        e.v_st(100, &r);
        let idx = VReg::ready_at(vec![0, 1], 0);
        e.v_ld_idx(0, &idx);
        e.v_set_imm(4, 0);
        let s = e.stats();
        assert_eq!(s.mem_contig_ops, 2);
        assert_eq!(s.mem_indexed_ops, 1);
        assert_eq!(s.alu_ops, 1);
        assert_eq!(s.instructions, 4);
        assert_eq!(s.mem_words, 16 + 16 + 2);
    }

    #[test]
    fn advance_serial_serializes() {
        let mut e = engine();
        e.v_ld(0, 64); // finishes at 36
        e.advance_serial(100);
        assert_eq!(e.cycles(), 136);
        assert_eq!(e.stats().scalar_cycles, 100);
    }

    #[test]
    fn stall_until_blocks_issue() {
        let mut e = engine();
        e.stall_until(500);
        let r = e.v_ld(0, 4);
        assert!(r.ready[0] >= 500 + 20);
    }

    #[test]
    fn mask_and_reduce_ops() {
        let mut e = engine();
        let v = VReg::ready_at(vec![3, 7, 3, 1, 3], 0);
        let m = e.v_cmp_eq_imm(&v, 3);
        assert_eq!(m.data, vec![1, 0, 1, 0, 1]);
        let r = e.v_reduce_add(&m);
        assert_eq!(r.data, vec![3]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn f32_ops_compute() {
        let mut e = engine();
        let a = VReg::ready_at(vec![2.0f32.to_bits(), (-3.0f32).to_bits()], 0);
        let b = VReg::ready_at(vec![4.0f32.to_bits(), 0.5f32.to_bits()], 0);
        let m = e.v_fmul(&a, &b);
        assert_eq!(f32::from_bits(m.data[0]), 8.0);
        assert_eq!(f32::from_bits(m.data[1]), -1.5);
        let s = e.v_fadd(&a, &b);
        assert_eq!(f32::from_bits(s.data[0]), 6.0);
    }

    #[test]
    fn position_unpack_ops() {
        let mut e = engine();
        let pos = VReg::ready_at(vec![(5u32 << 8) | 9, 63 << 8], 0);
        let rows = e.v_srl_imm(&pos, 8);
        let cols = e.v_and_imm(&pos, 0xff);
        assert_eq!(rows.data, vec![5, 63]);
        assert_eq!(cols.data, vec![9, 0]);
    }

    #[test]
    fn scatter_add_accumulates_collisions() {
        let mut e = engine();
        e.mem_mut().write_f32(100, 1.0);
        let vals = VReg::ready_at(vec![2.0f32.to_bits(), 3.0f32.to_bits()], 0);
        let idx = VReg::ready_at(vec![0, 0], 0);
        e.v_scatter_add_f32(&vals, 100, &idx);
        assert_eq!(e.mem().read_f32(100), 6.0);
    }

    #[test]
    fn scatter_add_costs_two_words_per_element() {
        // 8 elements: 20 + 16 = 36 cycles vs a plain 8-element scatter's
        // 20 + 8 = 28.
        let mut e = engine();
        let vals = VReg::ready_at(vec![1.0f32.to_bits(); 8], 0);
        let idx = VReg::ready_at((0..8).collect(), 0);
        let done = e.v_scatter_add_f32(&vals, 50, &idx);
        assert_eq!(done + 1, 36);
    }

    #[test]
    fn recorder_captures_instruction_spans() {
        let mut e = engine();
        let rec = Recorder::enabled(256);
        e.set_recorder(rec.clone());
        let r = e.v_ld(0, 64);
        e.v_add_imm(&r, 1);
        e.advance_serial(10);
        let snap = rec.snapshot();
        assert!(stm_obs::check::validate(&snap).is_ok());
        let names: Vec<&str> = snap.events.iter().map(|ev| ev.name).collect();
        assert_eq!(names, vec!["v_ld", "v_add_imm", "serial"]);
        assert_eq!(snap.events[0].lane, Lane::Mem(0));
        assert_eq!(snap.events[1].lane, Lane::Alu);
        assert_eq!(snap.events[2].lane, Lane::Scalar);
        // The load span covers the paper's 36-cycle worked example.
        match snap.events[0].kind {
            stm_obs::EventKind::Complete { dur, elements } => {
                assert_eq!(dur, 36);
                assert_eq!(elements, 64);
            }
            ref other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn recorder_off_by_default_records_nothing() {
        let mut e = engine();
        assert!(!e.recorder().is_enabled());
        e.v_ld(0, 8);
        assert!(e.recorder().snapshot().events.is_empty());
    }

    #[test]
    fn empty_vectors_are_free_of_elements() {
        let mut e = engine();
        let r = e.v_ld(0, 0);
        assert!(r.is_empty());
        e.v_st(10, &r);
        // Only issue cost accrues.
        assert!(e.cycles() <= 4);
    }

    // ------------------------------------------------------------------
    // Stall-cause accounting
    // ------------------------------------------------------------------

    /// Asserts the breakdown conserves cycles and agrees with the coarse
    /// FuBusy occupancy accounting.
    fn check_breakdown(e: &Engine) -> crate::stats::StallBreakdown {
        let bd = e.stall_breakdown();
        assert_eq!(bd.cycles, e.cycles());
        bd.check_conservation().unwrap();
        let mem_occ: u64 = bd.mem.iter().map(|c| c.occupancy()).sum();
        assert_eq!(mem_occ, e.fu_busy().mem, "mem occupancy != FuBusy");
        assert_eq!(bd.alu.occupancy(), e.fu_busy().alu, "alu");
        assert_eq!(bd.stm.occupancy(), e.fu_busy().stm, "stm");
        bd
    }

    #[test]
    fn stall_breakdown_conserves_on_a_mixed_run() {
        let mut e = engine();
        let r = e.v_ld(0, 64);
        e.v_add_imm(&r, 1);
        e.loop_overhead();
        let s = e.v_ld(100, 32);
        e.v_st(200, &s);
        e.scalar_cycles(17);
        e.advance_serial(40);
        check_breakdown(&e);
    }

    #[test]
    fn unchained_consumer_accrues_chain_wait() {
        let mut cfg = VpConfig::paper();
        cfg.chaining = false;
        let mut e = Engine::new(cfg, Memory::new());
        let r = e.v_ld(0, 64);
        e.v_add_imm(&r, 1);
        let bd = check_breakdown(&e);
        assert!(bd.alu.chain_wait > 0, "{:?}", bd.alu);
        // Chained, the same sequence carries far less ALU wait.
        let mut e2 = engine();
        let r2 = e2.v_ld(0, 64);
        e2.v_add_imm(&r2, 1);
        let bd2 = check_breakdown(&e2);
        assert!(bd2.alu.chain_wait < bd.alu.chain_wait);
    }

    #[test]
    fn stm_barrier_wait_lands_in_stm_wait() {
        let mut e = engine();
        e.stall_until(500);
        e.v_ld(0, 4);
        let bd = check_breakdown(&e);
        assert_eq!(bd.mem[0].stm_wait, 500);
    }

    #[test]
    fn front_end_port_conflict_charges_other_units() {
        // Two serialized loads keep the single memory port busy; an ALU
        // op issued afterwards spent that conflict window waiting.
        let mut e = engine();
        let a = e.v_ld(0, 64);
        e.v_ld(1000, 64);
        e.v_add_imm(&a, 1);
        let bd = check_breakdown(&e);
        assert!(bd.alu.port_wait > 0, "{:?}", bd.alu);
    }

    #[test]
    fn scalar_phases_land_in_scalar_wait() {
        let mut e = engine();
        e.advance_serial(100);
        e.v_ld(0, 4);
        let bd = check_breakdown(&e);
        assert_eq!(bd.mem[0].scalar_wait, 100);
        assert_eq!(bd.alu.scalar_wait, 100);
    }

    #[test]
    fn dual_port_breakdown_covers_every_port() {
        let mut cfg = VpConfig::paper();
        cfg.mem_ports = 2;
        let mut e = Engine::new(cfg, Memory::new());
        e.v_ld(0, 64);
        e.v_ld(1000, 64);
        let bd = check_breakdown(&e);
        assert_eq!(bd.mem.len(), 2);
        assert!(bd.mem[0].busy > 0 && bd.mem[1].busy > 0);
    }

    #[test]
    fn breakdown_is_purely_observational() {
        let run = |observe: bool| {
            let mut e = engine();
            let r = e.v_ld(0, 64);
            if observe {
                let _ = e.stall_breakdown();
            }
            e.v_add_imm(&r, 1);
            e.advance_serial(10);
            if observe {
                let _ = e.stall_breakdown();
            }
            e.cycles()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fully_chained_stream_is_pure_busy_on_mem() {
        // A single unchained load: occupancy is all busy, no chain wait.
        let mut e = engine();
        e.v_ld(0, 64);
        let bd = check_breakdown(&e);
        assert_eq!(bd.mem[0].busy, 36);
        assert_eq!(bd.mem[0].chain_wait, 0);
    }

    #[test]
    fn breakdown_on_an_idle_engine_is_all_idle() {
        let e = engine();
        let bd = check_breakdown(&e);
        assert_eq!(bd.cycles, 0);
        assert_eq!(bd.mem[0].total(), 0);
    }
}
