//! Machine configuration — every parameter the paper publishes, plus the
//! documented model interpretations (DESIGN.md §2).

use crate::mem::OobPolicy;
use crate::scalar::cache::CacheConfig;

/// A single armed soft error: once the engine's cycle counter reaches
/// `after_cycle`, XOR `1 << bit` into simulated-memory word `word` — once,
/// at the next watchdog point, *silently*. The flip bypasses the memory
/// guard and fault accounting and charges no cycles, so it is invisible
/// to every typed detection path: exactly the silent-data-corruption
/// event the cross-backend integrity plane exists to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MidRunFlip {
    /// Cycle threshold: the flip fires at the first watchdog point at or
    /// past this cycle count.
    pub after_cycle: u64,
    /// Target word address in simulated memory.
    pub word: u32,
    /// Bit index to flip (taken modulo 32).
    pub bit: u32,
}

/// Configuration of the simulated vector processor.
///
/// Defaults reproduce the paper's evaluation machine (Section IV-A).
#[derive(Debug, Clone, PartialEq)]
pub struct VpConfig {
    /// Section size `s`: the maximum vector length (paper: 64).
    pub section_size: usize,
    /// Functional-unit parallelism `p`: elements processed per cycle by
    /// arithmetic vector units (paper: 4). The STM's buffer bandwidth `B`
    /// equals `p` in the performance experiments.
    pub lanes: u64,
    /// Vector memory startup latency in cycles (paper: 20).
    pub mem_startup: u64,
    /// Words per cycle for contiguous vector accesses (paper: 4).
    pub mem_words_per_cycle: u64,
    /// Words per cycle for indexed vector accesses (paper: 1).
    pub mem_indexed_words_per_cycle: u64,
    /// Independent vector memory ports. The paper's machine has a single
    /// Vector Load/Store unit (1); more ports let independent memory
    /// instructions overlap — an ablation knob for quantifying how much
    /// of the CRS baseline's cost is port serialization.
    pub mem_ports: usize,
    /// Whether vector chaining (per-element forwarding between dependent
    /// vector instructions) is enabled (paper: yes). Ablatable.
    pub chaining: bool,
    /// Pipeline depth of the vector ALU (cycles from operand to result for
    /// one element). Not published; fixed at a typical 4.
    pub alu_latency: u64,
    /// Issue cost of one vector instruction in cycles (decode/dispatch).
    pub issue_cycles: u64,
    /// Scalar loop-control overhead charged per strip-mine iteration /
    /// per row loop (`ssvl`, address updates, branch). Model constant,
    /// see DESIGN.md §2.5.
    pub loop_overhead: u64,
    /// 32-bit data words charged against the memory port per HiSM
    /// blockarray entry streamed by `v_ldb`/`v_stb`.
    ///
    /// Default 1: the entry's *value* (or pointer) word. The 16-bit
    /// positional data travels on a dedicated narrow path and is not
    /// charged against the 4-words/cycle budget — this is the only
    /// reading consistent with the paper's own framing, where the memory
    /// must be able to feed the STM's `B = p = 4` elements per cycle
    /// (Fig. 10 studies utilization *of the unit*, presuming the port can
    /// saturate it) and where the positional data is deliberately tiny
    /// ("only … 8 bits for each row and column position"). Set to 2 to
    /// charge the full aligned `[value, pos]` pair against the port
    /// (ablation knob; halves the streaming rate).
    pub words_per_entry: u64,
    /// Issue width of the scalar core (paper: 4-way SimpleScalar baseline).
    pub scalar_issue_width: u64,
    /// Latency of a scalar ALU operation.
    pub scalar_alu_latency: u64,
    /// Scalar data-cache geometry and latencies.
    pub scalar_cache: CacheConfig,
    /// Scalar memory ports (loads/stores issued per cycle).
    pub scalar_mem_ports: u64,
    /// Extra cycles per taken scalar branch (0 = perfect prediction).
    pub scalar_branch_penalty: u64,
    /// Use the out-of-order scalar pipeline model (`scalar::ooo`) instead
    /// of the conservative in-order model. SimpleScalar's baseline is
    /// out of order; the in-order default makes the CRS baseline *no
    /// faster* than the paper's machine (DESIGN.md §2.6). Ablation knob.
    pub scalar_out_of_order: bool,
    /// How kernels arm the memory guard over their own footprint.
    /// Default [`OobPolicy::Trap`]: a walker chasing a corrupt pointer
    /// past the kernel's allocation becomes a typed fault instead of
    /// silent growth. Valid inputs never cross the watermark, so this has
    /// no effect on clean runs.
    pub oob: OobPolicy,
    /// Per-run cycle budget (the soak pipeline's deadline watchdog).
    /// `None` (the default) disables the check. When set, the engine
    /// aborts by unwinding with a typed [`crate::DeadlineExceeded`]
    /// payload at the first watchdog point — instruction issue, a serial
    /// phase, or a stall — past the budget, so a wedged or runaway kernel
    /// cannot hold a worker forever. Clean runs under a generous budget
    /// are cycle-identical to unbudgeted runs (the check never advances
    /// the clock).
    pub cycle_budget: Option<u64>,
    /// An armed mid-run memory bit flip (fault injection). `None` (the
    /// default) runs clean. See [`MidRunFlip`].
    pub mid_run_flip: Option<MidRunFlip>,
}

impl Default for VpConfig {
    fn default() -> Self {
        VpConfig {
            section_size: 64,
            lanes: 4,
            mem_startup: 20,
            mem_words_per_cycle: 4,
            mem_indexed_words_per_cycle: 1,
            mem_ports: 1,
            chaining: true,
            alu_latency: 4,
            issue_cycles: 1,
            loop_overhead: 2,
            words_per_entry: 1,
            scalar_issue_width: 4,
            scalar_alu_latency: 1,
            scalar_cache: CacheConfig::default(),
            scalar_mem_ports: 2,
            scalar_branch_penalty: 1,
            scalar_out_of_order: false,
            oob: OobPolicy::Trap,
            cycle_budget: None,
            mid_run_flip: None,
        }
    }
}

impl VpConfig {
    /// The paper's evaluation machine.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Elements per cycle the contiguous memory port sustains for elements
    /// of `words_per_elem` words (at least 1; the port cannot split an
    /// element across cycles in this model).
    pub fn contig_rate(&self, words_per_elem: u64) -> u64 {
        (self.mem_words_per_cycle / words_per_elem).max(1)
    }

    /// Elements per cycle for indexed accesses.
    pub fn indexed_rate(&self, words_per_elem: u64) -> u64 {
        (self.mem_indexed_words_per_cycle / words_per_elem).max(1)
    }

    /// Basic sanity checks on a hand-edited configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.section_size < 2 || self.section_size > 256 {
            return Err(format!("section_size {} out of 2..=256", self.section_size));
        }
        if self.lanes == 0 || self.mem_words_per_cycle == 0 {
            return Err("lanes and memory bandwidth must be positive".into());
        }
        if self.mem_ports == 0 || self.mem_ports > 8 {
            return Err("mem_ports must be in 1..=8".into());
        }
        if self.words_per_entry == 0 || self.words_per_entry > 2 {
            return Err("words_per_entry must be 1 or 2".into());
        }
        if self.scalar_issue_width == 0 || self.scalar_mem_ports == 0 {
            return Err("scalar widths must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = VpConfig::paper();
        assert_eq!(c.section_size, 64);
        assert_eq!(c.lanes, 4);
        assert_eq!(c.mem_startup, 20);
        assert_eq!(c.mem_words_per_cycle, 4);
        assert_eq!(c.mem_indexed_words_per_cycle, 1);
        assert!(c.chaining);
        assert_eq!(c.cycle_budget, None, "the paper machine has no deadline");
        c.validate().unwrap();
    }

    #[test]
    fn a_cycle_budget_is_a_valid_configuration() {
        let c = VpConfig {
            cycle_budget: Some(10_000),
            ..VpConfig::paper()
        };
        c.validate().unwrap();
    }

    #[test]
    fn rates() {
        let c = VpConfig::paper();
        assert_eq!(c.contig_rate(1), 4);
        assert_eq!(c.contig_rate(2), 2);
        assert_eq!(c.indexed_rate(1), 1);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = VpConfig::paper();
        c.section_size = 1000;
        assert!(c.validate().is_err());
        let mut c = VpConfig::paper();
        c.words_per_entry = 3;
        assert!(c.validate().is_err());
    }
}
