//! Pluggable timing models: the seam between *what* the engine moves and
//! *when* it completes.
//!
//! The engine's functional semantics (real data movement on [`Memory`])
//! never depend on the model — every model sees the same instruction
//! stream and produces per-element completion times for it. Two models
//! ship with the simulator:
//!
//! * [`PaperTiming`] — the machine of the paper: memory startup, per-cycle
//!   acceptance rates, pipeline latency, and chaining, exactly as the
//!   worked examples in Section IV-A (64-word contiguous load = 36
//!   cycles, indexed = 84).
//! * [`IdealTiming`] — a zero-latency machine: every element of an
//!   instruction completes the cycle it issues and issue itself is free,
//!   so the cycle count collapses to the functional-unit serialization
//!   floor. Running a kernel under both models separates *algorithm*
//!   cost (instruction count, data volume) from *machine* cost (startup,
//!   bandwidth, latency).
//!
//! Models are stateless and selected by [`TimingKind`], which is what
//! kernel-level code (`ExecCtx` in `stm-core`, the bench harness's
//! `--timing` handling) passes around.
//!
//! [`Memory`]: crate::mem::Memory

use crate::config::VpConfig;
use crate::stream::stream_through;

/// A timing model: maps an issued vector instruction to per-element
/// completion times. Implementations must be stateless (the engine holds
/// a `&'static dyn TimingModel`) and deterministic.
pub trait TimingModel: std::fmt::Debug + Sync {
    /// Short stable name (used by `--timing` flags and reports).
    fn name(&self) -> &'static str;

    /// Cycles the issue clock advances per vector instruction.
    fn issue_cycles(&self, cfg: &VpConfig) -> u64;

    /// Scalar/control cycles actually charged for a nominal scalar cost
    /// (loop overhead, scalar-core phases, recursion bookkeeping).
    fn scalar_cycles(&self, nominal: u64) -> u64;

    /// Per-element completion times of a streamed instruction: `n`
    /// elements accepted at `rate` per cycle from `issue + startup`, each
    /// completing `latency` cycles after acceptance, each no earlier than
    /// its `input_ready` time (chaining).
    fn stream(
        &self,
        issue: u64,
        startup: u64,
        rate: u64,
        latency: u64,
        n: usize,
        input_ready: Option<&[u64]>,
    ) -> Vec<u64>;

    /// Per-element completion times of a batched instruction: one whole
    /// group accepted per cycle (e.g. one STM buffer transfer), each group
    /// no earlier than its elements' readiness, every element completing
    /// `latency` cycles after its group. Flattened in group order.
    fn batched(
        &self,
        issue: u64,
        startup: u64,
        latency: u64,
        group_sizes: &[usize],
        input_ready: Option<&[u64]>,
    ) -> Vec<u64>;
}

/// The paper's occupancy/chaining machine (the default model).
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperTiming;

impl TimingModel for PaperTiming {
    fn name(&self) -> &'static str {
        "paper"
    }

    fn issue_cycles(&self, cfg: &VpConfig) -> u64 {
        cfg.issue_cycles
    }

    fn scalar_cycles(&self, nominal: u64) -> u64 {
        nominal
    }

    fn stream(
        &self,
        issue: u64,
        startup: u64,
        rate: u64,
        latency: u64,
        n: usize,
        input_ready: Option<&[u64]>,
    ) -> Vec<u64> {
        stream_through(issue, startup, rate, latency, n, input_ready)
    }

    fn batched(
        &self,
        issue: u64,
        startup: u64,
        latency: u64,
        group_sizes: &[usize],
        input_ready: Option<&[u64]>,
    ) -> Vec<u64> {
        let n: usize = group_sizes.iter().sum();
        let mut done = Vec::with_capacity(n);
        let mut t = issue + startup;
        let mut k = 0usize;
        for &g in group_sizes {
            let group_ready = input_ready
                .map(|r| r[k..k + g].iter().copied().max().unwrap_or(0))
                .unwrap_or(0);
            let accept = t.max(group_ready);
            for _ in 0..g {
                done.push(accept + latency);
            }
            k += g;
            t = accept + 1;
        }
        done
    }
}

/// A zero-latency machine: startup, acceptance rates, pipeline latency,
/// and scalar overhead all vanish; every element completes at issue.
///
/// Chaining inputs are *ignored* on purpose — under an infinitely fast
/// machine every producer has already finished — so the model is a true
/// lower bound, not merely a faster pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealTiming;

impl TimingModel for IdealTiming {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn issue_cycles(&self, _cfg: &VpConfig) -> u64 {
        0
    }

    fn scalar_cycles(&self, _nominal: u64) -> u64 {
        0
    }

    fn stream(
        &self,
        issue: u64,
        _startup: u64,
        _rate: u64,
        _latency: u64,
        n: usize,
        _input_ready: Option<&[u64]>,
    ) -> Vec<u64> {
        vec![issue; n]
    }

    fn batched(
        &self,
        issue: u64,
        _startup: u64,
        _latency: u64,
        group_sizes: &[usize],
        _input_ready: Option<&[u64]>,
    ) -> Vec<u64> {
        vec![issue; group_sizes.iter().sum()]
    }
}

/// Selects a [`TimingModel`] by value — the form kernel configuration and
/// command-line flags use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingKind {
    /// The paper's occupancy/chaining model ([`PaperTiming`]).
    #[default]
    Paper,
    /// The zero-latency bound ([`IdealTiming`]).
    Ideal,
}

static PAPER: PaperTiming = PaperTiming;
static IDEAL: IdealTiming = IdealTiming;

impl TimingKind {
    /// The model this kind selects.
    pub fn model(self) -> &'static dyn TimingModel {
        match self {
            TimingKind::Paper => &PAPER,
            TimingKind::Ideal => &IDEAL,
        }
    }

    /// Short stable name (`"paper"` / `"ideal"`).
    pub fn name(self) -> &'static str {
        self.model().name()
    }

    /// Parses a name as written on a `--timing` flag.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "paper" => Some(TimingKind::Paper),
            "ideal" => Some(TimingKind::Ideal),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stream_matches_stream_through() {
        let ready: Vec<u64> = (0..16).map(|i| (i * 5) % 40).collect();
        assert_eq!(
            PaperTiming.stream(3, 20, 4, 2, 16, Some(&ready)),
            stream_through(3, 20, 4, 2, 16, Some(&ready))
        );
    }

    #[test]
    fn ideal_completes_everything_at_issue() {
        let done = IdealTiming.stream(7, 20, 1, 9, 5, None);
        assert_eq!(done, vec![7; 5]);
        let batched = IdealTiming.batched(7, 20, 9, &[2, 3], None);
        assert_eq!(batched, vec![7; 5]);
        assert_eq!(IdealTiming.issue_cycles(&VpConfig::paper()), 0);
        assert_eq!(IdealTiming.scalar_cycles(1000), 0);
    }

    #[test]
    fn kind_round_trips_through_names() {
        for kind in [TimingKind::Paper, TimingKind::Ideal] {
            assert_eq!(TimingKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(TimingKind::from_name("warp-speed"), None);
        assert_eq!(TimingKind::default(), TimingKind::Paper);
    }

    #[test]
    fn paper_batched_groups_accept_once_per_cycle() {
        // Three groups, no chaining: accepts at 10, 11, 12 (+latency 3).
        let done = PaperTiming.batched(0, 10, 3, &[2, 1, 2], None);
        assert_eq!(done, vec![13, 13, 14, 15, 15]);
    }
}
