//! Instruction-level tracing: an optional per-instruction event log for
//! debugging kernels and inspecting pipeline behaviour, plus per-FU busy
//! accounting for utilization reports.

use crate::engine::Fu;

/// One traced vector instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Mnemonic (`"v_ld"`, `"v_stcr"`, …).
    pub op: &'static str,
    /// Functional unit the instruction ran on.
    pub fu: Fu,
    /// Cycle the unit started on the instruction.
    pub issue: u64,
    /// Completion cycle of the first element (`issue` for empty vectors).
    pub first_done: u64,
    /// Completion cycle of the last element (`issue` for empty vectors).
    pub last_done: u64,
    /// Element count.
    pub elements: usize,
}

impl TraceEvent {
    /// Duration from issue to last completion, inclusive.
    pub fn span(&self) -> u64 {
        self.last_done + 1 - self.issue.min(self.last_done)
    }
}

/// A bounded trace buffer (drops the oldest events past the capacity so a
/// long simulation cannot exhaust memory).
#[derive(Debug, Clone)]
pub struct Trace {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Trace {
            events: std::collections::VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because of the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the trace as an aligned listing (for debugging output).
    pub fn render(&self) -> String {
        let mut out = String::from("      op        fu     issue     first      last  elems\n");
        for e in &self.events {
            out.push_str(&format!(
                "{:>8}  {:>8?}  {:>8}  {:>8}  {:>8}  {:>5}\n",
                e.op, e.fu, e.issue, e.first_done, e.last_done, e.elements
            ));
        }
        out
    }
}

/// Per-functional-unit busy-cycle accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuBusy {
    /// Busy cycles of the vector memory port.
    pub mem: u64,
    /// Busy cycles of the vector ALU.
    pub alu: u64,
    /// Busy cycles of the STM.
    pub stm: u64,
}

impl FuBusy {
    /// Adds `cycles` to the unit's account.
    pub fn add(&mut self, fu: Fu, cycles: u64) {
        match fu {
            Fu::Mem => self.mem += cycles,
            Fu::Alu => self.alu += cycles,
            Fu::Stm => self.stm += cycles,
        }
    }

    /// Utilization of a unit over a run of `total` cycles (0 when idle).
    pub fn utilization(&self, fu: Fu, total: u64) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let busy = match fu {
            Fu::Mem => self.mem,
            Fu::Alu => self.alu,
            Fu::Stm => self.stm,
        };
        busy as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: &'static str, issue: u64, last: u64) -> TraceEvent {
        TraceEvent {
            op,
            fu: Fu::Mem,
            issue,
            first_done: issue,
            last_done: last,
            elements: 1,
        }
    }

    #[test]
    fn trace_keeps_events_in_order() {
        let mut t = Trace::new(10);
        t.push(ev("a", 0, 5));
        t.push(ev("b", 6, 9));
        let ops: Vec<&str> = t.events().map(|e| e.op).collect();
        assert_eq!(ops, vec!["a", "b"]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn trace_bounds_capacity() {
        let mut t = Trace::new(2);
        t.push(ev("a", 0, 0));
        t.push(ev("b", 1, 1));
        t.push(ev("c", 2, 2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events().next().unwrap().op, "b");
    }

    #[test]
    fn render_contains_ops() {
        let mut t = Trace::new(4);
        t.push(ev("v_ld", 3, 38));
        let s = t.render();
        assert!(s.contains("v_ld"));
        assert!(s.contains("38"));
    }

    #[test]
    fn busy_accounting_and_utilization() {
        let mut b = FuBusy::default();
        b.add(Fu::Mem, 30);
        b.add(Fu::Mem, 10);
        b.add(Fu::Stm, 5);
        assert_eq!(b.mem, 40);
        assert!((b.utilization(Fu::Mem, 80) - 0.5).abs() < 1e-12);
        assert_eq!(b.utilization(Fu::Alu, 80), 0.0);
        assert_eq!(b.utilization(Fu::Mem, 0), 0.0);
    }

    #[test]
    fn span_is_inclusive() {
        assert_eq!(ev("x", 10, 19).span(), 10);
    }
}
