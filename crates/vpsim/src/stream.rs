//! The timing primitive: streaming `n` elements through a pipelined unit.
//!
//! Every vector instruction in this simulator — memory, ALU, or STM — is
//! timed by pushing its elements through [`stream_through`]: the unit
//! accepts up to `rate` elements per cycle starting `startup` cycles after
//! issue, each element cannot be accepted before its input is ready
//! (chaining), and every accepted element completes `latency` cycles later.

/// Per-element completion times for a stream of `n` elements.
///
/// * `issue` — cycle the instruction reaches the functional unit;
/// * `startup` — dead time before the first element can be accepted
///   (e.g. the 20-cycle memory startup);
/// * `rate` — elements accepted per cycle (≥ 1);
/// * `latency` — pipeline depth from acceptance to completion;
/// * `input_ready` — per-element earliest availability (chained producer),
///   or `None` when all elements are available at issue.
///
/// Returns the completion time of each element (empty for `n = 0`).
pub fn stream_through(
    issue: u64,
    startup: u64,
    rate: u64,
    latency: u64,
    n: usize,
    input_ready: Option<&[u64]>,
) -> Vec<u64> {
    assert!(rate >= 1, "rate must be at least one element per cycle");
    if let Some(r) = input_ready {
        assert_eq!(r.len(), n, "input_ready length mismatch");
    }
    let mut out = Vec::with_capacity(n);
    let mut t = issue + startup; // cycle currently accepting elements
    let mut used = 0u64; // elements accepted in cycle `t`
    for i in 0..n {
        let avail = input_ready.map_or(0, |r| r[i]);
        if avail > t {
            t = avail;
            used = 0;
        }
        if used == rate {
            t += 1;
            used = 0;
        }
        out.push(t + latency);
        used += 1;
    }
    out
}

/// The duration, measured from `issue`, until the last element of a stream
/// completes — `0` for an empty stream.
pub fn stream_span(issue: u64, completion: &[u64]) -> u64 {
    completion.last().map_or(0, |&last| last + 1 - issue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_contiguous_load_example() {
        // 64 one-word elements, startup 20, 4 words/cycle: 36 cycles total.
        let done = stream_through(0, 20, 4, 0, 64, None);
        assert_eq!(stream_span(0, &done), 36);
        assert_eq!(done[0], 20);
        assert_eq!(done[3], 20);
        assert_eq!(done[4], 21);
    }

    #[test]
    fn paper_indexed_load_example() {
        // 64 elements at 1 word/cycle: 20 + 64 = 84 cycles.
        let done = stream_through(0, 20, 1, 0, 64, None);
        assert_eq!(stream_span(0, &done), 84);
    }

    #[test]
    fn issue_offset_shifts_everything() {
        let a = stream_through(0, 5, 2, 1, 6, None);
        let b = stream_through(100, 5, 2, 1, 6, None);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x + 100, *y);
        }
    }

    #[test]
    fn chaining_throttles_to_producer() {
        // Producer delivers one element every 3 cycles; consumer rate 4
        // must follow the producer, not its own rate.
        let ready: Vec<u64> = (0..8).map(|i| 30 + 3 * i).collect();
        let done = stream_through(0, 0, 4, 2, 8, Some(&ready));
        for (i, d) in done.iter().enumerate() {
            assert_eq!(*d, 30 + 3 * i as u64 + 2);
        }
    }

    #[test]
    fn consumer_rate_limits_fast_producer() {
        // All inputs ready at cycle 10; rate 2 → pairs complete together.
        let ready = vec![10u64; 6];
        let done = stream_through(0, 0, 2, 0, 6, Some(&ready));
        assert_eq!(done, vec![10, 10, 11, 11, 12, 12]);
    }

    #[test]
    fn empty_stream() {
        let done = stream_through(5, 20, 4, 0, 0, None);
        assert!(done.is_empty());
        assert_eq!(stream_span(5, &done), 0);
    }

    #[test]
    fn completions_are_monotone() {
        let ready: Vec<u64> = vec![50, 10, 60, 12, 70, 13];
        let done = stream_through(0, 4, 2, 3, 6, Some(&ready));
        assert!(done.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn more_bandwidth_is_never_slower() {
        let ready: Vec<u64> = (0..32).map(|i| (i * 7) % 90).collect();
        let slow = stream_through(0, 10, 1, 2, 32, Some(&ready));
        let fast = stream_through(0, 10, 4, 2, 32, Some(&ready));
        for (s, f) in slow.iter().zip(&fast) {
            assert!(f <= s);
        }
    }
}
