//! A cycle-timing vector processor simulator.
//!
//! The STM paper evaluates on "a vector processor simulator that we have
//! developed … based on the SimpleScalar simulator", extended with vector
//! instructions, vector functional units and a vector memory unit. This
//! crate rebuilds that substrate from the published machine parameters:
//!
//! * section size (maximum vector length) `s = 64`;
//! * functional-unit parallelism `p = 4` (elements processed per cycle);
//! * a vector memory unit with a 20-cycle startup that then delivers
//!   4 × 32-bit words per cycle for contiguous accesses and 1 word per
//!   cycle for indexed (gather/scatter) accesses — so a contiguous 64-word
//!   load takes 20 + 64/4 = 36 cycles and an indexed one 20 + 64 = 84
//!   (the paper's own worked example, pinned by a unit test);
//! * vector *chaining*: the per-element results of one vector instruction
//!   forward directly into the next;
//! * a 4-way-issue scalar core with an L1 data cache for the code the
//!   paper deliberately left scalar (the CRS column histogram).
//!
//! Everything is both *functional* (instructions really move data through
//! [`mem::Memory`]) and *timed* (per-element ready times propagate through
//! chains), so a kernel run on this simulator yields a checkable result
//! *and* a cycle count. Timing is supplied by a pluggable
//! [`timing::TimingModel`] — the paper's occupancy/chaining machine by
//! default, or the zero-latency [`timing::IdealTiming`] bound — while the
//! functional result is identical under every model.
//!
//! The STM functional unit itself lives in `stm-core` and plugs into
//! [`engine::Engine`] through the [`engine::Fu::Stm`] port.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod mem;
pub mod scalar;
pub mod stats;
pub mod stream;
pub mod timing;
pub mod trace;

pub use config::{MidRunFlip, VpConfig};
pub use engine::{DeadlineExceeded, Engine, Fu, VReg};
pub use mem::{Allocator, MemFault, Memory, OobPolicy, POISON_WORD};
pub use stats::{EngineStats, StallBreakdown, StallCauses};
pub use timing::{IdealTiming, PaperTiming, TimingKind, TimingModel};
pub use trace::{FuBusy, Trace, TraceEvent};
