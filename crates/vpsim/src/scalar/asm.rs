//! A tiny two-pass assembler for the scalar mini-ISA: forward labels are
//! declared, used in branches, and bound later; `finish` patches targets.

use super::isa::{Program, Reg, SInstr};

/// A label handle returned by [`Asm::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Program builder.
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<SInstr>,
    /// For each label: its bound instruction index, once known.
    labels: Vec<Option<usize>>,
    /// `(instruction index, label)` pairs to patch at finish.
    fixups: Vec<(usize, Label)>,
}

impl Asm {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a label (bind it later with [`Asm::bind`]).
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a label to the current position.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len());
    }

    /// `rd <- imm`
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.code.push(SInstr::Li(rd, imm));
        self
    }

    /// `rd <- rs + rt`
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.code.push(SInstr::Add(rd, rs, rt));
        self
    }

    /// `rd <- rs + imm`
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i64) -> &mut Self {
        self.code.push(SInstr::Addi(rd, rs, imm));
        self
    }

    /// `rd <- rs - rt`
    pub fn sub(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.code.push(SInstr::Sub(rd, rs, rt));
        self
    }

    /// `rd <- mem[rs + imm]`
    pub fn ld(&mut self, rd: Reg, rs: Reg, imm: i64) -> &mut Self {
        self.code.push(SInstr::Ld(rd, rs, imm));
        self
    }

    /// `mem[rs + imm] <- rt`
    pub fn st(&mut self, rs: Reg, imm: i64, rt: Reg) -> &mut Self {
        self.code.push(SInstr::St(rs, rt, imm));
        self
    }

    fn branch(&mut self, mk: impl Fn(usize) -> SInstr, l: Label) -> &mut Self {
        self.fixups.push((self.code.len(), l));
        self.code.push(mk(usize::MAX));
        self
    }

    /// Branch if `rs < rt`.
    pub fn blt(&mut self, rs: Reg, rt: Reg, l: Label) -> &mut Self {
        self.branch(|t| SInstr::Blt(rs, rt, t), l)
    }

    /// Branch if `rs >= rt`.
    pub fn bge(&mut self, rs: Reg, rt: Reg, l: Label) -> &mut Self {
        self.branch(|t| SInstr::Bge(rs, rt, t), l)
    }

    /// Branch if `rs != rt`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, l: Label) -> &mut Self {
        self.branch(|t| SInstr::Bne(rs, rt, t), l)
    }

    /// Branch if `rs == rt`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, l: Label) -> &mut Self {
        self.branch(|t| SInstr::Beq(rs, rt, t), l)
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, l: Label) -> &mut Self {
        self.branch(SInstr::Jmp, l)
    }

    /// Stop.
    pub fn halt(&mut self) -> &mut Self {
        self.code.push(SInstr::Halt);
        self
    }

    /// Resolves labels and returns the program. Panics on unbound labels.
    pub fn finish(mut self) -> Program {
        for (at, Label(l)) in std::mem::take(&mut self.fixups) {
            let target = self.labels[l].expect("branch to unbound label");
            self.code[at] = match self.code[at] {
                SInstr::Blt(a, b, _) => SInstr::Blt(a, b, target),
                SInstr::Bge(a, b, _) => SInstr::Bge(a, b, target),
                SInstr::Bne(a, b, _) => SInstr::Bne(a, b, target),
                SInstr::Beq(a, b, _) => SInstr::Beq(a, b, target),
                SInstr::Jmp(_) => SInstr::Jmp(target),
                other => other,
            };
        }
        Program { code: self.code }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_label_is_patched() {
        let mut a = Asm::new();
        let end = a.label();
        a.li(1, 0);
        a.jmp(end);
        a.li(1, 99); // skipped
        a.bind(end);
        a.halt();
        let p = a.finish();
        assert_eq!(p.code[1], SInstr::Jmp(3));
    }

    #[test]
    fn backward_label_loop() {
        let mut a = Asm::new();
        a.li(1, 0).li(2, 3);
        let top = a.label();
        a.bind(top);
        a.addi(1, 1, 1);
        a.bne(1, 2, top);
        a.halt();
        let p = a.finish();
        assert_eq!(p.code[3], SInstr::Bne(1, 2, 2));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.jmp(l);
        a.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }
}
