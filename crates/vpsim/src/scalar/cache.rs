//! A set-associative, write-allocate L1 data cache model with LRU
//! replacement — the scalar core's view of the 20-cycle main memory.

/// Geometry and latencies of the L1 data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (default 32 KiB, SimpleScalar's default L1).
    pub size_bytes: usize,
    /// Line size in bytes (default 32).
    pub line_bytes: usize,
    /// Associativity (default 4).
    pub assoc: usize,
    /// Hit latency in cycles (default 2: address generation + access).
    pub hit_latency: u64,
    /// Miss penalty in cycles on top of the hit latency (default 20 —
    /// the same main-memory startup the vector unit pays).
    pub miss_penalty: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 32,
            assoc: 4,
            hit_latency: 2,
            miss_penalty: 20,
        }
    }
}

impl CacheConfig {
    fn num_sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.assoc).max(1)
    }
}

/// The cache state: per-set tag arrays with LRU stamps.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets[set][way] = (tag, last_use_stamp)`; `u64::MAX` tag = invalid.
    sets: Vec<Vec<(u64, u64)>>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// A cold cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes >= 4 && cfg.line_bytes.is_power_of_two());
        assert!(cfg.assoc >= 1);
        let sets = vec![vec![(u64::MAX, 0); cfg.assoc]; cfg.num_sets()];
        Cache {
            cfg,
            sets,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the word at `word_addr` (read or write — write-allocate
    /// makes them equivalent for this model) and returns the latency.
    pub fn access(&mut self, word_addr: u32) -> u64 {
        self.stamp += 1;
        let byte_addr = word_addr as u64 * 4;
        let line = byte_addr / self.cfg.line_bytes as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let ways = &mut self.sets[set];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = self.stamp;
            self.hits += 1;
            return self.cfg.hit_latency;
        }
        // Miss: evict LRU.
        self.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|(_, stamp)| *stamp)
            .expect("assoc >= 1");
        *victim = (tag, self.stamp);
        self.cfg.hit_latency + self.cfg.miss_penalty
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit latency of the configuration.
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(CacheConfig::default());
        let miss = c.access(100);
        let hit = c.access(100);
        assert_eq!(miss, 22);
        assert_eq!(hit, 2);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn spatial_locality_within_a_line() {
        let mut c = Cache::new(CacheConfig::default());
        c.access(0); // miss, brings in words 0..8 (32-byte line)
        assert_eq!(c.access(7), 2);
        assert_ne!(c.access(8), 2); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        // Direct-mapped tiny cache: 2 lines total, assoc 1.
        let cfg = CacheConfig {
            size_bytes: 64,
            line_bytes: 32,
            assoc: 1,
            hit_latency: 1,
            miss_penalty: 10,
        };
        let mut c = Cache::new(cfg);
        c.access(0); // line 0 → set 0
        c.access(8); // byte 32 → line 1 → set 1
        assert_eq!(c.access(0), 1); // still resident
        c.access(16); // byte 64 → line 2 → set 0 → evicts line 0
        assert_eq!(c.access(0), 11); // miss again
    }

    #[test]
    fn associativity_retains_conflicting_lines() {
        let cfg = CacheConfig {
            size_bytes: 128,
            line_bytes: 32,
            assoc: 2,
            hit_latency: 1,
            miss_penalty: 10,
        };
        let mut c = Cache::new(cfg); // 2 sets x 2 ways
        c.access(0); // set 0
        c.access(16); // set 0 (line 2 of 2 sets → 2 % 2 = 0)
        assert_eq!(c.access(0), 1);
        assert_eq!(c.access(16), 1);
    }

    #[test]
    fn streaming_misses_once_per_line() {
        let mut c = Cache::new(CacheConfig::default());
        for w in 0..64u32 {
            c.access(w);
        }
        // 64 words / 8 words-per-line = 8 misses.
        assert_eq!(c.misses(), 8);
        assert_eq!(c.hits(), 56);
    }
}
