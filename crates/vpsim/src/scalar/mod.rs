//! The scalar core: a 4-way-issue in-order pipeline with an L1 data cache.
//!
//! The paper runs the first phase of the CRS transposition — the column
//! histogram — as *scalar* code "executed by the baseline 4-way issue
//! superscalar processor simulated by SimpleScalar", because the mask-
//! vector formulation would waste vector work on a sparse matrix. This
//! module provides that baseline: a small scalar ISA ([`isa`]), an
//! assembler ([`asm`]), an L1 data cache model ([`cache`]), and a timing
//! interpreter ([`cpu`]) that issues up to `scalar_issue_width`
//! instructions per cycle, stalling only on register (RAW) dependences,
//! memory-port pressure, and cache misses.
//!
//! In-order issue is a *conservative* simplification of SimpleScalar's
//! out-of-order core — replacing it with OoO could only speed the CRS
//! baseline up by hiding more miss latency; the documented speedups would
//! shrink accordingly (DESIGN.md §2.6).

pub mod asm;
pub mod cache;
pub mod cpu;
pub mod interp;
pub mod isa;
pub mod ooo;

use crate::config::VpConfig;
use crate::mem::Memory;

/// Runs a scalar program with the pipeline model selected by
/// `cfg.scalar_out_of_order` — the entry point the kernels use.
pub fn run_scalar(
    cfg: &VpConfig,
    mem: &mut Memory,
    program: &isa::Program,
    max_instructions: u64,
) -> cpu::ScalarRunStats {
    if cfg.scalar_out_of_order {
        ooo::run_program_ooo(cfg, mem, program, max_instructions)
    } else {
        cpu::run_program(cfg, mem, program, max_instructions)
    }
}

pub use asm::Asm;
pub use cache::{Cache, CacheConfig};
pub use cpu::{run_program, ScalarRunStats};
pub use interp::run_functional;
pub use isa::{Program, Reg, SInstr};
pub use ooo::run_program_ooo;
