//! An out-of-order scalar pipeline model — closer to the paper's actual
//! SimpleScalar baseline than the conservative in-order model of
//! [`super::cpu`] (see DESIGN.md §2.6).
//!
//! Model: a sliding instruction window of `window` entries. Each cycle,
//! up to `scalar_issue_width` *ready* instructions (operands available,
//! memory port free) issue from anywhere in the window, oldest first —
//! i.e. register renaming is implicit (no WAR/WAW stalls; the functional
//! state is maintained in program order, which is exact for a machine
//! with enough physical registers). Branches resolve at issue with
//! `scalar_branch_penalty` refill cycles (predicted-taken-correctly
//! fetch model, like the in-order core). Loads occupy a memory port and
//! complete after the cache latency; dependents wake up then.
//!
//! Functionally the model defers to the same semantics as the other two
//! interpreters (and is cross-checked against them); only the timing
//! differs.

use super::cache::Cache;
use super::cpu::ScalarRunStats;
use super::isa::{Program, SInstr, NUM_REGS};
use crate::config::VpConfig;
use crate::mem::Memory;

/// Reorder-window size of the out-of-order model (RUU entries in
/// SimpleScalar terms; its classic default is 16).
pub const OOO_WINDOW: usize = 16;

/// Executes `program` with out-of-order issue timing. Returns the same
/// statistics structure as the in-order model.
///
/// Stops with [`ScalarRunStats::capped`] set past `max_instructions`,
/// like the in-order model.
pub fn run_program_ooo(
    cfg: &VpConfig,
    mem: &mut Memory,
    program: &Program,
    max_instructions: u64,
) -> ScalarRunStats {
    let mut regs = [0i64; NUM_REGS];
    let mut reg_ready = [0u64; NUM_REGS];
    let mut cache = Cache::new(cfg.scalar_cache);
    let mut stats = ScalarRunStats::default();
    let mut pc = 0usize;
    // `fetch_cycle`: the cycle the *next* instruction can enter the window
    // (advanced by branch refills). `issued`: per-cycle issue/port counts.
    let mut fetch_cycle = 0u64;
    let mut finish_time = 0u64;

    // The scheduler below is a simplification that preserves program-order
    // side effects: because the functional update happens at *dispatch*
    // (in program order), timing and semantics stay separable, and the
    // timing layer only needs each instruction's operand-ready cycle.
    //
    // Issue modelling: we process instructions in program order but allow
    // each to issue at `max(operand ready, window-structural time)`, where
    // the structural time models (a) the issue width per cycle, (b) the
    // memory ports per cycle, and (c) the bounded window: an instruction
    // cannot issue before the instruction `window` slots ahead of it has
    // issued (its slot must have freed).
    let mut issue_times: std::collections::VecDeque<u64> = Default::default();
    let mut width_used: std::collections::HashMap<u64, u64> = Default::default();
    let mut ports_used: std::collections::HashMap<u64, u64> = Default::default();

    while pc < program.code.len() {
        if stats.instructions >= max_instructions {
            stats.capped = true;
            break;
        }
        let instr = program.code[pc];
        stats.instructions += 1;

        // Operand readiness (RAW only — renaming removes WAR/WAW).
        let (src1, src2) = sources(&instr);
        let mut ready = fetch_cycle;
        if let Some(r) = src1 {
            ready = ready.max(reg_ready[r as usize]);
        }
        if let Some(r) = src2 {
            ready = ready.max(reg_ready[r as usize]);
        }
        // Window-structural limit: the slot frees when the instruction
        // `OOO_WINDOW` back has issued.
        if issue_times.len() == OOO_WINDOW {
            let oldest = issue_times.pop_front().expect("window full");
            ready = ready.max(oldest);
            // Cycles before the window's oldest issue can never be
            // scheduled into again; prune them so the per-cycle maps stay
            // O(window) instead of O(dynamic instructions).
            if width_used.len() > 4 * OOO_WINDOW {
                width_used.retain(|&cyc, _| cyc >= oldest);
                ports_used.retain(|&cyc, _| cyc >= oldest);
            }
        }
        let is_mem = matches!(instr, SInstr::Ld(..) | SInstr::St(..));
        // Find the first cycle ≥ ready with issue width (and a port) free.
        let mut t = ready;
        loop {
            let w = width_used.entry(t).or_insert(0);
            if *w < cfg.scalar_issue_width {
                if is_mem {
                    let p = ports_used.entry(t).or_insert(0);
                    if *p < cfg.scalar_mem_ports {
                        *p += 1;
                    } else {
                        t += 1;
                        continue;
                    }
                }
                *width_used.entry(t).or_insert(0) += 1;
                break;
            }
            t += 1;
        }
        let issue = t;
        issue_times.push_back(issue);

        // Functional execution + result latency.
        let mut next_pc = pc + 1;
        match instr {
            SInstr::Li(rd, imm) => {
                regs[rd as usize] = imm;
                reg_ready[rd as usize] = issue + cfg.scalar_alu_latency;
            }
            SInstr::Add(rd, rs, rt) => {
                regs[rd as usize] = regs[rs as usize].wrapping_add(regs[rt as usize]);
                reg_ready[rd as usize] = issue + cfg.scalar_alu_latency;
            }
            SInstr::Addi(rd, rs, imm) => {
                regs[rd as usize] = regs[rs as usize].wrapping_add(imm);
                reg_ready[rd as usize] = issue + cfg.scalar_alu_latency;
            }
            SInstr::Sub(rd, rs, rt) => {
                regs[rd as usize] = regs[rs as usize].wrapping_sub(regs[rt as usize]);
                reg_ready[rd as usize] = issue + cfg.scalar_alu_latency;
            }
            SInstr::Ld(rd, rs, imm) => {
                let addr = (regs[rs as usize] + imm) as u32;
                regs[rd as usize] = mem.read(addr) as i64;
                let lat = cache.access(addr);
                reg_ready[rd as usize] = issue + lat;
                stats.loads += 1;
            }
            SInstr::St(rs, rt, imm) => {
                let addr = (regs[rs as usize] + imm) as u32;
                mem.write(addr, regs[rt as usize] as u32);
                cache.access(addr);
                stats.stores += 1;
            }
            SInstr::Blt(rs, rt, target) => {
                if regs[rs as usize] < regs[rt as usize] {
                    next_pc = target;
                }
            }
            SInstr::Bge(rs, rt, target) => {
                if regs[rs as usize] >= regs[rt as usize] {
                    next_pc = target;
                }
            }
            SInstr::Bne(rs, rt, target) => {
                if regs[rs as usize] != regs[rt as usize] {
                    next_pc = target;
                }
            }
            SInstr::Beq(rs, rt, target) => {
                if regs[rs as usize] == regs[rt as usize] {
                    next_pc = target;
                }
            }
            SInstr::Jmp(target) => next_pc = target,
            SInstr::Halt => {
                finish_time = finish_time.max(issue);
                break;
            }
        }
        if next_pc != pc + 1 {
            // Taken control flow: later instructions fetch after the
            // branch resolves (+ refill penalty).
            fetch_cycle = fetch_cycle.max(issue + 1 + cfg.scalar_branch_penalty);
        }
        finish_time = finish_time.max(issue);
        pc = next_pc;
    }
    stats.cycles = finish_time + 1;
    stats.cache_hits = cache.hits();
    stats.cache_misses = cache.misses();
    stats
}

fn sources(instr: &SInstr) -> (Option<u8>, Option<u8>) {
    match *instr {
        SInstr::Li(..) | SInstr::Jmp(_) | SInstr::Halt => (None, None),
        SInstr::Addi(_, rs, _) | SInstr::Ld(_, rs, _) => (Some(rs), None),
        SInstr::Add(_, rs, rt) | SInstr::Sub(_, rs, rt) | SInstr::St(rs, rt, _) => {
            (Some(rs), Some(rt))
        }
        SInstr::Blt(rs, rt, _)
        | SInstr::Bge(rs, rt, _)
        | SInstr::Bne(rs, rt, _)
        | SInstr::Beq(rs, rt, _) => (Some(rs), Some(rt)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::asm::Asm;
    use crate::scalar::cpu::run_program;
    use crate::scalar::interp::run_functional;

    fn cfg() -> VpConfig {
        VpConfig::paper()
    }

    fn histogram_like(n: usize) -> Program {
        let mut a = Asm::new();
        a.li(1, 0).li(2, n as i64).li(3, 0).li(4, 500);
        let top = a.label();
        a.bind(top);
        a.ld(5, 3, 0);
        a.add(6, 4, 5);
        a.ld(7, 6, 0);
        a.addi(7, 7, 1);
        a.st(6, 0, 7);
        a.addi(3, 3, 1);
        a.addi(1, 1, 1);
        a.blt(1, 2, top);
        a.halt();
        a.finish()
    }

    #[test]
    fn ooo_is_functionally_identical_to_the_oracle() {
        let p = histogram_like(64);
        let mut m1 = Memory::new();
        m1.write_block(0, &(0..64u32).map(|k| k % 7).collect::<Vec<_>>());
        let mut m2 = m1.clone();
        run_functional(&mut m1, &p, 10_000);
        run_program_ooo(&cfg(), &mut m2, &p, 10_000);
        for addr in 495..520u32 {
            assert_eq!(m1.read(addr), m2.read(addr));
        }
    }

    #[test]
    fn ooo_is_at_least_as_fast_as_in_order() {
        let p = histogram_like(256);
        let run_io = || {
            let mut mem = Memory::new();
            mem.write_block(0, &(0..256u32).map(|k| k % 19).collect::<Vec<_>>());
            run_program(&cfg(), &mut mem, &p, 100_000).cycles
        };
        let run_ooo = || {
            let mut mem = Memory::new();
            mem.write_block(0, &(0..256u32).map(|k| k % 19).collect::<Vec<_>>());
            run_program_ooo(&cfg(), &mut mem, &p, 100_000).cycles
        };
        let (io, ooo) = (run_io(), run_ooo());
        assert!(ooo <= io, "OoO {ooo} slower than in-order {io}");
        // And it genuinely overlaps iterations: meaningfully faster.
        assert!(ooo as f64 <= 0.9 * io as f64, "OoO {ooo} vs in-order {io}");
    }

    #[test]
    fn window_bounds_the_overlap() {
        // With a full window, issue cannot run unboundedly ahead: total
        // cycles ≥ instructions / issue width regardless of independence.
        let mut a = Asm::new();
        for i in 0..200u8 {
            a.li(1 + (i % 20), i as i64);
        }
        a.halt();
        let p = a.finish();
        let mut mem = Memory::new();
        let st = run_program_ooo(&cfg(), &mut mem, &p, 10_000);
        assert!(st.cycles >= st.instructions.div_ceil(cfg().scalar_issue_width));
    }

    #[test]
    fn mem_ports_still_limit_ooo() {
        // A stream of independent loads is port-bound: 64 loads on one
        // port need ≥ 64 cycles; two ports roughly halve that. (On
        // mixed code the port count is second-order in this model — the
        // greedy width allocator can even invert it slightly.)
        let mut a = Asm::new();
        a.li(1, 0);
        for i in 0..64u8 {
            a.ld(2 + (i % 20), 1, i as i64);
        }
        a.halt();
        let p = a.finish();
        let run_with = |ports: u64| {
            let mut c = cfg();
            c.scalar_mem_ports = ports;
            let mut mem = Memory::new();
            run_program_ooo(&c, &mut mem, &p, 10_000).cycles
        };
        let one = run_with(1);
        let two = run_with(2);
        assert!(one >= 64, "one port must serialize 64 loads, got {one}");
        assert!(two < one, "two ports must beat one: {two} !< {one}");
    }
}
