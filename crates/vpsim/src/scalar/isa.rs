//! The scalar mini-ISA: a RISC subset sufficient for the paper's scalar
//! loops (address arithmetic, word loads/stores, compare-and-branch).

/// A scalar register name (32 registers; `r0` is general-purpose here,
/// not hard-wired to zero).
pub type Reg = u8;

/// Number of scalar registers.
pub const NUM_REGS: usize = 32;

/// One scalar instruction. Word-granular memory addressing (the machine
/// is a 32-bit-word memory); branch targets are instruction indices,
/// resolved by the assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SInstr {
    /// `rd <- imm`
    Li(Reg, i64),
    /// `rd <- rs + rt`
    Add(Reg, Reg, Reg),
    /// `rd <- rs + imm`
    Addi(Reg, Reg, i64),
    /// `rd <- rs - rt`
    Sub(Reg, Reg, Reg),
    /// `rd <- mem[rs + imm]` (word address)
    Ld(Reg, Reg, i64),
    /// `mem[rs + imm] <- rt` (word address)
    St(Reg, Reg, i64),
    /// branch to `target` if `rs < rt`
    Blt(Reg, Reg, usize),
    /// branch to `target` if `rs >= rt`
    Bge(Reg, Reg, usize),
    /// branch to `target` if `rs != rt`
    Bne(Reg, Reg, usize),
    /// branch to `target` if `rs == rt`
    Beq(Reg, Reg, usize),
    /// unconditional jump
    Jmp(usize),
    /// stop execution
    Halt,
}

/// An assembled scalar program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The instruction stream (branch targets already resolved).
    pub code: Vec<SInstr>,
}

impl Program {
    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}
