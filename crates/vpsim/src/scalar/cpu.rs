//! The in-order 4-way scalar pipeline: functional interpretation of a
//! [`Program`] over simulated [`Memory`], with cycle timing.
//!
//! Timing rules (per DESIGN.md §2.6):
//! * up to `scalar_issue_width` instructions issue per cycle, in order;
//! * an instruction stalls until its source registers are ready (RAW);
//! * loads/stores additionally compete for `scalar_mem_ports` per cycle;
//! * load results are ready after the L1 access latency (hit or miss);
//! * ALU results are ready after `scalar_alu_latency`;
//! * a taken branch costs `scalar_branch_penalty` extra cycles and ends
//!   the issue group (no issue past a taken branch in the same cycle).

use super::cache::Cache;
use super::isa::{Program, SInstr, NUM_REGS};
use crate::config::VpConfig;
use crate::mem::Memory;

/// Statistics of one scalar program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarRunStats {
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// L1 hits.
    pub cache_hits: u64,
    /// L1 misses.
    pub cache_misses: u64,
    /// The run hit its `max_instructions` cap before halting. On a valid
    /// program this never happens; corrupt inputs (e.g. retargeted row
    /// pointers) can drive loop bounds past the cap, and callers must
    /// treat a capped run as a corrupt-input error.
    pub capped: bool,
}

/// Executes `program` to `Halt` (or the `max_instructions` safety cap),
/// reading and writing `mem`. Returns the run statistics; register state
/// is internal to the run.
///
/// A program that runs past `max_instructions` without halting stops
/// there with [`ScalarRunStats::capped`] set — corrupt inputs can drive
/// loop bounds arbitrarily high, so this must not panic.
pub fn run_program(
    cfg: &VpConfig,
    mem: &mut Memory,
    program: &Program,
    max_instructions: u64,
) -> ScalarRunStats {
    let mut regs = [0i64; NUM_REGS];
    let mut ready = [0u64; NUM_REGS];
    let mut cache = Cache::new(cfg.scalar_cache);
    let mut pc = 0usize;
    let mut cycle = 0u64;
    let mut slots = 0u64;
    let mut mem_ports = 0u64;
    let mut stats = ScalarRunStats::default();

    fn advance_to(cycle: &mut u64, slots: &mut u64, ports: &mut u64, t: u64) {
        if t > *cycle {
            *cycle = t;
            *slots = 0;
            *ports = 0;
        }
    }

    while pc < program.code.len() {
        if stats.instructions >= max_instructions {
            stats.capped = true;
            break;
        }
        let instr = program.code[pc];
        // Source operands for the RAW stall.
        let (src1, src2) = match instr {
            SInstr::Li(..) | SInstr::Jmp(_) | SInstr::Halt => (None, None),
            SInstr::Addi(_, rs, _) | SInstr::Ld(_, rs, _) => (Some(rs), None),
            SInstr::Add(_, rs, rt) | SInstr::Sub(_, rs, rt) => (Some(rs), Some(rt)),
            SInstr::St(rs, rt, _) => (Some(rs), Some(rt)),
            SInstr::Blt(rs, rt, _)
            | SInstr::Bge(rs, rt, _)
            | SInstr::Bne(rs, rt, _)
            | SInstr::Beq(rs, rt, _) => (Some(rs), Some(rt)),
        };
        let mut earliest = cycle;
        if let Some(r) = src1 {
            earliest = earliest.max(ready[r as usize]);
        }
        if let Some(r) = src2 {
            earliest = earliest.max(ready[r as usize]);
        }
        advance_to(&mut cycle, &mut slots, &mut mem_ports, earliest);
        if slots == cfg.scalar_issue_width {
            {
                let t = cycle + 1;
                advance_to(&mut cycle, &mut slots, &mut mem_ports, t);
            }
        }
        let is_mem = matches!(instr, SInstr::Ld(..) | SInstr::St(..));
        if is_mem && mem_ports == cfg.scalar_mem_ports {
            {
                let t = cycle + 1;
                advance_to(&mut cycle, &mut slots, &mut mem_ports, t);
            }
        }
        let issue = cycle;
        slots += 1;
        if is_mem {
            mem_ports += 1;
        }
        stats.instructions += 1;

        let mut next_pc = pc + 1;
        match instr {
            SInstr::Li(rd, imm) => {
                regs[rd as usize] = imm;
                ready[rd as usize] = issue + cfg.scalar_alu_latency;
            }
            SInstr::Add(rd, rs, rt) => {
                regs[rd as usize] = regs[rs as usize].wrapping_add(regs[rt as usize]);
                ready[rd as usize] = issue + cfg.scalar_alu_latency;
            }
            SInstr::Addi(rd, rs, imm) => {
                regs[rd as usize] = regs[rs as usize].wrapping_add(imm);
                ready[rd as usize] = issue + cfg.scalar_alu_latency;
            }
            SInstr::Sub(rd, rs, rt) => {
                regs[rd as usize] = regs[rs as usize].wrapping_sub(regs[rt as usize]);
                ready[rd as usize] = issue + cfg.scalar_alu_latency;
            }
            SInstr::Ld(rd, rs, imm) => {
                let addr = (regs[rs as usize] + imm) as u32;
                regs[rd as usize] = mem.read(addr) as i64;
                let lat = cache.access(addr);
                ready[rd as usize] = issue + lat;
                stats.loads += 1;
            }
            SInstr::St(rs, rt, imm) => {
                let addr = (regs[rs as usize] + imm) as u32;
                mem.write(addr, regs[rt as usize] as u32);
                // Write-allocate: the access charges the port and warms
                // the cache; the store itself retires without a consumer.
                cache.access(addr);
                stats.stores += 1;
            }
            SInstr::Blt(rs, rt, t) => {
                if regs[rs as usize] < regs[rt as usize] {
                    next_pc = t;
                }
            }
            SInstr::Bge(rs, rt, t) => {
                if regs[rs as usize] >= regs[rt as usize] {
                    next_pc = t;
                }
            }
            SInstr::Bne(rs, rt, t) => {
                if regs[rs as usize] != regs[rt as usize] {
                    next_pc = t;
                }
            }
            SInstr::Beq(rs, rt, t) => {
                if regs[rs as usize] == regs[rt as usize] {
                    next_pc = t;
                }
            }
            SInstr::Jmp(t) => next_pc = t,
            SInstr::Halt => break,
        }
        // Taken control flow ends the issue group and pays the penalty.
        let taken = next_pc != pc + 1;
        if taken {
            advance_to(
                &mut cycle,
                &mut slots,
                &mut mem_ports,
                issue + 1 + cfg.scalar_branch_penalty,
            );
        }
        pc = next_pc;
    }
    stats.cycles = cycle + 1;
    stats.cache_hits = cache.hits();
    stats.cache_misses = cache.misses();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::asm::Asm;

    fn cfg() -> VpConfig {
        VpConfig::paper()
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut a = Asm::new();
        a.li(1, 5).li(2, 7).add(3, 1, 2).st(0, 100, 3).halt();
        let mut mem = Memory::new();
        let st = run_program(&cfg(), &mut mem, &a.finish(), 1000);
        assert_eq!(mem.read(100), 12);
        assert_eq!(st.instructions, 5);
        assert_eq!(st.stores, 1);
    }

    #[test]
    fn loop_executes_correct_count() {
        // for i in 0..10 { mem[200+i] = i }
        let mut a = Asm::new();
        a.li(1, 0).li(2, 10).li(3, 200);
        let top = a.label();
        a.bind(top);
        a.add(4, 3, 1);
        a.st(4, 0, 1);
        a.addi(1, 1, 1);
        a.blt(1, 2, top);
        a.halt();
        let mut mem = Memory::new();
        let st = run_program(&cfg(), &mut mem, &a.finish(), 10_000);
        for i in 0..10u32 {
            assert_eq!(mem.read(200 + i), i);
        }
        assert_eq!(st.stores, 10);
        assert!(st.cycles > 10, "loop cannot be free");
    }

    #[test]
    fn load_dependence_stalls() {
        // Dependent chain: ld r1; addi r2 <- r1. Cold miss: ~22 cycles.
        let mut a = Asm::new();
        a.li(1, 0).ld(2, 1, 50).addi(3, 2, 1).halt();
        let mut mem = Memory::new();
        mem.write(50, 9);
        let st = run_program(&cfg(), &mut mem, &a.finish(), 100);
        // The addi cannot issue before the cold-miss load returns.
        assert!(st.cycles >= 22, "cycles = {}", st.cycles);
        assert_eq!(st.cache_misses, 1);
    }

    #[test]
    fn issue_width_limits_throughput() {
        // 16 independent li's: 4-way → ≥ 4 cycles.
        let mut a = Asm::new();
        for i in 0..16u8 {
            a.li(i % 30, i as i64);
        }
        a.halt();
        let mut mem = Memory::new();
        let st = run_program(&cfg(), &mut mem, &a.finish(), 100);
        assert!(st.cycles >= 4, "cycles = {}", st.cycles);
        assert!(st.cycles <= 8, "cycles = {}", st.cycles);
    }

    #[test]
    fn histogram_like_loop_is_functional() {
        // for k in 0..8: mem[300 + mem[100+k]] += 1
        let mut mem = Memory::new();
        mem.write_block(100, &[0, 1, 0, 2, 1, 0, 3, 0]);
        let mut a = Asm::new();
        a.li(1, 0).li(2, 8);
        let top = a.label();
        a.bind(top);
        a.ld(3, 1, 100); // j = JA[k]
        a.addi(4, 3, 300);
        a.ld(5, 4, 0); // cnt = IAT[j]
        a.addi(5, 5, 1);
        a.st(4, 0, 5); // IAT[j] = cnt + 1
        a.addi(1, 1, 1);
        a.blt(1, 2, top);
        a.halt();
        let st = run_program(&cfg(), &mut mem, &a.finish(), 10_000);
        assert_eq!(mem.read_block(300, 4), vec![4, 2, 1, 1]);
        assert_eq!(st.loads, 16);
        assert_eq!(st.stores, 8);
    }

    #[test]
    fn runaway_program_is_capped_not_panicked() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.jmp(top);
        let mut mem = Memory::new();
        let st = run_program(&cfg(), &mut mem, &a.finish(), 100);
        assert!(st.capped);
        assert_eq!(st.instructions, 100);
    }

    #[test]
    fn halting_program_is_not_capped() {
        let mut a = Asm::new();
        a.li(1, 1).halt();
        let mut mem = Memory::new();
        assert!(!run_program(&cfg(), &mut mem, &a.finish(), 100).capped);
    }

    #[test]
    fn branch_penalty_costs_cycles() {
        let run_with = |penalty: u64| {
            let mut c = cfg();
            c.scalar_branch_penalty = penalty;
            let mut a = Asm::new();
            a.li(1, 0).li(2, 100);
            let top = a.label();
            a.bind(top);
            a.addi(1, 1, 1);
            a.blt(1, 2, top);
            a.halt();
            let mut mem = Memory::new();
            run_program(&c, &mut mem, &a.finish(), 10_000).cycles
        };
        assert!(run_with(3) > run_with(0));
    }
}
