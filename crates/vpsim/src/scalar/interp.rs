//! A timing-free functional interpreter for the scalar mini-ISA.
//!
//! This is an *independent oracle* for [`super::cpu::run_program`]: it
//! shares no code with the pipelined interpreter, so property tests can
//! check that the timing model never changes program semantics.

use super::isa::{Program, SInstr, NUM_REGS};
use crate::mem::Memory;

/// Executes `program` functionally (no cycle accounting). Returns the
/// final register file. Panics past `max_instructions` like the timed
/// interpreter.
pub fn run_functional(
    mem: &mut Memory,
    program: &Program,
    max_instructions: u64,
) -> [i64; NUM_REGS] {
    let mut regs = [0i64; NUM_REGS];
    let mut pc = 0usize;
    let mut executed = 0u64;
    while pc < program.code.len() {
        if executed >= max_instructions {
            panic!("scalar program exceeded {max_instructions} instructions without halting");
        }
        executed += 1;
        let mut next = pc + 1;
        match program.code[pc] {
            SInstr::Li(rd, imm) => regs[rd as usize] = imm,
            SInstr::Add(rd, rs, rt) => {
                regs[rd as usize] = regs[rs as usize].wrapping_add(regs[rt as usize])
            }
            SInstr::Addi(rd, rs, imm) => regs[rd as usize] = regs[rs as usize].wrapping_add(imm),
            SInstr::Sub(rd, rs, rt) => {
                regs[rd as usize] = regs[rs as usize].wrapping_sub(regs[rt as usize])
            }
            SInstr::Ld(rd, rs, imm) => {
                regs[rd as usize] = mem.read((regs[rs as usize] + imm) as u32) as i64
            }
            SInstr::St(rs, rt, imm) => {
                mem.write((regs[rs as usize] + imm) as u32, regs[rt as usize] as u32)
            }
            SInstr::Blt(rs, rt, t) => {
                if regs[rs as usize] < regs[rt as usize] {
                    next = t;
                }
            }
            SInstr::Bge(rs, rt, t) => {
                if regs[rs as usize] >= regs[rt as usize] {
                    next = t;
                }
            }
            SInstr::Bne(rs, rt, t) => {
                if regs[rs as usize] != regs[rt as usize] {
                    next = t;
                }
            }
            SInstr::Beq(rs, rt, t) => {
                if regs[rs as usize] == regs[rt as usize] {
                    next = t;
                }
            }
            SInstr::Jmp(t) => next = t,
            SInstr::Halt => break,
        }
        pc = next;
    }
    regs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VpConfig;
    use crate::scalar::asm::Asm;
    use crate::scalar::cpu::run_program;

    /// The two interpreters must leave identical memory for a loop-heavy
    /// program.
    #[test]
    fn functional_and_timed_interpreters_agree() {
        let build = || {
            let mut a = Asm::new();
            a.li(1, 0).li(2, 25).li(3, 500);
            let top = a.label();
            a.bind(top);
            a.add(4, 3, 1);
            a.ld(5, 4, 100); // read from an unwritten region (zeros)
            a.addi(5, 5, 7);
            a.st(4, 0, 5);
            a.addi(1, 1, 1);
            a.blt(1, 2, top);
            a.halt();
            a.finish()
        };
        let mut m1 = Memory::new();
        let mut m2 = Memory::new();
        run_functional(&mut m1, &build(), 10_000);
        run_program(&VpConfig::paper(), &mut m2, &build(), 10_000);
        for addr in 495..530u32 {
            assert_eq!(m1.read(addr), m2.read(addr), "divergence at {addr}");
        }
    }

    #[test]
    fn registers_after_arithmetic() {
        let mut a = Asm::new();
        a.li(1, 10).li(2, 3).sub(3, 1, 2).add(4, 3, 3).halt();
        let mut mem = Memory::new();
        let regs = run_functional(&mut mem, &a.finish(), 100);
        assert_eq!(regs[3], 7);
        assert_eq!(regs[4], 14);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn infinite_loop_is_caught() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.jmp(top);
        let mut mem = Memory::new();
        run_functional(&mut mem, &a.finish(), 50);
    }
}
