//! Simulated main memory: a flat, word-addressed 32-bit store, plus a bump
//! allocator for laying out kernel data structures.
//!
//! Memory is optionally *guarded*: a kernel that knows its footprint calls
//! [`Memory::guard`] with the highest valid address, and every later access
//! past that limit becomes a recorded [`MemFault`] instead of silent
//! growth. The fault is sticky (first one wins) so a kernel can run to
//! completion and report the fault afterwards — mirroring how a hardware
//! walker would trap on the first bad address.

use std::cell::Cell;

/// How guarded memory reacts to an out-of-bounds access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OobPolicy {
    /// Legacy behavior: grow the store on demand, never fault. This is the
    /// default for a bare [`Memory`]; guards are opt-in per kernel.
    #[default]
    Grow,
    /// Record a sticky [`MemFault`]; OOB reads return [`POISON_WORD`] and
    /// OOB writes are dropped. The engine surfaces the fault as a typed
    /// error after the run.
    Trap,
    /// Like [`OobPolicy::Trap`], but the caller is expected to let the run
    /// finish and catch the poison in verification rather than surface the
    /// fault eagerly.
    Poison,
}

/// The sentinel returned by out-of-bounds reads under a guard. Chosen to be
/// loud: as a pointer it is far out of range, as an f32 it is a huge
/// negative number, so poisoned data cannot masquerade as a clean result.
pub const POISON_WORD: u32 = 0xDEAD_BEEF;

/// One recorded out-of-bounds access against a guarded [`Memory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The offending word address.
    pub addr: u32,
    /// The guard limit in force (first invalid address).
    pub limit: u32,
    /// True for a store, false for a load.
    pub write: bool,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out-of-bounds {} at word {:#x} (guard limit {:#x})",
            if self.write { "store" } else { "load" },
            self.addr,
            self.limit
        )
    }
}

/// Word-addressed 32-bit main memory. Grows on demand so tests never need
//  to size it up front.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    words: Vec<u32>,
    limit: Option<u32>,
    policy: OobPolicy,
    // Cell: reads take `&self` but must still be able to record the fault.
    fault: Cell<Option<MemFault>>,
    oob_events: Cell<u64>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// A memory pre-sized to `capacity_words` zeroed words.
    pub fn with_capacity(capacity_words: usize) -> Self {
        Memory {
            words: vec![0; capacity_words],
            ..Memory::default()
        }
    }

    /// Current size in words (highest initialized address + 1).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no word has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Arms the guard: addresses `>= limit` become out-of-bounds under
    /// `policy` ([`OobPolicy::Grow`] disarms). Also clears any sticky fault.
    pub fn guard(&mut self, limit: u32, policy: OobPolicy) {
        self.limit = if policy == OobPolicy::Grow {
            None
        } else {
            Some(limit)
        };
        self.policy = policy;
        self.clear_fault();
    }

    /// The first out-of-bounds access recorded since the last
    /// [`Memory::clear_fault`], if any.
    pub fn fault(&self) -> Option<MemFault> {
        self.fault.get()
    }

    /// Total out-of-bounds accesses recorded (not just the first).
    pub fn oob_events(&self) -> u64 {
        self.oob_events.get()
    }

    /// Forgets the sticky fault and the event count.
    pub fn clear_fault(&mut self) {
        self.fault.set(None);
        self.oob_events.set(0);
    }

    /// Records an OOB access; returns true when the access must be diverted
    /// (poison read / dropped write).
    fn trip(&self, addr: u32, write: bool) -> bool {
        match self.limit {
            Some(limit) if addr >= limit => {
                self.oob_events.set(self.oob_events.get() + 1);
                if self.fault.get().is_none() {
                    self.fault.set(Some(MemFault { addr, limit, write }));
                }
                true
            }
            _ => false,
        }
    }

    fn ensure(&mut self, addr: u32) {
        if addr as usize >= self.words.len() {
            self.words.resize(addr as usize + 1, 0);
        }
    }

    /// Reads one word (unwritten addresses read as 0; guarded OOB reads
    /// record a fault and return [`POISON_WORD`]).
    pub fn read(&self, addr: u32) -> u32 {
        if self.trip(addr, false) {
            return POISON_WORD;
        }
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// Writes one word, growing the store if necessary. Guarded OOB writes
    /// record a fault and are dropped.
    pub fn write(&mut self, addr: u32, value: u32) {
        if self.trip(addr, true) {
            return;
        }
        self.ensure(addr);
        self.words[addr as usize] = value;
    }

    /// Reads `n` consecutive words starting at `addr`.
    pub fn read_block(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|k| self.read(addr + k as u32)).collect()
    }

    /// Writes a block of consecutive words starting at `addr`.
    pub fn write_block(&mut self, addr: u32, data: &[u32]) {
        for (k, &w) in data.iter().enumerate() {
            self.write(addr + k as u32, w);
        }
    }

    /// Silently XORs `mask` into the word at `addr`, bypassing the guard
    /// and all fault accounting — the soft-error back door of the fault
    /// injector ([`crate::MidRunFlip`]). Returns false (and does nothing)
    /// when the address was never materialized: there is no stored charge
    /// to corrupt.
    pub fn corrupt(&mut self, addr: u32, mask: u32) -> bool {
        match self.words.get_mut(addr as usize) {
            Some(w) => {
                *w ^= mask;
                true
            }
            None => false,
        }
    }

    /// Reads a word as `f32` (bit cast).
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read(addr))
    }

    /// Writes an `f32` word (bit cast).
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write(addr, value.to_bits());
    }
}

/// Bump allocator over [`Memory`] addresses — the kernels use it to place
/// their arrays like a program's loader/heap would.
#[derive(Debug, Clone)]
pub struct Allocator {
    next: u32,
}

impl Allocator {
    /// Starts allocating at `base` (word address).
    pub fn new(base: u32) -> Self {
        Allocator { next: base }
    }

    /// Reserves `words` consecutive words, returns their base address.
    pub fn alloc(&mut self, words: usize) -> u32 {
        let addr = self.next;
        self.next = self
            .next
            .checked_add(words as u32)
            .expect("simulated address space exhausted");
        addr
    }

    /// Reserves with the start rounded up to `align` words.
    pub fn alloc_aligned(&mut self, words: usize, align: u32) -> u32 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.next = (self.next + align - 1) & !(align - 1);
        self.alloc(words)
    }

    /// Next free address (watermark).
    pub fn watermark(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write(100, 42);
        assert_eq!(m.read(100), 42);
        assert_eq!(m.read(99), 0);
        assert_eq!(m.len(), 101);
    }

    #[test]
    fn unwritten_reads_are_zero() {
        let m = Memory::new();
        assert_eq!(m.read(123456), 0);
    }

    #[test]
    fn block_round_trip() {
        let mut m = Memory::new();
        m.write_block(10, &[1, 2, 3]);
        assert_eq!(m.read_block(9, 5), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn f32_round_trip() {
        let mut m = Memory::new();
        m.write_f32(5, -3.25);
        assert_eq!(m.read_f32(5), -3.25);
    }

    #[test]
    fn allocator_bumps_and_aligns() {
        let mut a = Allocator::new(10);
        assert_eq!(a.alloc(3), 10);
        assert_eq!(a.alloc_aligned(4, 8), 16);
        assert_eq!(a.watermark(), 20);
    }

    #[test]
    fn empty_block_write_is_noop() {
        let mut m = Memory::new();
        m.write_block(50, &[]);
        assert!(m.is_empty());
    }

    #[test]
    fn unguarded_memory_never_faults() {
        let mut m = Memory::new();
        m.write(1_000_000, 7);
        assert_eq!(m.read(1_000_000), 7);
        assert_eq!(m.fault(), None);
        assert_eq!(m.oob_events(), 0);
    }

    #[test]
    fn guarded_read_poisons_and_records_first_fault() {
        let mut m = Memory::with_capacity(8);
        m.guard(8, OobPolicy::Trap);
        assert_eq!(m.read(3), 0);
        assert_eq!(m.read(8), POISON_WORD);
        assert_eq!(m.read(100), POISON_WORD);
        assert_eq!(
            m.fault(),
            Some(MemFault {
                addr: 8,
                limit: 8,
                write: false
            })
        );
        assert_eq!(m.oob_events(), 2);
    }

    #[test]
    fn guarded_write_is_dropped() {
        let mut m = Memory::with_capacity(4);
        m.guard(4, OobPolicy::Poison);
        m.write(2, 11);
        m.write(9, 99);
        assert_eq!(m.len(), 4, "OOB write must not grow the store");
        assert_eq!(m.fault().map(|f| (f.addr, f.write)), Some((9, true)));
    }

    #[test]
    fn guarded_block_write_keeps_in_bounds_prefix() {
        let mut m = Memory::with_capacity(4);
        m.guard(4, OobPolicy::Trap);
        m.write_block(2, &[1, 2, 3, 4]);
        assert_eq!(m.read_block(0, 4), vec![0, 0, 1, 2]);
        assert_eq!(m.oob_events(), 2);
    }

    #[test]
    fn rearming_the_guard_clears_the_fault() {
        let mut m = Memory::with_capacity(2);
        m.guard(2, OobPolicy::Trap);
        m.read(5);
        assert!(m.fault().is_some());
        m.guard(16, OobPolicy::Trap);
        assert!(m.fault().is_none());
        assert_eq!(m.read(5), 0);
        m.guard(0, OobPolicy::Grow);
        m.write(1_000, 1);
        assert!(m.fault().is_none());
    }

    #[test]
    fn fault_display_names_the_access() {
        let f = MemFault {
            addr: 0x40,
            limit: 0x10,
            write: true,
        };
        assert!(f.to_string().contains("store"));
        assert!(f.to_string().contains("0x40"));
    }
}
