//! Simulated main memory: a flat, word-addressed 32-bit store, plus a bump
//! allocator for laying out kernel data structures.

/// Word-addressed 32-bit main memory. Grows on demand so tests never need
//  to size it up front.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    words: Vec<u32>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Self {
        Memory { words: Vec::new() }
    }

    /// A memory pre-sized to `capacity_words` zeroed words.
    pub fn with_capacity(capacity_words: usize) -> Self {
        Memory {
            words: vec![0; capacity_words],
        }
    }

    /// Current size in words (highest initialized address + 1).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no word has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    fn ensure(&mut self, addr: u32) {
        if addr as usize >= self.words.len() {
            self.words.resize(addr as usize + 1, 0);
        }
    }

    /// Reads one word (unwritten addresses read as 0).
    pub fn read(&self, addr: u32) -> u32 {
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// Writes one word, growing the store if necessary.
    pub fn write(&mut self, addr: u32, value: u32) {
        self.ensure(addr);
        self.words[addr as usize] = value;
    }

    /// Reads `n` consecutive words starting at `addr`.
    pub fn read_block(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|k| self.read(addr + k as u32)).collect()
    }

    /// Writes a block of consecutive words starting at `addr`.
    pub fn write_block(&mut self, addr: u32, data: &[u32]) {
        if data.is_empty() {
            return;
        }
        self.ensure(addr + data.len() as u32 - 1);
        self.words[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Reads a word as `f32` (bit cast).
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read(addr))
    }

    /// Writes an `f32` word (bit cast).
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write(addr, value.to_bits());
    }
}

/// Bump allocator over [`Memory`] addresses — the kernels use it to place
/// their arrays like a program's loader/heap would.
#[derive(Debug, Clone)]
pub struct Allocator {
    next: u32,
}

impl Allocator {
    /// Starts allocating at `base` (word address).
    pub fn new(base: u32) -> Self {
        Allocator { next: base }
    }

    /// Reserves `words` consecutive words, returns their base address.
    pub fn alloc(&mut self, words: usize) -> u32 {
        let addr = self.next;
        self.next = self
            .next
            .checked_add(words as u32)
            .expect("simulated address space exhausted");
        addr
    }

    /// Reserves with the start rounded up to `align` words.
    pub fn alloc_aligned(&mut self, words: usize, align: u32) -> u32 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.next = (self.next + align - 1) & !(align - 1);
        self.alloc(words)
    }

    /// Next free address (watermark).
    pub fn watermark(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write(100, 42);
        assert_eq!(m.read(100), 42);
        assert_eq!(m.read(99), 0);
        assert_eq!(m.len(), 101);
    }

    #[test]
    fn unwritten_reads_are_zero() {
        let m = Memory::new();
        assert_eq!(m.read(123456), 0);
    }

    #[test]
    fn block_round_trip() {
        let mut m = Memory::new();
        m.write_block(10, &[1, 2, 3]);
        assert_eq!(m.read_block(9, 5), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn f32_round_trip() {
        let mut m = Memory::new();
        m.write_f32(5, -3.25);
        assert_eq!(m.read_f32(5), -3.25);
    }

    #[test]
    fn allocator_bumps_and_aligns() {
        let mut a = Allocator::new(10);
        assert_eq!(a.alloc(3), 10);
        assert_eq!(a.alloc_aligned(4, 8), 16);
        assert_eq!(a.watermark(), 20);
    }

    #[test]
    fn empty_block_write_is_noop() {
        let mut m = Memory::new();
        m.write_block(50, &[]);
        assert!(m.is_empty());
    }
}
