//! Cycle and instruction accounting for the vector engine.

/// Aggregate statistics of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Vector instructions issued.
    pub instructions: u64,
    /// Contiguous memory instructions (loads + stores).
    pub mem_contig_ops: u64,
    /// Indexed memory instructions (gathers + scatters).
    pub mem_indexed_ops: u64,
    /// Vector ALU instructions.
    pub alu_ops: u64,
    /// Instructions routed to the STM functional unit.
    pub stm_ops: u64,
    /// 32-bit words moved to/from main memory by vector instructions.
    pub mem_words: u64,
    /// Elements processed across all vector instructions.
    pub elements: u64,
    /// Cycles charged as scalar loop/control overhead.
    pub overhead_cycles: u64,
    /// Cycles spent in scalar-core phases (added via `Engine::advance`).
    pub scalar_cycles: u64,
    /// Out-of-bounds accesses recorded by the guarded memory (0 on clean
    /// runs; populated via `Engine::stats_snapshot`).
    pub mem_oob_events: u64,
}

impl EngineStats {
    /// Merges another stats block into this one (used when a kernel runs
    /// several engine phases).
    pub fn merge(&mut self, other: &EngineStats) {
        self.instructions += other.instructions;
        self.mem_contig_ops += other.mem_contig_ops;
        self.mem_indexed_ops += other.mem_indexed_ops;
        self.alu_ops += other.alu_ops;
        self.stm_ops += other.stm_ops;
        self.mem_words += other.mem_words;
        self.elements += other.elements;
        self.overhead_cycles += other.overhead_cycles;
        self.scalar_cycles += other.scalar_cycles;
        self.mem_oob_events += other.mem_oob_events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = EngineStats {
            instructions: 2,
            mem_words: 10,
            ..Default::default()
        };
        let b = EngineStats {
            instructions: 3,
            alu_ops: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 5);
        assert_eq!(a.mem_words, 10);
        assert_eq!(a.alu_ops, 1);
    }
}
