//! Cycle and instruction accounting for the vector engine.

/// Aggregate statistics of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Vector instructions issued.
    pub instructions: u64,
    /// Contiguous memory instructions (loads + stores).
    pub mem_contig_ops: u64,
    /// Indexed memory instructions (gathers + scatters).
    pub mem_indexed_ops: u64,
    /// Vector ALU instructions.
    pub alu_ops: u64,
    /// Instructions routed to the STM functional unit.
    pub stm_ops: u64,
    /// 32-bit words moved to/from main memory by vector instructions.
    pub mem_words: u64,
    /// Elements processed across all vector instructions.
    pub elements: u64,
    /// Cycles charged as scalar loop/control overhead.
    pub overhead_cycles: u64,
    /// Cycles spent in scalar-core phases (added via `Engine::advance`).
    pub scalar_cycles: u64,
    /// Out-of-bounds accesses recorded by the guarded memory (0 on clean
    /// runs; populated via `Engine::stats_snapshot`).
    pub mem_oob_events: u64,
}

impl EngineStats {
    /// Merges another stats block into this one (used when a kernel runs
    /// several engine phases).
    pub fn merge(&mut self, other: &EngineStats) {
        self.instructions += other.instructions;
        self.mem_contig_ops += other.mem_contig_ops;
        self.mem_indexed_ops += other.mem_indexed_ops;
        self.alu_ops += other.alu_ops;
        self.stm_ops += other.stm_ops;
        self.mem_words += other.mem_words;
        self.elements += other.elements;
        self.overhead_cycles += other.overhead_cycles;
        self.scalar_cycles += other.scalar_cycles;
        self.mem_oob_events += other.mem_oob_events;
    }
}

/// Where the cycles of one functional-unit port went, partitioned into
/// six disjoint buckets that sum to the engine total (checked by
/// [`StallBreakdown::check_conservation`]):
///
/// * `busy` — the port streamed elements at the pace its timing model
///   allows with every operand already available;
/// * `chain_wait` — the port held an instruction whose completion was
///   delayed past that pace by operand readiness (vector chaining);
/// * `port_wait` — the port sat idle because the in-order front end was
///   blocked waiting for *another* port to free;
/// * `stm_wait` — the front end was blocked on an STM barrier
///   (`Engine::stall_until`, the fill-before-read hand-off);
/// * `scalar_wait` — the front end was executing scalar/control code
///   (loop overhead, serialized scalar-core phases);
/// * `idle` — no instruction for the port and the front end was free
///   (the catch-all remainder, including issue-slot cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallCauses {
    /// Cycles the port streamed at its unconstrained pace.
    pub busy: u64,
    /// Extra occupancy caused by waiting on chained operands.
    pub chain_wait: u64,
    /// Idle cycles while the front end waited on another busy port.
    pub port_wait: u64,
    /// Idle cycles while the front end waited on an STM barrier.
    pub stm_wait: u64,
    /// Idle cycles while the front end ran scalar/control code.
    pub scalar_wait: u64,
    /// Remaining idle cycles (no instruction, front end free).
    pub idle: u64,
}

impl StallCauses {
    /// Sum of all six buckets — equals the engine total when the
    /// accounting conserves cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.chain_wait + self.port_wait + self.stm_wait + self.scalar_wait + self.idle
    }

    /// Occupancy of the port (busy + chain wait) — the quantity the
    /// engine's coarse [`crate::trace::FuBusy`] accounting tracks.
    pub fn occupancy(&self) -> u64 {
        self.busy + self.chain_wait
    }
}

/// Per-port stall-cause breakdown of one engine run: one
/// [`StallCauses`] row per memory port plus one each for the ALU and
/// the STM, all conservation-checked against the run total `cycles`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// One row per vector memory port, in port order.
    pub mem: Vec<StallCauses>,
    /// The vector ALU.
    pub alu: StallCauses,
    /// The STM functional-unit port.
    pub stm: StallCauses,
    /// The engine total every row must sum to.
    pub cycles: u64,
}

impl StallBreakdown {
    /// A breakdown for a kernel that ran entirely on the scalar core
    /// (no vector engine): every port spent the whole run waiting on
    /// scalar code, which keeps the conservation invariant uniform
    /// across kernels.
    pub fn scalar_only(mem_ports: usize, cycles: u64) -> Self {
        let row = StallCauses {
            scalar_wait: cycles,
            ..Default::default()
        };
        StallBreakdown {
            mem: vec![row; mem_ports],
            alu: row,
            stm: row,
            cycles,
        }
    }

    /// All rows with stable display names: `mem0`, `mem1`, …, `alu`,
    /// `stm`.
    pub fn units(&self) -> Vec<(String, StallCauses)> {
        let mut out: Vec<(String, StallCauses)> = self
            .mem
            .iter()
            .enumerate()
            .map(|(p, &c)| (format!("mem{p}"), c))
            .collect();
        out.push(("alu".to_string(), self.alu));
        out.push(("stm".to_string(), self.stm));
        out
    }

    /// Checks that every row's six buckets sum exactly to `cycles`.
    pub fn check_conservation(&self) -> Result<(), String> {
        for (name, causes) in self.units() {
            if causes.total() != self.cycles {
                return Err(format!(
                    "{name}: buckets sum to {} but the engine ran {} cycles ({causes:?})",
                    causes.total(),
                    self.cycles
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = EngineStats {
            instructions: 2,
            mem_words: 10,
            ..Default::default()
        };
        let b = EngineStats {
            instructions: 3,
            alu_ops: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 5);
        assert_eq!(a.mem_words, 10);
        assert_eq!(a.alu_ops, 1);
    }

    #[test]
    fn stall_causes_total_and_occupancy() {
        let c = StallCauses {
            busy: 10,
            chain_wait: 5,
            port_wait: 3,
            stm_wait: 2,
            scalar_wait: 1,
            idle: 4,
        };
        assert_eq!(c.total(), 25);
        assert_eq!(c.occupancy(), 15);
    }

    #[test]
    fn scalar_only_breakdown_conserves() {
        let bd = StallBreakdown::scalar_only(2, 100);
        assert_eq!(bd.mem.len(), 2);
        assert_eq!(bd.units().len(), 4);
        bd.check_conservation().unwrap();
        assert_eq!(bd.alu.scalar_wait, 100);
        assert_eq!(bd.stm.idle, 0);
    }

    #[test]
    fn conservation_check_reports_the_broken_unit() {
        let mut bd = StallBreakdown::scalar_only(1, 50);
        bd.alu.idle = 7; // now sums to 57 != 50
        let err = bd.check_conservation().unwrap_err();
        assert!(err.contains("alu"), "{err}");
    }

    #[test]
    fn default_breakdown_is_vacuously_conserved() {
        StallBreakdown::default().check_conservation().unwrap();
        assert!(StallBreakdown::default().mem.is_empty());
    }

    #[test]
    fn unit_names_are_stable() {
        let bd = StallBreakdown::scalar_only(2, 1);
        let names: Vec<String> = bd.units().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["mem0", "mem1", "alu", "stm"]);
    }
}
