//! Micro-benchmarks for the host-level components: the STM unit model,
//! the non-zero locator, HiSM construction/serialization, the software
//! transposes, and the end-to-end simulator throughput.
//!
//! These measure the *implementation* (how fast this library runs on your
//! machine); the paper's *simulated* cycle numbers come from the figure
//! binaries / the `figures` bench target. The timing loop is first-party
//! (`std::time::Instant` with warm-up and a median-of-samples report) so
//! the workspace stays dependency-free and builds offline.

use std::hint::black_box;
use std::time::{Duration, Instant};

use stm_core::kernels::registry;
use stm_core::locator::{first_ones, GateLocator};
use stm_core::unit::{StmConfig, StmUnit};
use stm_hism::{build, transpose as hism_transpose_sw, HismImage};
use stm_sparse::gen::{blocks, random, structured};
use stm_sparse::Csr;

/// Runs `f` repeatedly for ~1 s after a short warm-up and prints the
/// median per-iteration time over 20 samples.
fn bench<F: FnMut()>(name: &str, mut f: F) {
    // Warm-up: run for at least 300 ms to stabilise caches and clocks.
    let warm_until = Instant::now() + Duration::from_millis(300);
    let mut iters_per_sample = 1u64;
    while Instant::now() < warm_until {
        for _ in 0..iters_per_sample {
            f();
        }
        iters_per_sample = (iters_per_sample * 2).min(1 << 20);
    }
    // Calibrate so one sample takes roughly 1/20 of the measurement time.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let budget = Duration::from_secs(1);
    let samples = 20u32;
    let iters = ((budget.as_nanos() / samples as u128) / once.as_nanos()).clamp(1, 1 << 24) as u64;
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{name:<44} {:>12.3} µs/iter  ({iters} iters x {samples} samples)",
        median * 1e6
    );
}

fn dense_block_entries(s: usize, stride: usize) -> Vec<(u8, u8, u32)> {
    let mut v = Vec::new();
    for r in (0..s).step_by(stride) {
        for c in 0..s {
            v.push((r as u8, c as u8, (r * s + c) as u32));
        }
    }
    v
}

fn bench_stm_unit() {
    for (name, stride) in [("dense", 1usize), ("quarter", 4), ("sparse", 16)] {
        let entries = dense_block_entries(64, stride);
        let mut unit = StmUnit::new(StmConfig::default());
        bench(&format!("stm_unit_transpose_block/{name}"), || {
            black_box(unit.transpose_block(black_box(&entries)));
        });
    }
}

fn bench_locator() {
    let bits: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
    bench("nonzero_locator/behavioural", || {
        black_box(first_ones(black_box(&bits), 4));
    });
    let gate = GateLocator::new(64);
    bench("nonzero_locator/gate_level", || {
        black_box(gate.locate(black_box(&bits), 4));
    });
}

fn bench_hism_build() {
    let coo = structured::grid2d_5pt(128, 128);
    bench("hism/build_from_coo", || {
        black_box(build::from_coo(black_box(&coo), 64).unwrap());
    });
    let h = build::from_coo(&coo, 64).unwrap();
    bench("hism/encode_image", || {
        black_box(HismImage::encode(black_box(&h)));
    });
    bench("hism/software_transpose", || {
        black_box(hism_transpose_sw::transpose(black_box(&h)));
    });
}

fn bench_software_transposes() {
    let coo = random::uniform(2048, 2048, 40_000, 77);
    let csr = Csr::from_coo(&coo);
    let h = build::from_coo(&coo, 64).unwrap();
    bench("software_transpose_40k_nnz/csr_pissanetsky", || {
        black_box(black_box(&csr).transpose_pissanetsky());
    });
    bench("software_transpose_40k_nnz/hism_per_block_swap", || {
        black_box(hism_transpose_sw::transpose(black_box(&h)));
    });
}

fn bench_simulator_throughput() {
    // End-to-end kernel simulation through the registry, like the harness.
    let coo = blocks::block_dense(512, 64, 12, 0.8, 5);
    let ctx = registry::ExecCtx::paper();
    for name in ["transpose_hism", "transpose_crs"] {
        let mut kernel = registry::create(name).unwrap();
        kernel.prepare(&coo, &ctx).unwrap();
        bench(&format!("simulator/{name}"), || {
            let mut ctx = registry::ExecCtx::paper();
            black_box(kernel.run(&mut ctx).unwrap());
        });
    }
}

fn bench_micro_model() {
    use stm_core::micro::MicroStm;
    let entries = dense_block_entries(64, 2);
    let mut unit = StmUnit::new(StmConfig::default());
    bench("stm_models/analytic_unit", || {
        black_box(unit.transpose_block(black_box(&entries)));
    });
    let mut micro = MicroStm::new(StmConfig::default());
    bench("stm_models/cycle_stepped_micro", || {
        black_box(micro.transpose_block(black_box(&entries)));
    });
}

fn bench_jd_format() {
    use stm_sparse::Jd;
    let coo = random::power_law(2048, 2048, 16.0, 1.2, 9);
    bench("jd_format/build", || {
        black_box(Jd::from_coo(black_box(&coo)));
    });
    let jd = Jd::from_coo(&coo);
    let x = vec![1.0f32; 2048];
    bench("jd_format/spmv", || {
        black_box(jd.spmv(black_box(&x)).unwrap());
    });
}

fn bench_scalar_core() {
    use stm_core::kernels::histogram::{histogram_max_instructions, histogram_program};
    use stm_vpsim::scalar::run_program;
    use stm_vpsim::{Memory, VpConfig};
    let nnz = 10_000usize;
    let ja: Vec<u32> = (0..nnz as u32)
        .map(|k| k.wrapping_mul(2654435761) % 512)
        .collect();
    let program = histogram_program(0, nnz, 100_000);
    bench("scalar_core_histogram_10k", || {
        let mut mem = Memory::new();
        mem.write_block(0, black_box(&ja));
        black_box(run_program(
            &VpConfig::paper(),
            &mut mem,
            &program,
            histogram_max_instructions(nnz),
        ));
    });
}

fn main() {
    println!("host micro-benchmarks (median of 20 samples, ~1 s each)\n");
    bench_stm_unit();
    bench_locator();
    bench_hism_build();
    bench_software_transposes();
    bench_simulator_throughput();
    bench_micro_model();
    bench_jd_format();
    bench_scalar_core();
}
