//! Criterion micro-benchmarks for the host-level components: the STM unit
//! model, the non-zero locator, HiSM construction/serialization, the
//! software transposes, and the end-to-end simulator throughput.
//!
//! These measure the *implementation* (how fast this library runs on your
//! machine); the paper's *simulated* cycle numbers come from the figure
//! binaries / the `figures` bench target.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stm_core::kernels::{transpose_crs, transpose_hism};
use stm_core::locator::{first_ones, GateLocator};
use stm_core::unit::{StmConfig, StmUnit};
use stm_hism::{build, transpose as hism_transpose_sw, HismImage};
use stm_sparse::gen::{blocks, random, structured};
use stm_sparse::Csr;
use stm_vpsim::VpConfig;

fn dense_block_entries(s: usize, stride: usize) -> Vec<(u8, u8, u32)> {
    let mut v = Vec::new();
    for r in (0..s).step_by(stride) {
        for c in 0..s {
            v.push((r as u8, c as u8, (r * s + c) as u32));
        }
    }
    v
}

fn bench_stm_unit(c: &mut Criterion) {
    let mut g = c.benchmark_group("stm_unit_transpose_block");
    for (name, stride) in [("dense", 1usize), ("quarter", 4), ("sparse", 16)] {
        let entries = dense_block_entries(64, stride);
        g.bench_with_input(BenchmarkId::from_parameter(name), &entries, |b, e| {
            let mut unit = StmUnit::new(StmConfig::default());
            b.iter(|| unit.transpose_block(black_box(e)));
        });
    }
    g.finish();
}

fn bench_locator(c: &mut Criterion) {
    let bits: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
    let mut g = c.benchmark_group("nonzero_locator");
    g.bench_function("behavioural", |b| b.iter(|| first_ones(black_box(&bits), 4)));
    let gate = GateLocator::new(64);
    g.bench_function("gate_level", |b| b.iter(|| gate.locate(black_box(&bits), 4)));
    g.finish();
}

fn bench_hism_build(c: &mut Criterion) {
    let coo = structured::grid2d_5pt(128, 128);
    let mut g = c.benchmark_group("hism");
    g.bench_function("build_from_coo", |b| {
        b.iter(|| build::from_coo(black_box(&coo), 64).unwrap())
    });
    let h = build::from_coo(&coo, 64).unwrap();
    g.bench_function("encode_image", |b| b.iter(|| HismImage::encode(black_box(&h))));
    g.bench_function("software_transpose", |b| {
        b.iter(|| hism_transpose_sw::transpose(black_box(&h)))
    });
    g.finish();
}

fn bench_software_transposes(c: &mut Criterion) {
    let coo = random::uniform(2048, 2048, 40_000, 77);
    let csr = Csr::from_coo(&coo);
    let h = build::from_coo(&coo, 64).unwrap();
    let mut g = c.benchmark_group("software_transpose_40k_nnz");
    g.bench_function("csr_pissanetsky", |b| {
        b.iter(|| black_box(&csr).transpose_pissanetsky())
    });
    g.bench_function("hism_per_block_swap", |b| {
        b.iter(|| hism_transpose_sw::transpose(black_box(&h)))
    });
    g.finish();
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let coo = blocks::block_dense(512, 64, 12, 0.8, 5);
    let h = build::from_coo(&coo, 64).unwrap();
    let img = HismImage::encode(&h);
    let csr = Csr::from_coo(&coo);
    let vp = VpConfig::paper();
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.bench_function("hism_kernel_sim", |b| {
        b.iter(|| transpose_hism(&vp, StmConfig::default(), black_box(&img)))
    });
    g.bench_function("crs_kernel_sim", |b| {
        b.iter(|| transpose_crs(&vp, black_box(&csr)))
    });
    g.finish();
}

fn bench_micro_model(c: &mut Criterion) {
    use stm_core::micro::MicroStm;
    let entries = dense_block_entries(64, 2);
    let mut g = c.benchmark_group("stm_models");
    g.bench_function("analytic_unit", |b| {
        let mut unit = StmUnit::new(StmConfig::default());
        b.iter(|| unit.transpose_block(black_box(&entries)));
    });
    g.bench_function("cycle_stepped_micro", |b| {
        let mut micro = MicroStm::new(StmConfig::default());
        b.iter(|| micro.transpose_block(black_box(&entries)));
    });
    g.finish();
}

fn bench_jd_format(c: &mut Criterion) {
    use stm_sparse::Jd;
    let coo = random::power_law(2048, 2048, 16.0, 1.2, 9);
    let mut g = c.benchmark_group("jd_format");
    g.bench_function("build", |b| b.iter(|| Jd::from_coo(black_box(&coo))));
    let jd = Jd::from_coo(&coo);
    let x = vec![1.0f32; 2048];
    g.bench_function("spmv", |b| b.iter(|| jd.spmv(black_box(&x)).unwrap()));
    g.finish();
}

fn bench_scalar_core(c: &mut Criterion) {
    use stm_core::kernels::histogram::{histogram_max_instructions, histogram_program};
    use stm_vpsim::scalar::run_program;
    use stm_vpsim::Memory;
    let nnz = 10_000usize;
    let ja: Vec<u32> = (0..nnz as u32).map(|k| k.wrapping_mul(2654435761) % 512).collect();
    let program = histogram_program(0, nnz, 100_000);
    c.bench_function("scalar_core_histogram_10k", |b| {
        b.iter(|| {
            let mut mem = Memory::new();
            mem.write_block(0, black_box(&ja));
            run_program(
                &VpConfig::paper(),
                &mut mem,
                &program,
                histogram_max_instructions(nnz),
            )
        })
    });
}

/// Short measurement windows: these are smoke-quality micro-benchmarks;
/// the headline experiment is the `figures` target.
fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_stm_unit,
    bench_locator,
    bench_hism_build,
    bench_software_transposes,
    bench_simulator_throughput,
    bench_micro_model,
    bench_jd_format,
    bench_scalar_core
}
criterion_main!(benches);
