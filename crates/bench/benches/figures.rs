//! `cargo bench` entry point that regenerates every figure of the paper's
//! evaluation (Figs. 10–13 + the speedup summary) in one pass.
//!
//! This is a custom harness (`harness = false`): the "benchmark" is the
//! simulation campaign itself, and its output is the paper's tables. It
//! runs the full 132-matrix suite by default; set `STM_SUITE=quick` for a
//! fast smoke pass.

use stm_bench::fig10::bu_sweep;
use stm_bench::output::{figure_rows, format_table, write_csv, FIGURE_HEADERS};
use stm_bench::{run_set, sets_from_env, MatrixResult, RunConfig, SpeedupSummary};

fn main() {
    // Under `cargo bench` extra args like `--bench` arrive; ignore them.
    let (sets, tag) = sets_from_env();
    let cfg = RunConfig::from_env();
    println!("=== Regenerating the paper's evaluation (suite: {tag}) ===\n");

    // Fig. 10.
    let flat: Vec<&stm_dsab::SuiteEntry> = sets.all().collect();
    let owned: Vec<stm_dsab::SuiteEntry> = flat
        .iter()
        .map(|e| stm_dsab::SuiteEntry {
            name: e.name.clone(),
            coo: e.coo.clone(),
            metrics: e.metrics,
        })
        .collect();
    let bs = [1u64, 2, 4, 8, 16];
    let ls = [1usize, 2, 4, 8];
    let points = bu_sweep(&owned, 64, &bs, &ls);
    println!("Fig. 10 — buffer bandwidth utilization (rows: L, cols: B={bs:?})");
    for (li, &l) in ls.iter().enumerate() {
        let row: Vec<String> = (0..bs.len())
            .map(|bi| format!("{:.3}", points[li * bs.len() + bi].bu))
            .collect();
        println!("  L={l}: {}", row.join("  "));
    }
    let csv: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.l.to_string(), p.b.to_string(), format!("{:.6}", p.bu)])
        .collect();
    write_csv("results/fig10.csv", &["L", "B", "BU"], &csv).expect("results/fig10.csv");
    drop(owned);

    // Figs. 11-13.
    let figures: [(&str, &str, &[stm_dsab::SuiteEntry], &str); 3] = [
        (
            "Fig. 11 — locality set",
            "fig11",
            &sets.by_locality,
            "1.8 / 16.5 / 32.0",
        ),
        (
            "Fig. 12 — ANZ set",
            "fig12",
            &sets.by_anz,
            "11.9 / 20.0 / 28.9",
        ),
        (
            "Fig. 13 — size set",
            "fig13",
            &sets.by_size,
            "3.4 / 15.5 / 28.2",
        ),
    ];
    let mut all: Vec<MatrixResult> = Vec::new();
    for (title, file, set, paper) in figures {
        let results = run_set(&cfg, set);
        let rows = figure_rows(&results, cfg.backend.name());
        println!("\n{title}");
        println!("{}", format_table(&FIGURE_HEADERS, &rows));
        let s = SpeedupSummary::of(&results);
        println!(
            "  speedup {:.1} .. {:.1} avg {:.1}  (paper min/avg/max: {paper})",
            s.min, s.max, s.avg
        );
        write_csv(format!("results/{file}.csv"), &FIGURE_HEADERS, &rows).expect("write figure csv");
        all.extend(results);
    }
    let s = SpeedupSummary::of(&all);
    println!(
        "\nOverall: speedup {:.1} .. {:.1}, average {:.1}  (paper: 1.8 .. 32.0, avg 17.6)",
        s.min, s.max, s.avg
    );
    println!("\nCSV output under results/.");
}
