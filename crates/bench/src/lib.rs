//! The experiment harness: everything needed to regenerate the paper's
//! evaluation (Figs. 10–13 and the headline speedup summary) plus the
//! ablation studies.
//!
//! Figure binaries (run with `--release`; add `--quick` or set
//! `STM_SUITE=quick` for a fast smoke suite, `--jobs N` or `STM_JOBS=N`
//! to size the worker pool — results are identical for every job count):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig10` | buffer bandwidth utilization vs `B` for `L ∈ {1,2,4,8}` |
//! | `fig11` | cycles/nnz + speedup over the locality-sorted set |
//! | `fig12` | same over the ANZ-sorted set |
//! | `fig13` | same over the size-sorted set |
//! | `summary` | per-set and overall speedup min/avg/max |
//! | `ablate` | chaining / entry-width / memory-startup / L×B ablations |
//!
//! Each binary prints an aligned table and writes a CSV under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod fig10;
pub mod harness;
pub mod output;
pub mod resilient;
pub mod trace;

pub use harness::{
    run_batch, run_kernel, run_matrix, run_set, FaultSpec, FormatLeg, MatrixResult, RunConfig,
    RunStatus, SpeedupSummary,
};
pub use resilient::{run_soak, ChaosSpec, SoakConfig, SoakReport};
pub use trace::TraceRollup;

use stm_dsab::{experiment_sets, full_catalogue, quick_catalogue, ExperimentSets};

/// Chooses the suite from the CLI args / environment: `--quick` or
/// `STM_SUITE=quick` selects the reduced catalogue (6 matrices per set),
/// anything else runs the full 132-matrix catalogue with the paper's 10
/// matrices per set.
pub fn sets_from_env() -> (ExperimentSets, &'static str) {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("STM_SUITE")
            .map(|v| v == "quick")
            .unwrap_or(false);
    if quick {
        (experiment_sets(&quick_catalogue(), 6), "quick")
    } else {
        (experiment_sets(&full_catalogue(), 10), "full")
    }
}

/// Parses the worker-thread count from the CLI args / environment:
/// `--jobs N`, `--jobs=N` or `STM_JOBS=N`. `None` (no flag) lets the
/// harness use the machine's parallelism; `--jobs 1` forces serial runs.
pub fn jobs_from_env() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args.next().and_then(|n| n.parse().ok());
        }
        if let Some(n) = a.strip_prefix("--jobs=") {
            return n.parse().ok();
        }
    }
    std::env::var("STM_JOBS").ok().and_then(|n| n.parse().ok())
}

/// Parses the trace output directory from the CLI args / environment:
/// `--trace DIR`, `--trace=DIR` or `STM_TRACE=DIR`. When set, the harness
/// records a structured event trace for every kernel run and writes
/// per-matrix `.jsonl` / `.csv` / `.trace.json` files under the directory
/// (see [`trace`]). `None` (no flag) leaves tracing compiled out.
pub fn trace_dir_from_env() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(d) = a.strip_prefix("--trace=") {
            return Some(std::path::PathBuf::from(d));
        }
    }
    std::env::var("STM_TRACE")
        .ok()
        .map(std::path::PathBuf::from)
}

/// Parses the baseline output path from the CLI args / environment:
/// `--bench-json FILE`, `--bench-json=FILE` or `STM_BENCH_JSON=FILE`.
/// When set, the figure binaries additionally write a machine-readable
/// performance baseline (see [`baseline`]) that `benchdiff` can compare
/// against a committed copy.
pub fn bench_json_from_env() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--bench-json" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(f) = a.strip_prefix("--bench-json=") {
            return Some(std::path::PathBuf::from(f));
        }
    }
    std::env::var("STM_BENCH_JSON")
        .ok()
        .map(std::path::PathBuf::from)
}

/// Parses the storage-format selection from the CLI args / environment:
/// `--format X`, `--format=X` or `STM_FORMAT=X` with
/// `X ∈ {coo,csr,csc,jd,sell,auto}`. When set, the harness runs a third,
/// format-driven transpose leg per matrix (`auto` lets the cost-model
/// autotuner pick per matrix — see `stm_dsab::autotune`); `None` (no
/// flag) keeps the classic two-leg experiment shape. An unrecognized
/// value aborts with exit code 2: a silently dropped format flag would
/// invalidate a whole campaign.
pub fn format_from_env() -> Option<stm_dsab::FormatSel> {
    let mut raw = None;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--format" {
            raw = args.next();
            break;
        }
        if let Some(v) = a.strip_prefix("--format=") {
            raw = Some(v.to_string());
            break;
        }
    }
    let raw = raw.or_else(|| std::env::var("STM_FORMAT").ok())?;
    match stm_dsab::FormatSel::parse(&raw) {
        Some(sel) => Some(sel),
        None => {
            eprintln!("bad --format value {raw:?} (want coo|csr|csc|jd|sell|auto)");
            std::process::exit(2);
        }
    }
}

/// Parses the execution backend from the CLI args / environment:
/// `--backend B`, `--backend=B` or `STM_BACKEND=B` with
/// `B ∈ {sim,scalar,simd,auto}`. `sim` (the default) runs every kernel
/// on the cycle-accurate simulator; the other values send host-capable
/// kernels through the `stm-host` native tier (`scalar` forces the
/// portable implementation, `simd`/`auto` pick the best ISA the CPU
/// reports, falling back to scalar). An unrecognized value aborts with
/// exit code 2 — a silently dropped backend flag would mislabel a whole
/// campaign's numbers.
pub fn backend_from_env() -> stm_core::kernels::registry::Backend {
    use stm_core::kernels::registry::Backend;
    let mut raw = None;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--backend" {
            raw = args.next();
            break;
        }
        if let Some(v) = a.strip_prefix("--backend=") {
            raw = Some(v.to_string());
            break;
        }
    }
    let Some(raw) = raw.or_else(|| std::env::var("STM_BACKEND").ok()) else {
        return Backend::Sim;
    };
    match Backend::parse(&raw) {
        Some(b) => b,
        None => {
            eprintln!("bad --backend value {raw:?} (want sim|scalar|simd|auto)");
            std::process::exit(2);
        }
    }
}

/// The harness flags shared by every figure/soak binary, as
/// `(flag, description)` pairs — the single source the binaries render
/// their `--help` text from, so the flag list cannot drift per binary
/// again.
pub const COMMON_FLAGS: &[(&str, &str)] = &[
    ("--quick", "reduced 6-matrix suite (or STM_SUITE=quick)"),
    ("--jobs N", "worker-pool size (or STM_JOBS=N)"),
    (
        "--format F",
        "extra format leg, F in {coo,csr,csc,jd,sell,auto} (or STM_FORMAT=F)",
    ),
    (
        "--trace DIR",
        "export structured event traces under DIR (or STM_TRACE=DIR)",
    ),
    (
        "--backend B",
        "execution backend, B in {sim,scalar,simd,auto} (or STM_BACKEND=B)",
    ),
    (
        "--strict",
        "fail fast on the first failed matrix (or STM_STRICT=1)",
    ),
    (
        "--bench-json FILE",
        "write a machine-readable perf baseline (or STM_BENCH_JSON=FILE)",
    ),
];

/// Renders the uniform usage text for one binary: the shared
/// [`COMMON_FLAGS`] plus any binary-specific `extra` flags, aligned.
pub fn usage_text(bin: &str, about: &str, extra: &[(&str, &str)]) -> String {
    let mut out = format!("usage: {bin} [flags]\n{about}\n\nflags:\n");
    let rows: Vec<(&str, &str)> = COMMON_FLAGS.iter().chain(extra).copied().collect();
    let width = rows.iter().map(|(f, _)| f.len()).max().unwrap_or(0);
    for (flag, desc) in rows {
        out.push_str(&format!("  {flag:width$}  {desc}\n"));
    }
    out
}

/// Standard `--help`/`-h` handling for the figure/soak binaries: when
/// either flag is present, print the uniform usage text (see
/// [`usage_text`]) and exit 0. Call first thing in `main`.
pub fn handle_help(bin: &str, about: &str, extra: &[(&str, &str)]) {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage_text(bin, about, extra));
        std::process::exit(0);
    }
}

/// `true` when `--strict` is on the command line or `STM_STRICT=1` is in
/// the environment: the harness then panics on the first failed matrix
/// (nonzero exit) instead of recording it as a `Failed` row.
pub fn strict_from_env() -> bool {
    std::env::args().any(|a| a == "--strict")
        || std::env::var("STM_STRICT")
            .map(|v| v == "1")
            .unwrap_or(false)
}
