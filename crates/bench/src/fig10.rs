//! The Fig. 10 parameter study: buffer bandwidth utilization as a
//! function of the buffer bandwidth `B`, with one curve per number of
//! accessible lines `L`, averaged over the benchmark matrices.
//!
//! This is a unit-level study (it sizes the hardware before the system
//! runs), so it sweeps the STM's batch model directly over every
//! blockarray of each matrix's HiSM representation — no full-system
//! simulation needed, exactly as a hardware designer would evaluate the
//! I/O buffer in isolation.

use stm_core::unit::{block_timing, buffer_utilization, BlockTiming, StmConfig};
use stm_dsab::SuiteEntry;
use stm_hism::{build, BlockData};

/// Extracts every blockarray's position list (row-major, as stored) from
/// a matrix's HiSM form at section size `s`. All hierarchy levels are
/// included — each is transposed through the unit.
pub fn blockarray_positions(entry: &SuiteEntry, s: usize) -> Vec<Vec<(u8, u8)>> {
    let h = build::from_coo(&entry.coo, s).expect("suite matrix fits HiSM");
    h.blocks()
        .iter()
        .filter(|b| !b.is_empty())
        .map(|b| match &b.data {
            BlockData::Leaf(v) => v.iter().map(|e| (e.row, e.col)).collect(),
            BlockData::Node(v) => v.iter().map(|e| (e.row, e.col)).collect(),
        })
        .collect()
}

/// One point of the Fig. 10 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuPoint {
    /// Buffer bandwidth `B`.
    pub b: u64,
    /// Accessible lines `L`.
    pub l: usize,
    /// Buffer bandwidth utilization, averaged over the matrices.
    pub bu: f64,
}

/// Sweeps `B x L` over a matrix set and returns the averaged utilization
/// for every combination (row-major over `ls`, then `bs`).
pub fn bu_sweep(entries: &[SuiteEntry], s: usize, bs: &[u64], ls: &[usize]) -> Vec<BuPoint> {
    // Gather per-matrix blockarray positions once.
    let per_matrix: Vec<Vec<Vec<(u8, u8)>>> =
        entries.iter().map(|e| blockarray_positions(e, s)).collect();
    let mut out = Vec::with_capacity(bs.len() * ls.len());
    for &l in ls {
        for &b in bs {
            let cfg = StmConfig { s, b, l };
            let mut acc = 0.0;
            let mut counted = 0usize;
            for blocks in &per_matrix {
                let timings: Vec<BlockTiming> =
                    blocks.iter().map(|p| block_timing(p, &cfg)).collect();
                if !timings.is_empty() {
                    acc += buffer_utilization(&timings, b);
                    counted += 1;
                }
            }
            let bu = if counted == 0 {
                0.0
            } else {
                acc / counted as f64
            };
            out.push(BuPoint { b, l, bu });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_dsab::{experiment_sets, quick_catalogue};

    fn small_set() -> Vec<SuiteEntry> {
        let sets = experiment_sets(&quick_catalogue(), 4);
        sets.by_locality
    }

    #[test]
    fn utilization_is_highest_at_b1() {
        // The paper: "The highest utilization is obtained for buffer
        // bandwidth B = 1."
        let set = small_set();
        let points = bu_sweep(&set, 64, &[1, 2, 4, 8], &[4]);
        let bu_at: Vec<f64> = points.iter().map(|p| p.bu).collect();
        assert!(bu_at[0] >= bu_at[1]);
        assert!(bu_at[1] >= bu_at[2]);
        assert!(bu_at[2] >= bu_at[3]);
        assert!(
            bu_at[0] > 0.5,
            "B=1 utilization suspiciously low: {}",
            bu_at[0]
        );
        assert!(bu_at[0] < 1.0, "6-cycle penalty must keep BU below 100%");
    }

    #[test]
    fn utilization_grows_with_l() {
        // "for increasing number of accessible lines L the utilization
        // increases."
        let set = small_set();
        let points = bu_sweep(&set, 64, &[4], &[1, 2, 4, 8]);
        for w in points.windows(2) {
            assert!(w[1].bu >= w[0].bu - 1e-12, "{:?} -> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn l_beyond_4_saturates() {
        // "for a number of accessible lines L > 4 the utilization does
        // not increase significantly any more" — the gain from 4→8 must
        // be smaller than from 1→4.
        let set = small_set();
        let p = bu_sweep(&set, 64, &[4], &[1, 4, 8]);
        let gain_1_to_4 = p[1].bu - p[0].bu;
        let gain_4_to_8 = p[2].bu - p[1].bu;
        assert!(
            gain_4_to_8 < gain_1_to_4,
            "L saturation violated: {gain_1_to_4} vs {gain_4_to_8}"
        );
    }

    #[test]
    fn blockarrays_cover_all_entries() {
        let set = small_set();
        for e in &set {
            let blocks = blockarray_positions(e, 64);
            let leaf_entries: usize = {
                let h = build::from_coo(&e.coo, 64).unwrap();
                h.nnz()
            };
            let total: usize = blocks.iter().map(Vec::len).sum();
            assert!(total >= leaf_entries);
        }
    }
}
