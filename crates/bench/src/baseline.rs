//! Machine-readable performance baselines and regression diffing — the
//! logic behind `--bench-json` and the `benchdiff` bin.
//!
//! A baseline file (schema `stm-bench-baseline/v1`) records, for one
//! figure run, every matrix's per-kernel cycle count plus per-unit busy
//! utilization:
//!
//! ```json
//! {"schema":"stm-bench-baseline/v1","figure":"fig11","suite":"quick","timing":"paper","matrices":[
//! {"name":"m","nnz":123,"kernels":{"transpose_crs":{"cycles":456,"util":{"alu":0.1}}}}
//! ]}
//! ```
//!
//! The kernels are deterministic, so two runs of the same suite produce
//! byte-identical baselines; CI regenerates the file and diffs it against
//! the committed copy with [`diff`], failing on any relative cycle drift
//! beyond the tolerance (in *either* direction — an unexplained speedup
//! invalidates a baseline just like a slowdown).

use crate::harness::MatrixResult;
use stm_obs::json::Json;

/// Schema tag written to and required from every baseline file.
pub const SCHEMA: &str = "stm-bench-baseline/v1";

/// One kernel's baseline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBaseline {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Measured wall-clock nanoseconds — present only for host-native
    /// backend runs. Omitted from the JSON when `None`, so simulator
    /// baselines stay byte-deterministic across machines, and ignored by
    /// [`diff`] (wall-clock is machine-dependent by nature).
    pub wall_ns: Option<u64>,
    /// Per-unit busy fraction (`busy / cycles`), in display order.
    pub util: Vec<(String, f64)>,
}

/// One matrix's baseline row.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineMatrix {
    /// Matrix name from the suite.
    pub name: String,
    /// Non-zeros of the matrix.
    pub nnz: u64,
    /// Kernel name → numbers, sorted by kernel name.
    pub kernels: Vec<(String, KernelBaseline)>,
}

/// A whole baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Figure the run regenerated (e.g. `fig11`).
    pub figure: String,
    /// Suite tag (`quick` / `full`).
    pub suite: String,
    /// Timing model name (`paper` / `ideal`).
    pub timing: String,
    /// Execution backend the run used (`sim` / `scalar` / `simd` /
    /// `auto`). Files written before the field existed parse as `sim` —
    /// every pre-backend baseline was a simulator run.
    pub backend: String,
    /// Per-matrix rows in suite order.
    pub matrices: Vec<BaselineMatrix>,
}

fn kernel_baseline(report: &stm_core::TransposeReport) -> KernelBaseline {
    let cycles = report.cycles.max(1);
    KernelBaseline {
        cycles: report.cycles,
        wall_ns: report.wall_ns,
        util: report
            .stalls
            .units()
            .into_iter()
            .map(|(unit, c)| (unit, c.busy as f64 / cycles as f64))
            .collect(),
    }
}

impl Baseline {
    /// Builds a baseline from a figure run. Failed kernels are omitted
    /// from their matrix's row (the diff will then flag the asymmetry).
    pub fn from_results(
        figure: &str,
        suite: &str,
        timing: &str,
        backend: &str,
        results: &[MatrixResult],
    ) -> Baseline {
        let matrices = results
            .iter()
            .map(|r| {
                let mut kernels = Vec::new();
                if let Some(rep) = &r.crs {
                    kernels.push(("transpose_crs".to_string(), kernel_baseline(rep)));
                }
                if let Some(rep) = &r.hism {
                    kernels.push(("transpose_hism".to_string(), kernel_baseline(rep)));
                }
                // The format leg, when the run had one. `--format csr`
                // resolves to transpose_crs, already recorded above — a
                // duplicate key would corrupt the JSON object.
                if let Some(leg) = &r.format {
                    if let Some(rep) = &leg.report {
                        if !kernels.iter().any(|(n, _)| n == leg.kernel) {
                            kernels.push((leg.kernel.to_string(), kernel_baseline(rep)));
                        }
                    }
                }
                kernels.sort_by(|a, b| a.0.cmp(&b.0));
                BaselineMatrix {
                    name: r.name.clone(),
                    nnz: r.metrics.nnz as u64,
                    kernels,
                }
            })
            .collect();
        Baseline {
            figure: figure.to_string(),
            suite: suite.to_string(),
            timing: timing.to_string(),
            backend: backend.to_string(),
            matrices,
        }
    }

    /// Serializes deterministically: fixed field order, one matrix per
    /// line, floats at fixed 6-digit precision.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{SCHEMA}\",\"figure\":\"{}\",\"suite\":\"{}\",\"timing\":\"{}\",\"backend\":\"{}\",\"matrices\":[\n",
            self.figure, self.suite, self.timing, self.backend
        );
        let rows: Vec<String> = self
            .matrices
            .iter()
            .map(|m| {
                let kernels: Vec<String> = m
                    .kernels
                    .iter()
                    .map(|(name, k)| {
                        let util: Vec<String> = k
                            .util
                            .iter()
                            .map(|(u, f)| format!("\"{u}\":{f:.6}"))
                            .collect();
                        let wall = match k.wall_ns {
                            Some(ns) => format!("\"wall_ns\":{ns},"),
                            None => String::new(),
                        };
                        format!(
                            "\"{name}\":{{\"cycles\":{},{wall}\"util\":{{{}}}}}",
                            k.cycles,
                            util.join(",")
                        )
                    })
                    .collect();
                format!(
                    "{{\"name\":\"{}\",\"nnz\":{},\"kernels\":{{{}}}}}",
                    m.name,
                    m.nnz,
                    kernels.join(",")
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    /// Parses a baseline file, rejecting unknown schemas.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = Json::parse(text)?;
        let schema = v.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(format!(
                "unsupported baseline schema {schema:?} (want {SCHEMA:?})"
            ));
        }
        let field = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let mut matrices = Vec::new();
        for (i, m) in v
            .get("matrices")
            .and_then(Json::as_array)
            .ok_or("missing matrices array")?
            .iter()
            .enumerate()
        {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("matrix {i}: missing name"))?
                .to_string();
            let nnz = m
                .get("nnz")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("matrix {name}: missing nnz"))?;
            let kernels_obj = match m.get("kernels") {
                Some(Json::Obj(fields)) => fields,
                _ => return Err(format!("matrix {name}: missing kernels object")),
            };
            let mut kernels = Vec::new();
            for (kname, k) in kernels_obj {
                let cycles = k
                    .get("cycles")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("matrix {name}: kernel {kname}: missing cycles"))?;
                let util = match k.get("util") {
                    Some(Json::Obj(fields)) => fields
                        .iter()
                        .filter_map(|(u, f)| f.as_f64().map(|f| (u.clone(), f)))
                        .collect(),
                    _ => Vec::new(),
                };
                let wall_ns = k.get("wall_ns").and_then(Json::as_u64);
                kernels.push((
                    kname.clone(),
                    KernelBaseline {
                        cycles,
                        wall_ns,
                        util,
                    },
                ));
            }
            kernels.sort_by(|a, b| a.0.cmp(&b.0));
            matrices.push(BaselineMatrix { name, nnz, kernels });
        }
        Ok(Baseline {
            figure: field("figure")?,
            suite: field("suite")?,
            timing: field("timing")?,
            // Absent in files written before the host backend existed:
            // those were all simulator runs.
            backend: v
                .get("backend")
                .and_then(Json::as_str)
                .unwrap_or("sim")
                .to_string(),
            matrices,
        })
    }

    /// Multiplies every cycle count by `factor` (rounding) — used by
    /// `benchdiff --write-scaled` to manufacture a deliberate regression
    /// for CI self-tests.
    pub fn scale_cycles(&mut self, factor: f64) {
        for m in &mut self.matrices {
            for (_, k) in &mut m.kernels {
                k.cycles = (k.cycles as f64 * factor).round() as u64;
            }
        }
    }
}

/// The outcome of comparing two baselines.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Human-readable per-comparison lines.
    pub lines: Vec<String>,
    /// Comparisons whose drift exceeded the tolerance (or that could not
    /// be made at all). 0 means the baselines agree.
    pub regressions: usize,
}

impl DiffReport {
    fn fail(&mut self, line: String) {
        self.regressions += 1;
        self.lines.push(line);
    }
}

/// Compares `new` against `base`: every matrix/kernel pair present in
/// either file must exist in both, and relative cycle drift beyond
/// `tolerance` (e.g. `0.02` = 2%) in either direction counts as a
/// regression.
pub fn diff(base: &Baseline, new: &Baseline, tolerance: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for (field, b, n) in [
        ("figure", &base.figure, &new.figure),
        ("suite", &base.suite, &new.suite),
        ("timing", &base.timing, &new.timing),
        ("backend", &base.backend, &new.backend),
    ] {
        if b != n {
            report.fail(format!("MISMATCH {field}: base {b:?} vs new {n:?}"));
        }
    }
    for bm in &base.matrices {
        let Some(nm) = new.matrices.iter().find(|m| m.name == bm.name) else {
            report.fail(format!("MISSING matrix {} absent from new run", bm.name));
            continue;
        };
        if bm.nnz != nm.nnz {
            report.fail(format!(
                "MISMATCH {}: nnz {} vs {} — different matrix generation",
                bm.name, bm.nnz, nm.nnz
            ));
        }
        for (kname, bk) in &bm.kernels {
            let Some((_, nk)) = nm.kernels.iter().find(|(n, _)| n == kname) else {
                report.fail(format!("MISSING {}/{kname} absent from new run", bm.name));
                continue;
            };
            // A zero-cycle side has no meaningful relative drift: equal
            // zeros agree, anything else is reported as a dedicated
            // failure instead of dividing by zero into a garbage
            // percentage.
            if bk.cycles == 0 || nk.cycles == 0 {
                if bk.cycles == nk.cycles {
                    report
                        .lines
                        .push(format!("ok {}/{kname}: 0 -> 0 cycles", bm.name));
                } else {
                    report.fail(format!(
                        "ZERO-CYCLE {}/{kname}: {} -> {} cycles (relative drift undefined)",
                        bm.name, bk.cycles, nk.cycles
                    ));
                }
                continue;
            }
            let basis = bk.cycles as f64;
            let drift = (nk.cycles as f64 - bk.cycles as f64) / basis;
            if drift.abs() > tolerance {
                report.fail(format!(
                    "REGRESSION {}/{kname}: {} -> {} cycles ({:+.2}% > ±{:.2}%)",
                    bm.name,
                    bk.cycles,
                    nk.cycles,
                    100.0 * drift,
                    100.0 * tolerance
                ));
            } else {
                report.lines.push(format!(
                    "ok {}/{kname}: {} -> {} cycles ({:+.2}%)",
                    bm.name,
                    bk.cycles,
                    nk.cycles,
                    100.0 * drift
                ));
            }
        }
    }
    for nm in &new.matrices {
        let Some(bm) = base.matrices.iter().find(|m| m.name == nm.name) else {
            report.fail(format!("EXTRA matrix {} absent from baseline", nm.name));
            continue;
        };
        // Kernels present only in the new run were previously skipped
        // silently; an unexplained new row invalidates a baseline just
        // like a missing one.
        for (kname, _) in &nm.kernels {
            if !bm.kernels.iter().any(|(n, _)| n == kname) {
                report.fail(format!("ADDED {}/{kname} absent from baseline", nm.name));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_set, RunConfig};
    use stm_sparse::{gen, MatrixMetrics};

    fn tiny_set() -> Vec<stm_dsab::SuiteEntry> {
        let coo = gen::random::uniform(64, 64, 300, 2);
        let metrics = MatrixMetrics::compute(&coo);
        vec![stm_dsab::SuiteEntry {
            name: "tiny".into(),
            coo,
            metrics,
        }]
    }

    fn tiny_baseline() -> Baseline {
        let results = run_set(
            &RunConfig {
                jobs: Some(1),
                ..RunConfig::default()
            },
            &tiny_set(),
        );
        Baseline::from_results("fig11", "quick", "paper", "sim", &results)
    }

    #[test]
    fn json_round_trips_and_is_deterministic() {
        let b = tiny_baseline();
        let text = b.to_json();
        assert_eq!(
            text,
            tiny_baseline().to_json(),
            "non-deterministic baseline"
        );
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.figure, "fig11");
        assert_eq!(parsed.matrices.len(), 1);
        assert_eq!(
            parsed.matrices[0]
                .kernels
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["transpose_crs", "transpose_hism"]
        );
        // Cycle counts survive the round trip exactly.
        for (bm, pm) in b.matrices.iter().zip(&parsed.matrices) {
            for ((_, bk), (_, pk)) in bm.kernels.iter().zip(&pm.kernels) {
                assert_eq!(bk.cycles, pk.cycles);
                assert!(!bk.util.is_empty());
            }
        }
    }

    #[test]
    fn format_legs_land_in_the_baseline_without_duplicate_keys() {
        let coo = gen::random::uniform(64, 64, 300, 2);
        let metrics = MatrixMetrics::compute(&coo);
        let set = vec![stm_dsab::SuiteEntry {
            name: "tiny".into(),
            coo,
            metrics,
        }];
        let run = |format| {
            let results = run_set(
                &RunConfig {
                    jobs: Some(1),
                    format,
                    ..RunConfig::default()
                },
                &set,
            );
            Baseline::from_results("fig11", "quick", "paper", "sim", &results)
        };
        let sell = run(stm_dsab::FormatSel::parse("sell"));
        assert_eq!(
            sell.matrices[0]
                .kernels
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["transpose_crs", "transpose_hism", "transpose_sell"]
        );
        // Round trip keeps the extra kernel.
        let parsed = Baseline::parse(&sell.to_json()).unwrap();
        assert_eq!(parsed.matrices[0].kernels.len(), 3);
        // `--format csr` resolves to transpose_crs, already present: no
        // duplicate key, and the baseline matches a format-less run.
        let csr = run(stm_dsab::FormatSel::parse("csr"));
        assert_eq!(csr, run(None));
    }

    #[test]
    fn sim_baselines_carry_no_wall_clock() {
        let b = tiny_baseline();
        assert_eq!(b.backend, "sim");
        let text = b.to_json();
        assert!(
            !text.contains("wall_ns"),
            "simulator baselines must omit wall_ns: {text}"
        );
        for (_, k) in &b.matrices[0].kernels {
            assert_eq!(k.wall_ns, None);
        }
    }

    #[test]
    fn wall_clock_baselines_round_trip_byte_identically() {
        use stm_core::kernels::registry::Backend;
        let results = run_set(
            &RunConfig {
                jobs: Some(1),
                backend: Backend::Scalar,
                ..RunConfig::default()
            },
            &tiny_set(),
        );
        let b = Baseline::from_results("fig11", "quick", "paper", "scalar", &results);
        assert_eq!(b.backend, "scalar");
        let with_wall: Vec<&KernelBaseline> = b.matrices[0]
            .kernels
            .iter()
            .filter(|(n, _)| stm_core::kernels::registry::host_capable(n))
            .map(|(_, k)| k)
            .collect();
        assert!(!with_wall.is_empty());
        assert!(
            with_wall.iter().all(|k| k.wall_ns.is_some()),
            "host legs must record wall_ns"
        );
        let text = b.to_json();
        assert!(text.contains("\"backend\":\"scalar\""));
        assert!(text.contains("\"wall_ns\":"));
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b, "wall-clock baseline must round-trip exactly");
        assert_eq!(parsed.to_json(), text, "re-serialization must be stable");
        // Wall-clock drift between two machines is NOT a regression: two
        // baselines identical except for wall_ns diff clean.
        let mut other = b.clone();
        for (_, k) in &mut other.matrices[0].kernels {
            if let Some(ns) = k.wall_ns.as_mut() {
                *ns = ns.wrapping_mul(3) + 17;
            }
        }
        let r = diff(&b, &other, 0.02);
        assert_eq!(r.regressions, 0, "{:?}", r.lines);
    }

    #[test]
    fn pre_backend_baselines_still_load() {
        // A file written before the backend/wall_ns fields existed —
        // forward-compat must not rot.
        let old = concat!(
            "{\"schema\":\"stm-bench-baseline/v1\",\"figure\":\"fig11\",",
            "\"suite\":\"quick\",\"timing\":\"paper\",\"matrices\":[\n",
            "{\"name\":\"m\",\"nnz\":123,\"kernels\":{\"transpose_crs\":",
            "{\"cycles\":456,\"util\":{\"alu\":0.100000}}}}\n]}\n"
        );
        let parsed = Baseline::parse(old).unwrap();
        assert_eq!(parsed.backend, "sim", "missing backend defaults to sim");
        let (name, k) = &parsed.matrices[0].kernels[0];
        assert_eq!(name, "transpose_crs");
        assert_eq!(k.cycles, 456);
        assert_eq!(k.wall_ns, None);
        // And it diffs clean against a freshly-parsed copy of itself.
        let r = diff(&parsed, &Baseline::parse(old).unwrap(), 0.02);
        assert_eq!(r.regressions, 0, "{:?}", r.lines);
        // But against a host-backend run the config mismatch is flagged.
        let mut host = parsed.clone();
        host.backend = "scalar".into();
        assert!(diff(&parsed, &host, 0.02).regressions > 0);
    }

    #[test]
    fn identical_baselines_diff_clean() {
        let b = tiny_baseline();
        let r = diff(&b, &b, 0.02);
        assert_eq!(r.regressions, 0, "{:?}", r.lines);
        assert!(r.lines.iter().all(|l| l.starts_with("ok ")));
    }

    #[test]
    fn scaled_cycles_trip_the_tolerance() {
        let b = tiny_baseline();
        let mut inflated = b.clone();
        inflated.scale_cycles(1.05);
        let r = diff(&b, &inflated, 0.02);
        assert!(r.regressions > 0);
        assert!(
            r.lines.iter().any(|l| l.starts_with("REGRESSION")),
            "{:?}",
            r.lines
        );
        // 5% drift sits inside a 10% tolerance.
        assert_eq!(diff(&b, &inflated, 0.10).regressions, 0);
        // Speedups beyond tolerance fail too — stale baselines are a bug.
        let mut deflated = b.clone();
        deflated.scale_cycles(0.9);
        assert!(diff(&b, &deflated, 0.02).regressions > 0);
    }

    #[test]
    fn structural_mismatches_are_regressions() {
        let b = tiny_baseline();
        let mut renamed = b.clone();
        renamed.matrices[0].name = "other".into();
        let r = diff(&b, &renamed, 0.02);
        assert!(r.regressions >= 2, "missing + extra: {:?}", r.lines);
        let mut missing_kernel = b.clone();
        missing_kernel.matrices[0].kernels.pop();
        assert!(diff(&b, &missing_kernel, 0.02).regressions > 0);
        let mut wrong_suite = b.clone();
        wrong_suite.suite = "full".into();
        assert!(diff(&b, &wrong_suite, 0.02).regressions > 0);
    }

    #[test]
    fn zero_cycle_entries_never_divide_by_zero() {
        let b = tiny_baseline();
        // Matching zero-cycle rows agree without a drift percentage.
        let mut base_zero = b.clone();
        base_zero.matrices[0].kernels[0].1.cycles = 0;
        let r = diff(&base_zero, &base_zero, 0.02);
        assert_eq!(r.regressions, 0, "{:?}", r.lines);
        assert!(
            r.lines.iter().any(|l| l.contains("0 -> 0 cycles")),
            "{:?}",
            r.lines
        );
        // Zero on one side only is a dedicated failure, not an absurd
        // percentage (and never a division by zero / inf / NaN).
        let r = diff(&base_zero, &b, 0.02);
        assert!(r.regressions > 0);
        assert!(
            r.lines
                .iter()
                .any(|l| l.starts_with("ZERO-CYCLE") && !l.contains('%')),
            "{:?}",
            r.lines
        );
        let mut new_zero = b.clone();
        new_zero.matrices[0].kernels[1].1.cycles = 0;
        let r = diff(&b, &new_zero, 0.02);
        assert!(r.lines.iter().any(|l| l.starts_with("ZERO-CYCLE")));
        assert!(r.regressions > 0);
    }

    #[test]
    fn kernels_only_in_the_new_run_are_reported_as_added() {
        let b = tiny_baseline();
        let mut grown = b.clone();
        grown.matrices[0].kernels.push((
            "transpose_ref".to_string(),
            KernelBaseline {
                cycles: 123,
                wall_ns: None,
                util: Vec::new(),
            },
        ));
        let r = diff(&b, &grown, 0.02);
        assert_eq!(r.regressions, 1, "{:?}", r.lines);
        assert!(
            r.lines
                .iter()
                .any(|l| l.starts_with("ADDED") && l.contains("transpose_ref")),
            "{:?}",
            r.lines
        );
        // And the mirror case still reports MISSING.
        let r = diff(&grown, &b, 0.02);
        assert!(r.lines.iter().any(|l| l.starts_with("MISSING")));
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("not json").is_err());
        let wrong = "{\"schema\":\"stm-bench-baseline/v0\",\"matrices\":[]}";
        let err = Baseline::parse(wrong).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }
}
