//! The paper's headline numbers: per-set and overall HiSM-vs-CRS speedup
//! ranges over the 30 benchmark matrices, plus the HiSM storage-overhead
//! check ("the number of high level s²-blocks amount typically to about
//! 2-5% of the total matrix storage for s = 64").

use stm_bench::output::{format_table, print_trace_rollup, write_csv};
use stm_bench::{run_set, sets_from_env, MatrixResult, RunConfig, SpeedupSummary};
use stm_hism::{build, StorageStats};

fn main() {
    stm_bench::handle_help(
        "summary",
        "Per-set and overall HiSM-vs-CRS speedup summary.",
        &[],
    );
    let (sets, tag) = sets_from_env();
    let cfg = RunConfig::from_env();

    let loc = run_set(&cfg, &sets.by_locality);
    let anz = run_set(&cfg, &sets.by_anz);
    let size = run_set(&cfg, &sets.by_size);
    let all: Vec<MatrixResult> = loc.iter().chain(&anz).chain(&size).cloned().collect();

    let row = |name: &str, results: &[MatrixResult], paper: &str| -> Vec<String> {
        let s = SpeedupSummary::of(results);
        vec![
            name.to_string(),
            format!("{:.1}", s.min),
            format!("{:.1}", s.avg),
            format!("{:.1}", s.max),
            paper.to_string(),
        ]
    };
    let rows = vec![
        row("locality set (Fig. 11)", &loc, "1.8 / 16.5 / 32.0"),
        row("ANZ set      (Fig. 12)", &anz, "11.9 / 20.0 / 28.9"),
        row("size set     (Fig. 13)", &size, "3.4 / 15.5 / 28.2"),
        row("all 30 matrices", &all, "1.8 / 17.6 / 32.0"),
    ];
    println!("HiSM vs CRS transposition speedup (suite: {tag}, s=64 B=4 L=4 p=4)");
    println!(
        "{}",
        format_table(&["set", "min", "avg", "max", "paper min/avg/max"], &rows)
    );
    print_trace_rollup(&all);
    write_csv(
        "results/summary.csv",
        &["set", "min", "avg", "max", "paper"],
        &rows,
    )
    .expect("write results/summary.csv");

    // Storage-overhead claim (Section IV-A).
    let mut fracs: Vec<f64> = Vec::new();
    for entry in sets.all() {
        let h = build::from_coo(&entry.coo, 64).expect("suite matrix");
        if h.levels() > 1 && h.nnz() > 0 {
            fracs.push(StorageStats::compute(&h).upper_fraction());
        }
    }
    if !fracs.is_empty() {
        let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
        let max = fracs.iter().copied().fold(0.0, f64::max);
        println!(
            "HiSM upper-level storage overhead over {} multi-level matrices: \
             avg {:.1}%, max {:.1}%   (paper: \"typically about 2-5%\")",
            fracs.len(),
            100.0 * avg,
            100.0 * max
        );
    }
    eprintln!("wrote results/summary.csv");
}
