//! Ablation studies over the design choices DESIGN.md calls out:
//! vector chaining, the entry streaming width, the memory startup
//! latency, the STM's B/L geometry at kernel level (not just the Fig. 10
//! unit level), and the section size `s`.
//!
//! Each variant runs the locality-sorted experiment set; reported are the
//! average HiSM cycles/nnz, the average CRS cycles/nnz, and the average
//! speedup, so both sides of every trade-off stay visible.

use stm_bench::output::{format_table, write_csv};
use stm_bench::{run_set, sets_from_env, RunConfig, SpeedupSummary};
use stm_core::StmConfig;
use stm_vpsim::VpConfig;

struct Variant {
    name: &'static str,
    cfg: RunConfig,
}

fn paper() -> RunConfig {
    RunConfig::from_env()
}

fn main() {
    let (sets, tag) = sets_from_env();
    let set = &sets.by_locality;

    let mut variants: Vec<Variant> = vec![Variant {
        name: "paper (s=64 B=4 L=4, chained)",
        cfg: paper(),
    }];

    let mut v = paper();
    v.vp.chaining = false;
    variants.push(Variant {
        name: "chaining off",
        cfg: v,
    });

    let mut v = paper();
    v.vp.words_per_entry = 2;
    variants.push(Variant {
        name: "charge [value,pos] pair (2 words/entry)",
        cfg: v,
    });

    for startup in [5u64, 50] {
        let mut v = paper();
        v.vp.mem_startup = startup;
        variants.push(Variant {
            name: if startup == 5 {
                "memory startup 5"
            } else {
                "memory startup 50"
            },
            cfg: v,
        });
    }

    for (b, l) in [(1u64, 1usize), (4, 1), (1, 4), (8, 4), (8, 8)] {
        let mut v = paper();
        v.stm = StmConfig { s: 64, b, l };
        let name: &'static str = match (b, l) {
            (1, 1) => "STM B=1 L=1 (baseline unit)",
            (4, 1) => "STM B=4 L=1 (no multi-line)",
            (1, 4) => "STM B=1 L=4",
            (8, 4) => "STM B=8 L=4",
            _ => "STM B=8 L=8",
        };
        variants.push(Variant { name, cfg: v });
    }

    let mut v = paper();
    v.vp.mem_ports = 2;
    variants.push(Variant {
        name: "dual-ported memory",
        cfg: v,
    });

    let mut v = paper();
    v.vp.scalar_out_of_order = true;
    variants.push(Variant {
        name: "out-of-order scalar core",
        cfg: v,
    });

    for s in [32usize, 128] {
        let mut v = paper();
        v.vp = VpConfig {
            section_size: s,
            ..v.vp
        };
        v.stm = StmConfig { s, b: 4, l: 4 };
        variants.push(Variant {
            name: if s == 32 {
                "section size 32"
            } else {
                "section size 128"
            },
            cfg: v,
        });
    }

    let mut rows = Vec::new();
    for variant in &variants {
        let results = run_set(&variant.cfg, set);
        let expect = |r: &Option<stm_core::TransposeReport>| {
            r.as_ref()
                .expect("ablation suite is trusted")
                .cycles_per_nnz()
        };
        let hism_avg = results.iter().map(|r| expect(&r.hism)).sum::<f64>() / results.len() as f64;
        let crs_avg = results.iter().map(|r| expect(&r.crs)).sum::<f64>() / results.len() as f64;
        let s = SpeedupSummary::of(&results);
        rows.push(vec![
            variant.name.to_string(),
            format!("{hism_avg:.2}"),
            format!("{crs_avg:.2}"),
            format!("{:.1}", s.avg),
        ]);
    }

    println!("Ablations over the locality set (suite: {tag})");
    println!(
        "{}",
        format_table(
            &["variant", "hism_cyc/nnz", "crs_cyc/nnz", "avg speedup"],
            &rows
        )
    );
    write_csv(
        "results/ablate.csv",
        &[
            "variant",
            "hism_cyc_per_nnz",
            "crs_cyc_per_nnz",
            "avg_speedup",
        ],
        &rows,
    )
    .expect("write results/ablate.csv");
    eprintln!("wrote results/ablate.csv");
}
