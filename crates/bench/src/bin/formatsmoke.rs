//! Format-layer CI gate: runs the quick catalogue under `--format auto`
//! and every fixed format, then enforces the format layer's two
//! contracts:
//!
//! 1. **correctness** — every format's transpose kernel produces a
//!    byte-identical output digest to the CRS reference on every matrix;
//! 2. **bounded regret** — the autotuner's chosen format is never more
//!    than 10% slower (measured cycles) than the best fixed format.
//!
//! Prints the per-matrix decision table and writes the full artifact —
//! decisions, predictions, measured cycles per format, regret — to
//! `results/format-decisions.csv`.
//!
//! Flags: `--jobs N` / `STM_JOBS` (worker pool). The suite is always the
//! quick catalogue — the gate must stay CI-cheap.
//!
//! Exit codes: 0 = both contracts hold; 1 = a digest mismatch or a
//! regret violation; 2 = a kernel failed outright.

use stm_bench::output::{format_table, write_csv, FORMAT_DECISION_HEADERS};
use stm_bench::{run_kernel, run_set, RunConfig};
use stm_dsab::{build_by_name, quick_catalogue, FormatKind, FormatSel, SuiteEntry};

/// Chosen-vs-best-fixed regret the autotuner may not exceed.
const MAX_REGRET: f64 = 0.10;

fn main() {
    stm_bench::handle_help(
        "formatsmoke",
        "Format gate: cross-format digest equality + autotuner regret bound.",
        &[],
    );
    let specs = quick_catalogue();
    let set: Vec<SuiteEntry> = specs
        .iter()
        .map(|s| build_by_name(&specs, &s.name).expect("catalogue name resolves"))
        .collect();
    let cfg = RunConfig {
        jobs: stm_bench::jobs_from_env(),
        format: Some(FormatSel::Auto),
        backend: stm_bench::backend_from_env(),
        ..RunConfig::default()
    };

    // The auto campaign: every matrix runs hism, crs and the tuner's
    // chosen format, fully verified.
    let results = run_set(&cfg, &set);
    let mut bad = 0usize;

    // Fixed-format legs: measured cycles + output digest per format.
    struct Fixed {
        cycles: Vec<(FormatKind, u64)>,
    }
    let fixed: Vec<Fixed> = stm_bench::run_batch(cfg.worker_count(set.len()), &set, |_, entry| {
        let mut cycles = Vec::new();
        let mut digests = Vec::new();
        for kind in FormatKind::ALL {
            match run_kernel(&cfg, kind.transpose_kernel(), entry) {
                Ok(r) => {
                    cycles.push((kind, r.report.cycles));
                    digests.push((kind, r.output_digest));
                }
                Err(f) => {
                    eprintln!("formatsmoke: {}: {f}", entry.name);
                    std::process::exit(2);
                }
            }
        }
        // Contract 1: byte-identical digests against each kernel's CSR
        // reference. COO/JD/SELL emit CSR(Aᵀ), exactly like
        // transpose_crs; the CSC kernel transposes by duality and emits
        // CSR(A) (its verify oracle), so it digests against that.
        let csr = digests
            .iter()
            .find(|(k, _)| *k == FormatKind::Csr)
            .expect("csr ran")
            .1;
        let csr_of_a =
            stm_core::kernels::registry::KernelOutput::Csr(stm_sparse::Csr::from_coo(&entry.coo))
                .digest();
        for (kind, d) in &digests {
            let want = if *kind == FormatKind::Csc {
                csr_of_a
            } else {
                csr
            };
            assert_eq!(
                *d,
                want,
                "{}: {} digest diverged from its CSR reference",
                entry.name,
                kind.name()
            );
        }
        Fixed { cycles }
    });

    // Contract 2: bounded regret, plus the artifact rows.
    let mut rows = Vec::new();
    for (r, f) in results.iter().zip(&fixed) {
        let leg = r.format.as_ref().expect("auto leg present");
        let Some(report) = &leg.report else {
            eprintln!("formatsmoke: {}: auto leg failed: {:?}", r.name, r.status);
            std::process::exit(2);
        };
        let chosen_cycles = report.cycles;
        let (best_kind, best_cycles) = f
            .cycles
            .iter()
            .min_by_key(|(_, c)| *c)
            .copied()
            .expect("five formats measured");
        let regret = chosen_cycles as f64 / best_cycles.max(1) as f64 - 1.0;
        let verdict = if regret > MAX_REGRET {
            bad += 1;
            "FAIL"
        } else {
            "ok"
        };
        if verdict == "FAIL" {
            eprintln!(
                "formatsmoke: {}: auto chose {} ({chosen_cycles} cyc) but {} costs {best_cycles} \
                 cyc — {:.1}% regret > {:.0}%",
                r.name,
                leg.kind.name(),
                best_kind.name(),
                100.0 * regret,
                100.0 * MAX_REGRET
            );
        }
        let mut row = stm_bench::output::format_decision_rows(std::slice::from_ref(r))
            .pop()
            .expect("leg present");
        for (_, c) in &f.cycles {
            row.push(c.to_string());
        }
        row.push(best_kind.name().to_string());
        row.push(format!("{:.2}", 100.0 * regret));
        row.push(verdict.to_string());
        rows.push(row);
    }

    let mut headers: Vec<&str> = FORMAT_DECISION_HEADERS.to_vec();
    headers.extend([
        "meas_coo",
        "meas_csr",
        "meas_csc",
        "meas_jd",
        "meas_sell",
        "best_fixed",
        "regret_pct",
        "verdict",
    ]);
    println!("{}", format_table(&headers, &rows));
    let csv = "results/format-decisions.csv";
    write_csv(csv, &headers, &rows).unwrap_or_else(|e| {
        eprintln!("formatsmoke: writing {csv}: {e}");
        std::process::exit(2);
    });
    println!(
        "status: n={} digests=byte-identical max_regret<={:.0}% violations={bad} ({csv})",
        rows.len(),
        100.0 * MAX_REGRET
    );
    if bad > 0 {
        eprintln!("formatsmoke FAILED: {bad} matrix(es) over the regret bound");
        std::process::exit(1);
    }
}
