//! Regenerates **Fig. 10** (Section IV-C): buffer bandwidth utilization
//! vs buffer bandwidth `B`, one series per accessible-lines count `L`,
//! averaged over the 30 benchmark matrices. This is the study from which
//! the paper picks `L = 4`.

use stm_bench::fig10::bu_sweep;
use stm_bench::output::{format_table, write_csv};
use stm_bench::sets_from_env;

fn main() {
    stm_bench::handle_help(
        "fig10",
        "Fig. 10: buffer bandwidth utilization vs B for L in {1,2,4,8}.",
        &[],
    );
    let (sets, tag) = sets_from_env();
    let flat: Vec<stm_dsab::SuiteEntry> = sets
        .by_locality
        .into_iter()
        .chain(sets.by_anz)
        .chain(sets.by_size)
        .collect();

    let bs = [1u64, 2, 4, 8, 16];
    let ls = [1usize, 2, 4, 8];
    let points = bu_sweep(&flat, 64, &bs, &ls);

    let headers: Vec<String> = std::iter::once("L \\ B".to_string())
        .chain(bs.iter().map(|b| format!("B={b}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (li, &l) in ls.iter().enumerate() {
        let mut row = vec![format!("L={l}")];
        for bi in 0..bs.len() {
            row.push(format!("{:.3}", points[li * bs.len() + bi].bu));
        }
        rows.push(row);
    }
    println!("Fig. 10 — Buffer bandwidth utilization (suite: {tag}, s = 64)");
    println!("{}", format_table(&header_refs, &rows));
    println!("Paper's reading: highest utilization at B=1; utilization grows");
    println!("with L but saturates beyond L=4 → the unit is built with L=4.");

    let csv_rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.l.to_string(), p.b.to_string(), format!("{:.6}", p.bu)])
        .collect();
    write_csv("results/fig10.csv", &["L", "B", "BU"], &csv_rows).expect("write results/fig10.csv");
    eprintln!("wrote results/fig10.csv");
}
