//! Regenerates **Fig. 13**: transposition performance over the ten
//! matrices selected by *matrix size* (number of non-zeros). The paper's
//! reading: neither method's cycles/nnz shows a particular dependence on
//! size; speedup range 3.4–28.2 (average 15.5).

use stm_bench::output::{
    figure_rows, format_table, print_format_decisions, print_trace_rollup, write_csv,
    FIGURE_HEADERS,
};
use stm_bench::{run_set, sets_from_env, RunConfig, SpeedupSummary};

fn main() {
    stm_bench::handle_help(
        "fig13",
        "Fig. 13: transposition performance over the size-sorted set.",
        &[],
    );
    let (sets, tag) = sets_from_env();
    let cfg = RunConfig::from_env();
    let results = run_set(&cfg, &sets.by_size);
    let rows = figure_rows(&results, cfg.backend.name());
    println!("Fig. 13 — Performance w.r.t. matrix size (suite: {tag})");
    println!("{}", format_table(&FIGURE_HEADERS, &rows));
    let s = SpeedupSummary::of(&results);
    println!(
        "speedup range {:.1} .. {:.1}, average {:.1}   (paper: 3.4 .. 28.2, avg 15.5)",
        s.min, s.max, s.avg
    );
    print_format_decisions(&results);
    print_trace_rollup(&results);
    write_csv("results/fig13.csv", &FIGURE_HEADERS, &rows).expect("write results/fig13.csv");
    eprintln!("wrote results/fig13.csv");
}
