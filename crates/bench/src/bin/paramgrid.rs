//! The "optimal parameters" study at *kernel* level: a full `B x L` grid
//! of end-to-end HiSM transposition cost (average cycles/nnz over the
//! locality set). Fig. 10 sizes the unit from buffer utilization in
//! isolation; this grid confirms the choice holds end to end, where the
//! memory port and the per-block penalties also weigh in — the system
//! view behind the paper's "we calculate the optimal parameters for the
//! mechanism".

use stm_bench::output::{format_table, write_csv};
use stm_bench::{run_set, sets_from_env, RunConfig};
use stm_core::StmConfig;

fn main() {
    let (sets, tag) = sets_from_env();
    let bs = [1u64, 2, 4, 8, 16];
    let ls = [1usize, 2, 4, 8];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &l in &ls {
        let mut row = vec![format!("L={l}")];
        for &b in &bs {
            let cfg = RunConfig {
                stm: StmConfig { s: 64, b, l },
                ..RunConfig::from_env()
            };
            let results = run_set(&cfg, &sets.by_locality);
            let avg = results
                .iter()
                .map(|r| {
                    r.hism
                        .as_ref()
                        .expect("grid suite is trusted")
                        .cycles_per_nnz()
                })
                .sum::<f64>()
                / results.len() as f64;
            row.push(format!("{avg:.3}"));
            csv.push(vec![l.to_string(), b.to_string(), format!("{avg:.4}")]);
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("L \\ B".into())
        .chain(bs.iter().map(|b| format!("B={b}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("End-to-end HiSM transposition cost (avg cycles/nnz, locality set, suite: {tag})");
    println!("{}", format_table(&header_refs, &rows));
    println!("Reading: gains saturate at B=4 (the port feeds 4 elements/cycle)");
    println!("and L=4, confirming Fig. 10's parameter choice at system level.");
    write_csv(
        "results/paramgrid.csv",
        &["L", "B", "hism_cyc_per_nnz"],
        &csv,
    )
    .expect("write results/paramgrid.csv");
    eprintln!("wrote results/paramgrid.csv");
}
