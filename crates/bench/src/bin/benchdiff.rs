//! Compare two `stm-bench-baseline/v1` files (as written by a figure
//! binary's `--bench-json FILE`) and fail on cycle drift.
//!
//! ```text
//! benchdiff <base.json> <new.json> [--tolerance T]
//! benchdiff --write-scaled FACTOR <in.json> <out.json>
//! ```
//!
//! The default tolerance is 0.02 (2% relative drift, either direction).
//! `--write-scaled` multiplies every cycle count by FACTOR and writes a
//! new baseline — CI uses it to manufacture a deliberate regression and
//! prove the gate actually fails. Exits 0 when the baselines agree
//! within tolerance, 1 on any regression/mismatch, 2 on usage or I/O
//! errors.

use std::process::ExitCode;

use stm_bench::baseline::{diff, Baseline};

fn usage() -> ExitCode {
    eprintln!("usage: benchdiff <base.json> <new.json> [--tolerance T]");
    eprintln!("       benchdiff --write-scaled FACTOR <in.json> <out.json>");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Baseline, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("benchdiff: {path}: {e}");
        ExitCode::from(2)
    })?;
    Baseline::parse(&text).map_err(|e| {
        eprintln!("benchdiff: {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--write-scaled") {
        let [_, factor, input, output] = args.as_slice() else {
            return usage();
        };
        let Ok(factor) = factor.parse::<f64>() else {
            eprintln!("benchdiff: bad scale factor {factor:?}");
            return ExitCode::from(2);
        };
        let mut base = match load(input) {
            Ok(b) => b,
            Err(code) => return code,
        };
        base.scale_cycles(factor);
        if let Err(e) = std::fs::write(output, base.to_json()) {
            eprintln!("benchdiff: {output}: {e}");
            return ExitCode::from(2);
        }
        println!("benchdiff: wrote {output} with cycles scaled by {factor}");
        return ExitCode::SUCCESS;
    }

    let mut tolerance = 0.02f64;
    let mut files: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            let Some(t) = it.next().and_then(|t| t.parse().ok()) else {
                return usage();
            };
            tolerance = t;
        } else if let Some(t) = a.strip_prefix("--tolerance=") {
            let Ok(t) = t.parse() else {
                return usage();
            };
            tolerance = t;
        } else if a.starts_with("--") {
            return usage();
        } else {
            files.push(a);
        }
    }
    let [base_path, new_path] = files.as_slice() else {
        return usage();
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(code), _) | (_, Err(code)) => return code,
    };

    let report = diff(&base, &new, tolerance);
    for line in &report.lines {
        println!("{line}");
    }
    if report.regressions == 0 {
        println!(
            "benchdiff: {} vs {}: within ±{:.2}% on every kernel",
            base_path,
            new_path,
            100.0 * tolerance
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "benchdiff: {} regression(s)/mismatch(es) beyond ±{:.2}%",
            report.regressions,
            100.0 * tolerance
        );
        ExitCode::FAILURE
    }
}
