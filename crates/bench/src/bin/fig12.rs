//! Regenerates **Fig. 12**: transposition performance over the ten
//! matrices selected by *average non-zeros per row* (ANZ). The paper's
//! reading: CRS performance improves as ANZ grows (its per-row startup
//! amortizes); speedup range 11.9–28.9 (average 20.0).

use stm_bench::output::{
    figure_rows, format_table, print_format_decisions, print_trace_rollup, write_csv,
    FIGURE_HEADERS,
};
use stm_bench::{run_set, sets_from_env, RunConfig, SpeedupSummary};

fn main() {
    stm_bench::handle_help(
        "fig12",
        "Fig. 12: transposition performance over the ANZ-sorted set.",
        &[],
    );
    let (sets, tag) = sets_from_env();
    let cfg = RunConfig::from_env();
    let results = run_set(&cfg, &sets.by_anz);
    let rows = figure_rows(&results, cfg.backend.name());
    println!("Fig. 12 — Performance w.r.t. average non-zeros per row (suite: {tag})");
    println!("{}", format_table(&FIGURE_HEADERS, &rows));
    let s = SpeedupSummary::of(&results);
    println!(
        "speedup range {:.1} .. {:.1}, average {:.1}   (paper: 11.9 .. 28.9, avg 20.0)",
        s.min, s.max, s.avg
    );
    print_format_decisions(&results);
    print_trace_rollup(&results);
    write_csv("results/fig12.csv", &FIGURE_HEADERS, &rows).expect("write results/fig12.csv");
    eprintln!("wrote results/fig12.csv");
}
