//! Extension experiment: HiSM vs CRS sparse matrix–vector multiplication
//! on the same simulated machine.
//!
//! This is not a figure of the STM paper itself — it validates the claim
//! the paper leans on ("in \[5\] the authors report for multiplication of a
//! sparse matrix with a vector a speedup of up to 5 times (depending on
//! the sparsity pattern) using the novel HiSM storage format"): the HiSM
//! SpMV kernel should win most clearly on high-locality matrices, with a
//! pattern-dependent speedup in the low single digits.

use stm_bench::output::{format_table, write_csv};
use stm_bench::sets_from_env;
use stm_core::kernels::{spmv_crs, spmv_hism};
use stm_hism::{build, HismImage};
use stm_sparse::Csr;
use stm_vpsim::VpConfig;

fn main() {
    let (sets, tag) = sets_from_env();
    let vp = VpConfig::paper();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for entry in &sets.by_locality {
        let x: Vec<f32> = (0..entry.coo.cols()).map(|i| ((i % 9) as f32) - 4.0).collect();
        let h = build::from_coo(&entry.coo, 64).expect("suite matrix");
        let img = HismImage::encode(&h);
        let (yh, hr) = spmv_hism(&vp, &img, &x);
        let csr = Csr::from_coo(&entry.coo);
        let (yc, cr) = spmv_crs(&vp, &csr, &x);
        // Functional agreement between the two simulated kernels.
        for (a, b) in yh.iter().zip(&yc) {
            assert!(
                (a - b).abs() <= 1e-2 * (1.0 + b.abs()),
                "{}: SpMV kernels disagree ({a} vs {b})",
                entry.name
            );
        }
        let speedup = cr.cycles as f64 / hr.cycles.max(1) as f64;
        speedups.push(speedup);
        rows.push(vec![
            entry.name.clone(),
            format!("{:.3}", entry.metrics.locality),
            format!("{:.2}", hr.cycles_per_nnz()),
            format!("{:.2}", cr.cycles_per_nnz()),
            format!("{speedup:.2}"),
        ]);
    }
    println!("Extension — SpMV: HiSM vs CRS on the locality set (suite: {tag})");
    println!(
        "{}",
        format_table(
            &["matrix", "locality", "hism_cyc/nnz", "crs_cyc/nnz", "speedup"],
            &rows
        )
    );
    let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    let max = speedups.iter().copied().fold(0.0, f64::max);
    println!(
        "average {avg:.2}x, max {max:.2}x   (reference [5] reports up to 5x, pattern-dependent)"
    );
    write_csv(
        "results/spmv.csv",
        &["matrix", "locality", "hism_cyc_per_nnz", "crs_cyc_per_nnz", "speedup"],
        &rows,
    )
    .expect("write results/spmv.csv");
    eprintln!("wrote results/spmv.csv");
}
