//! Extension experiment: HiSM vs CRS sparse matrix–vector multiplication
//! on the same simulated machine.
//!
//! This is not a figure of the STM paper itself — it validates the claim
//! the paper leans on ("in \[5\] the authors report for multiplication of a
//! sparse matrix with a vector a speedup of up to 5 times (depending on
//! the sparsity pattern) using the novel HiSM storage format"): the HiSM
//! SpMV kernel should win most clearly on high-locality matrices, with a
//! pattern-dependent speedup in the low single digits.

use stm_bench::output::{format_table, write_csv};
use stm_bench::{run_batch, run_kernel, sets_from_env, RunConfig};

fn main() {
    let (sets, tag) = sets_from_env();
    let cfg = RunConfig::from_env();
    let per_matrix = run_batch(
        cfg.worker_count(sets.by_locality.len()),
        &sets.by_locality,
        |_, entry| {
            let run = |kernel| {
                run_kernel(&cfg, kernel, entry).unwrap_or_else(|e| panic!("{}: {e}", entry.name))
            };
            let hism = run("spmv_hism");
            let crs = run("spmv_crs");
            // Functional agreement between the two simulated kernels (both
            // already verified against the host oracle by the harness).
            let yh = hism.output.as_vector().expect("spmv output");
            let yc = crs.output.as_vector().expect("spmv output");
            for (a, b) in yh.iter().zip(yc) {
                assert!(
                    (a - b).abs() <= 1e-2 * (1.0 + b.abs()),
                    "{}: SpMV kernels disagree ({a} vs {b})",
                    entry.name
                );
            }
            let speedup = crs.report.cycles as f64 / hism.report.cycles.max(1) as f64;
            let row = vec![
                entry.name.clone(),
                format!("{:.3}", entry.metrics.locality),
                format!("{:.2}", hism.report.cycles_per_nnz()),
                format!("{:.2}", crs.report.cycles_per_nnz()),
                format!("{speedup:.2}"),
            ];
            (row, speedup)
        },
    );
    let (rows, speedups): (Vec<_>, Vec<_>) = per_matrix.into_iter().unzip();
    println!("Extension — SpMV: HiSM vs CRS on the locality set (suite: {tag})");
    println!(
        "{}",
        format_table(
            &[
                "matrix",
                "locality",
                "hism_cyc/nnz",
                "crs_cyc/nnz",
                "speedup"
            ],
            &rows
        )
    );
    let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    let max = speedups.iter().copied().fold(0.0, f64::max);
    println!(
        "average {avg:.2}x, max {max:.2}x   (reference [5] reports up to 5x, pattern-dependent)"
    );
    write_csv(
        "results/spmv.csv",
        &[
            "matrix",
            "locality",
            "hism_cyc_per_nnz",
            "crs_cyc_per_nnz",
            "speedup",
        ],
        &rows,
    )
    .expect("write results/spmv.csv");
    eprintln!("wrote results/spmv.csv");
}
