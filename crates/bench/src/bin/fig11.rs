//! Regenerates **Fig. 11**: transposition performance (cycles per
//! non-zero for HiSM and CRS, plus the HiSM-vs-CRS speedup) over the ten
//! matrices selected by *locality*. The paper's reading: the speedup
//! "grows monotonically with the growth of the matrix locality"; its
//! range on this set is 1.8–32.0 (average 16.5).

use stm_bench::baseline::Baseline;
use stm_bench::output::{
    figure_rows, format_table, print_format_decisions, print_trace_rollup, write_csv,
    FIGURE_HEADERS,
};
use stm_bench::{bench_json_from_env, run_set, sets_from_env, RunConfig, SpeedupSummary};

fn main() {
    stm_bench::handle_help(
        "fig11",
        "Fig. 11: transposition performance over the locality-sorted set.",
        &[],
    );
    let (sets, tag) = sets_from_env();
    let cfg = RunConfig::from_env();
    let results = run_set(&cfg, &sets.by_locality);
    let rows = figure_rows(&results, cfg.backend.name());
    println!("Fig. 11 — Performance w.r.t. matrix locality (suite: {tag})");
    println!("{}", format_table(&FIGURE_HEADERS, &rows));
    let s = SpeedupSummary::of(&results);
    println!(
        "speedup range {:.1} .. {:.1}, average {:.1}   (paper: 1.8 .. 32.0, avg 16.5)",
        s.min, s.max, s.avg
    );
    print_format_decisions(&results);
    print_trace_rollup(&results);
    write_csv("results/fig11.csv", &FIGURE_HEADERS, &rows).expect("write results/fig11.csv");
    eprintln!("wrote results/fig11.csv");
    if let Some(path) = bench_json_from_env() {
        let baseline = Baseline::from_results(
            "fig11",
            tag,
            cfg.timing.name(),
            cfg.backend.name(),
            &results,
        );
        std::fs::write(&path, baseline.to_json())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
