//! Fault-injection smoke run for CI: corrupts exactly one matrix of a
//! small suite, runs the batch in parallel, and checks that
//!
//! * the run completes (no panic takes down the pool),
//! * exactly the corrupted matrix reports `Failed` with a typed error,
//! * every other matrix is bit-identical to a clean serial run.
//!
//! Flags: `--jobs N` sizes the pool, `--class <name>` picks the fault
//! class (default `pointer_retarget`), `--index N` the victim (default
//! 2), `--strict` panics on the failure instead (CI asserts the nonzero
//! exit).
//!
//! Exits 0 when all checks hold, 1 otherwise.

use stm_bench::{run_set, FaultSpec, RunConfig};
use stm_dsab::{experiment_sets, quick_catalogue};
use stm_hism::FaultClass;

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    stm_bench::handle_help(
        "faultsmoke",
        "Fault-injection smoke: corrupt one matrix, check containment.",
        &[
            (
                "--class NAME",
                "fault class to inject (default pointer_retarget)",
            ),
            ("--index N", "set position of the victim matrix (default 2)"),
        ],
    );
    let class = match arg_value("--class") {
        Some(name) => FaultClass::from_name(&name)
            .unwrap_or_else(|| panic!("unknown fault class {name:?}; see `FaultClass::ALL`")),
        None => FaultClass::PointerRetarget,
    };
    let set = experiment_sets(&quick_catalogue(), 6).by_locality;
    let index: usize = arg_value("--index")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.min(set.len() - 1));
    assert!(
        index < set.len(),
        "--index {index} outside the {} matrices",
        set.len()
    );

    let clean_cfg = RunConfig {
        jobs: Some(1),
        ..RunConfig::from_env()
    };
    let clean = run_set(&clean_cfg, &set);

    let cfg = RunConfig {
        fault: Some(FaultSpec {
            index,
            class,
            seed: 0xf0_57a7,
        }),
        ..RunConfig::from_env()
    };
    // Under --strict this panics (nonzero exit) — which is the behavior
    // CI asserts for the strict leg.
    let faulted = run_set(&cfg, &set);

    let mut bad = 0usize;
    for (i, (c, f)) in clean.iter().zip(&faulted).enumerate() {
        if i == index {
            match f.status.failure() {
                Some(failure) => {
                    println!("[{i}] {}: failed as intended: {failure}", f.name);
                }
                None => {
                    eprintln!("[{i}] {}: fault {class} did not fail the matrix", f.name);
                    bad += 1;
                }
            }
            continue;
        }
        if !f.status.is_ok() {
            eprintln!(
                "[{i}] {}: unexpected failure: {}",
                f.name,
                f.status.failure().unwrap()
            );
            bad += 1;
            continue;
        }
        let same = c.hism.as_ref().map(|r| r.cycles) == f.hism.as_ref().map(|r| r.cycles)
            && c.crs.as_ref().map(|r| r.cycles) == f.crs.as_ref().map(|r| r.cycles);
        if !same {
            eprintln!("[{i}] {}: diverged from the clean serial run", f.name);
            bad += 1;
        }
    }
    let failed_rows = faulted.iter().filter(|r| !r.status.is_ok()).count();
    if failed_rows != 1 {
        eprintln!("expected exactly 1 failed row, found {failed_rows}");
        bad += 1;
    }
    if bad == 0 {
        println!(
            "fault smoke ok: {} matrices, fault {class} at index {index}, 1 failed row, rest clean",
            set.len()
        );
    } else {
        eprintln!("fault smoke FAILED: {bad} problem(s)");
        std::process::exit(1);
    }
}
