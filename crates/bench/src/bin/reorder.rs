//! Extension experiment: software reordering (reverse Cuthill–McKee) as
//! the complement to the STM.
//!
//! The paper's introduction frames hardware like the STM against the
//! software techniques most systems use instead. RCM is the classic one:
//! it permutes a matrix to cluster non-zeros near the diagonal, raising
//! exactly the *locality* metric the STM exploits. This experiment
//! transposes each matrix of the locality set before and after RCM and
//! reports how locality, HiSM cost, and the speedup move — hardware and
//! software attacking the same quantity.

use stm_bench::output::{format_table, write_csv};
use stm_bench::{run_batch, run_matrix, sets_from_env, RunConfig};
use stm_dsab::SuiteEntry;
use stm_sparse::reorder::rcm_reorder;
use stm_sparse::{Coo, MatrixMetrics};

fn measure(cfg: &RunConfig, name: &str, coo: &Coo) -> (f64, f64, f64) {
    let metrics = MatrixMetrics::compute(coo);
    let entry = SuiteEntry {
        name: name.into(),
        coo: coo.clone(),
        metrics,
    };
    let r = run_matrix(cfg, &entry);
    let hism = r
        .hism
        .as_ref()
        .unwrap_or_else(|| panic!("{name}: {}", r.status.failure().expect("failed")));
    let speedup = r.speedup().expect("both kernels succeeded");
    (metrics.locality, hism.cycles_per_nnz(), speedup)
}

fn main() {
    let (sets, tag) = sets_from_env();
    let cfg = RunConfig::from_env();
    let square: Vec<&SuiteEntry> = sets
        .by_locality
        .iter()
        .filter(|e| e.coo.rows() == e.coo.cols()) // RCM needs a square structure
        .collect();
    let rows = run_batch(cfg.worker_count(square.len()), &square, |_, entry| {
        let (loc0, hism0, sp0) = measure(&cfg, &entry.name, &entry.coo);
        let reordered = rcm_reorder(&entry.coo).expect("square matrix");
        let (loc1, hism1, sp1) = measure(&cfg, &entry.name, &reordered);
        vec![
            entry.name.clone(),
            format!("{loc0:.3}"),
            format!("{loc1:.3}"),
            format!("{hism0:.2}"),
            format!("{hism1:.2}"),
            format!("{sp0:.1}"),
            format!("{sp1:.1}"),
        ]
    });
    println!("Extension — RCM reordering vs the STM (locality set, suite: {tag})");
    println!(
        "{}",
        format_table(
            &[
                "matrix",
                "loc",
                "loc(rcm)",
                "hism c/nnz",
                "hism(rcm)",
                "speedup",
                "speedup(rcm)"
            ],
            &rows
        )
    );
    println!("Reading: RCM raises locality on scattered matrices, cutting the");
    println!("HiSM cost per non-zero — hardware and software attack the same");
    println!("quantity, and compose.");
    write_csv(
        "results/reorder.csv",
        &[
            "matrix",
            "loc_before",
            "loc_after",
            "hism_before",
            "hism_after",
            "speedup_before",
            "speedup_after",
        ],
        &rows,
    )
    .expect("write results/reorder.csv");
    eprintln!("wrote results/reorder.csv");
}
