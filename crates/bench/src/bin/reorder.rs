//! Extension experiment: software reordering (reverse Cuthill–McKee) as
//! the complement to the STM.
//!
//! The paper's introduction frames hardware like the STM against the
//! software techniques most systems use instead. RCM is the classic one:
//! it permutes a matrix to cluster non-zeros near the diagonal, raising
//! exactly the *locality* metric the STM exploits. This experiment
//! transposes each matrix of the locality set before and after RCM and
//! reports how locality, HiSM cost, and the speedup move — hardware and
//! software attacking the same quantity.

use stm_bench::output::{format_table, write_csv};
use stm_bench::sets_from_env;
use stm_core::kernels::{transpose_crs, transpose_hism};
use stm_core::StmConfig;
use stm_hism::{build, HismImage};
use stm_sparse::reorder::rcm_reorder;
use stm_sparse::{Coo, Csr, MatrixMetrics};
use stm_vpsim::VpConfig;

fn measure(coo: &Coo) -> (f64, f64, f64) {
    let vp = VpConfig::paper();
    let h = build::from_coo(coo, 64).expect("matrix fits HiSM");
    let (_, hr) = transpose_hism(&vp, StmConfig::default(), &HismImage::encode(&h));
    let (_, cr) = transpose_crs(&vp, &Csr::from_coo(coo));
    (
        MatrixMetrics::compute(coo).locality,
        hr.cycles_per_nnz(),
        cr.cycles as f64 / hr.cycles.max(1) as f64,
    )
}

fn main() {
    let (sets, tag) = sets_from_env();
    let mut rows = Vec::new();
    for entry in &sets.by_locality {
        if entry.coo.rows() != entry.coo.cols() {
            continue; // RCM needs a square symmetrizable structure
        }
        let (loc0, hism0, sp0) = measure(&entry.coo);
        let reordered = rcm_reorder(&entry.coo).expect("square matrix");
        let (loc1, hism1, sp1) = measure(&reordered);
        rows.push(vec![
            entry.name.clone(),
            format!("{loc0:.3}"),
            format!("{loc1:.3}"),
            format!("{hism0:.2}"),
            format!("{hism1:.2}"),
            format!("{sp0:.1}"),
            format!("{sp1:.1}"),
        ]);
    }
    println!("Extension — RCM reordering vs the STM (locality set, suite: {tag})");
    println!(
        "{}",
        format_table(
            &["matrix", "loc", "loc(rcm)", "hism c/nnz", "hism(rcm)", "speedup", "speedup(rcm)"],
            &rows
        )
    );
    println!("Reading: RCM raises locality on scattered matrices, cutting the");
    println!("HiSM cost per non-zero — hardware and software attack the same");
    println!("quantity, and compose.");
    write_csv(
        "results/reorder.csv",
        &["matrix", "loc_before", "loc_after", "hism_before", "hism_after", "speedup_before", "speedup_after"],
        &rows,
    )
    .expect("write results/reorder.csv");
    eprintln!("wrote results/reorder.csv");
}
