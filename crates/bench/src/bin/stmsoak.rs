//! Resilient chaos-soak driver: runs a suite through the soak pipeline
//! (bounded queue, deadlines, circuit-breaker fallback, checkpoint/
//! resume) and prints the per-entry table, breaker activity, `resil.*`
//! counters and the deterministic report digest.
//!
//! Flags (all also accept `--flag=value`):
//!
//! * `--quick` / `STM_SUITE=quick` — reduced suite (6 matrices);
//! * `--jobs N` / `STM_JOBS` — worker pool size;
//! * `--trace DIR` / `STM_TRACE` — export the pipeline's `resil` trace;
//! * `--checkpoint FILE` — resume from `FILE` if present, checkpoint
//!   every commit (atomic rewrite);
//! * `--fault-rate PCT` — chaos injection probability per item;
//! * `--seed N` — chaos seed (default `0xC0FFEE`);
//! * `--verify-mode {off,checksum,dual,vote}` — output integrity
//!   verification: `checksum` re-verifies the HiSM section checksums,
//!   `dual` re-executes on one alternate backend (escalating to a
//!   third on disagreement), `vote` runs 2-of-3 across
//!   sim/scalar/simd and recovers the majority answer;
//! * `--sdc-rate PCT` / `--sdc-seed N` — silent-data-corruption
//!   injection: flips one seeded bit in simulated memory mid-run
//!   (implies oracle `verify=false` so the flip stays *silent*);
//! * `--deadline CYCLES` — per-run cycle budget (typed abort);
//! * `--queue-depth N` — bounded window / breaker decision lag
//!   (default 8);
//! * `--breaker-threshold N` / `--breaker-cooldown N` — breaker tuning;
//! * `--max-attempts N` / `--retry-delay-ms N` — retry tuning;
//! * `--stop-after N` — commit N items then stop cleanly (simulated
//!   kill; resume with the same `--checkpoint`);
//! * `--metrics FILE` — write the pipeline's counters and cycle
//!   histograms as a one-shot Prometheus text snapshot (the same
//!   grammar `stmserve --metrics-addr` exposes live);
//! * `--format {coo,csr,csc,jd,sell,auto}` / `STM_FORMAT` — soak a
//!   third slot per item: the selected format's transpose kernel
//!   (`auto` = cost-model autotuner per matrix). The slot shares
//!   chaos/deadline/retry/fallback handling but has no breaker.
//!
//! Exit codes: 0 = pipeline completed and every failure was contained
//! as `degraded`/`failed`/`corrupted` rows; 1 = a containment
//! invariant broke; 2 = configuration/checkpoint/IO error.
//!
//! The `digest: 0x…` line is byte-stable across `--jobs` values and
//! kill/resume boundaries — CI compares it between an uninterrupted run
//! and a `--stop-after` + resume pair.

use stm_bench::output::format_table;
use stm_bench::resilient::{
    self, ChaosSpec, EntryStatus, Outcome, SdcSpec, SlotRecord, SoakConfig, VerifyMode,
};
use stm_bench::RunConfig;

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn parsed<T: std::str::FromStr>(flag: &str) -> Option<T> {
    arg_value(flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("stmsoak: bad value {v:?} for {flag}");
            std::process::exit(2);
        })
    })
}

fn slot_cell(s: &SlotRecord) -> String {
    match s.outcome {
        Outcome::Success => s.cycles.to_string(),
        _ => match &s.fallback {
            Some(f) if f.ok => format!("{}:{}", f.kernel, f.cycles),
            _ => "-".to_string(),
        },
    }
}

fn main() {
    stm_bench::handle_help(
        "stmsoak",
        "Resilient chaos soak: bounded queue, deadlines, breaker fallback, checkpoint/resume.",
        &[
            ("--deadline CYCLES", "per-run cycle budget (typed abort)"),
            (
                "--queue-depth N",
                "bounded window / breaker decision lag (default 8)",
            ),
            ("--breaker-threshold N", "consecutive failures to trip"),
            ("--breaker-cooldown N", "skipped decisions before a probe"),
            ("--max-attempts N", "bounded retry attempts per slot"),
            ("--retry-delay-ms N", "retry backoff base delay"),
            ("--fault-rate PCT", "chaos injection probability per item"),
            ("--seed N", "chaos seed (default 0xC0FFEE)"),
            (
                "--verify-mode M",
                "off|checksum|dual|vote — output integrity verification",
            ),
            (
                "--sdc-rate PCT",
                "silent mid-run bit-flip probability per item",
            ),
            ("--sdc-seed N", "SDC injection seed (default 0x5DC)"),
            (
                "--checkpoint FILE",
                "resume from FILE if present, checkpoint every commit",
            ),
            ("--stop-after N", "commit N items then stop cleanly"),
            (
                "--metrics FILE",
                "write the pipeline counters/histograms as a Prometheus text snapshot",
            ),
        ],
    );
    let (sets, suite) = stm_bench::sets_from_env();
    let set = sets.by_locality;
    let mut cfg = SoakConfig {
        run: RunConfig::from_env(),
        ..SoakConfig::default()
    };
    cfg.trace = cfg.run.trace.take();
    cfg.deadline = parsed("--deadline");
    if let Some(w) = parsed("--queue-depth") {
        cfg.queue_depth = w;
    }
    if let Some(t) = parsed("--breaker-threshold") {
        cfg.breaker.threshold = t;
    }
    if let Some(c) = parsed("--breaker-cooldown") {
        cfg.breaker.cooldown = c;
    }
    if let Some(n) = parsed("--max-attempts") {
        cfg.retry.max_attempts = n;
    }
    if let Some(d) = parsed("--retry-delay-ms") {
        cfg.retry.base_delay_ms = d;
    }
    if let Some(rate) = parsed::<u32>("--fault-rate") {
        cfg.chaos = Some(ChaosSpec {
            rate_pct: rate,
            seed: parsed("--seed").unwrap_or(0xC0FFEE),
        });
    }
    if let Some(m) = arg_value("--verify-mode") {
        cfg.verify_mode = VerifyMode::from_name(&m).unwrap_or_else(|| {
            eprintln!("stmsoak: bad value {m:?} for --verify-mode (off|checksum|dual|vote)");
            std::process::exit(2);
        });
    }
    if let Some(rate) = parsed::<u32>("--sdc-rate") {
        cfg.sdc = Some(SdcSpec {
            rate_pct: rate,
            seed: parsed("--sdc-seed").unwrap_or(0x5DC),
        });
        // An SDC is only *silent* if the oracle check is off; otherwise
        // the flip surfaces as a typed Mismatch and the verify legs
        // never get to vote. Campaigns measure the verify plane, not
        // the oracle.
        cfg.run.verify = false;
    }
    cfg.checkpoint = arg_value("--checkpoint").map(Into::into);
    cfg.stop_after = parsed("--stop-after");
    cfg.format = cfg.run.format.take();

    let report = match resilient::run_soak(&cfg, &set) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stmsoak: {e}");
            std::process::exit(2);
        }
    };

    let has_format = cfg.format.is_some();
    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            let mut row = vec![
                e.name.clone(),
                slot_cell(&e.slots[0]),
                slot_cell(&e.slots[1]),
            ];
            if has_format {
                row.push(match e.slots.get(2) {
                    Some(s) => format!("{}:{}", s.kernel, slot_cell(s)),
                    None => "-".to_string(),
                });
            }
            row.push(e.slots.iter().map(|s| s.attempts).sum::<u64>().to_string());
            row.push(e.status.name().to_string());
            row
        })
        .collect();
    let mut headers = vec!["matrix", "hism_cyc", "crs_cyc"];
    if has_format {
        headers.push("format");
    }
    headers.extend(["attempts", "status"]);
    println!("{}", format_table(&headers, &rows));
    for (seq, kernel, from, to) in &report.transitions {
        println!("breaker[{kernel}] @{seq}: {} -> {}", from.name(), to.name());
    }
    let c = |name: &str| report.trace.counter(name);
    println!(
        "status: suite={suite} n={} ok={} degraded={} failed={} corrupted={} chaos_hits={} deadline_exceeded={}",
        report.entries.len(),
        report.count(EntryStatus::Ok),
        report.count(EntryStatus::Degraded),
        report.count(EntryStatus::Failed),
        report.count(EntryStatus::Corrupted),
        c("resil.chaos.injected"),
        c("resil.deadline.exceeded"),
    );
    if cfg.verify_mode != VerifyMode::Off || cfg.sdc.is_some() {
        println!(
            "integrity: mode={} verify_slots={} verify_legs={} sdc_injected={} detected={} recovered={} unrecovered={}",
            cfg.verify_mode.name(),
            c("integrity.verify.slots"),
            c("integrity.verify.legs"),
            c("resil.sdc.injected"),
            c("integrity.sdc.detected"),
            c("integrity.sdc.recovered"),
            c("integrity.sdc.unrecovered"),
        );
    }
    println!(
        "breaker: trips={} probes={} recoveries={}",
        c("resil.breaker.trips"),
        c("resil.breaker.probes"),
        c("resil.breaker.recoveries"),
    );
    println!(
        "retries: extra_attempts={} fallback_runs={} rescues={}",
        c("resil.retry.attempts"),
        c("resil.fallback.runs"),
        c("resil.fallback.rescues"),
    );
    if report.resumed > 0 {
        println!("resumed: {} entries from checkpoint", report.resumed);
    }
    if report.halted {
        println!("halted: stopped after {} commits", report.entries.len());
    }
    println!("digest: 0x{:016x}", report.digest);

    // One-shot Prometheus snapshot: the pipeline's counters and cycle
    // histograms in the same exposition grammar the server scrapes
    // serve, so offline soak runs and live service runs are comparable
    // with the same tooling.
    if let Some(path) = arg_value("--metrics") {
        use stm_obs::telemetry::{render_prometheus, WindowSummary};
        let mut snap = stm_obs::MetricsSnapshot::default();
        for (name, v) in &report.trace.counters {
            snap.counters.insert(name.clone(), *v);
        }
        for (name, h) in &report.trace.histograms {
            snap.windows.insert(
                name.clone(),
                WindowSummary {
                    window: h.clone(),
                    total_count: h.count(),
                    total_sum: h.sum(),
                },
            );
        }
        match std::fs::write(&path, render_prometheus(&snap)) {
            Ok(()) => println!("metrics: {path}"),
            Err(e) => {
                eprintln!("stmsoak: writing {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    // Containment invariants: a failed primary never leaks an `ok` row,
    // and (unless deliberately halted) the whole suite committed.
    let mut bad = 0usize;
    for e in &report.entries {
        let slot_failed = e
            .slots
            .iter()
            .any(|s| s.outcome != Outcome::Success || s.fallback.is_some());
        if slot_failed && e.status == EntryStatus::Ok {
            eprintln!("[{}] {}: failure leaked into an ok row", e.index, e.name);
            bad += 1;
        }
    }
    if !report.halted && report.entries.len() != set.len() {
        eprintln!(
            "committed {} of {} entries without a stop-after halt",
            report.entries.len(),
            set.len()
        );
        bad += 1;
    }
    if bad > 0 {
        eprintln!("stmsoak FAILED: {bad} containment problem(s)");
        std::process::exit(1);
    }
}
