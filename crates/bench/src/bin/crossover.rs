//! Crossover study: at what average row length does the *vectorized* CRS
//! transposition overtake the *scalar* one?
//!
//! The paper vectorizes the CRS baseline per row, paying six vector
//! memory startups (20 cycles each) per row; below a certain ANZ the
//! startups outweigh the 4-elements/cycle throughput and plain scalar
//! code wins. This sweep holds everything fixed except the row length
//! (n = 256 rows, uniformly filled) and locates the crossover — the
//! quantitative backing for the baselines study and for the diagonal
//! outlier analysis in EXPERIMENTS.md. The STM column is shown for scale:
//! it beats both at every point.

use stm_bench::output::{format_table, write_csv};
use stm_bench::{run_batch, run_kernel, RunConfig};
use stm_dsab::SuiteEntry;
use stm_sparse::{Coo, MatrixMetrics};

/// A 256-row matrix with exactly `anz` non-zeros per row, columns spread
/// deterministically over 4096.
fn fixed_anz_matrix(anz: usize) -> Coo {
    let rows = 256usize;
    let cols = 4096usize;
    let mut coo = Coo::new(rows, cols);
    for r in 0..rows {
        for k in 0..anz {
            let c = (r * 37 + k * 131 + (k * k) % 17) % cols;
            coo.push(r, c, (r + k) as f32 + 1.0);
        }
    }
    coo.canonicalize();
    coo
}

fn main() {
    let cfg = RunConfig::from_env();
    let anz_values = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let entries: Vec<SuiteEntry> = anz_values
        .iter()
        .map(|&anz| {
            let coo = fixed_anz_matrix(anz);
            let metrics = MatrixMetrics::compute(&coo);
            SuiteEntry {
                name: format!("anz{anz}"),
                coo,
                metrics,
            }
        })
        .collect();
    let measured = run_batch(cfg.worker_count(entries.len()), &entries, |i, entry| {
        let run = |kernel| {
            run_kernel(&cfg, kernel, entry)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name))
                .report
        };
        let vec_r = run("transpose_crs");
        let sc_r = run("transpose_crs_scalar");
        let hism_r = run("transpose_hism");
        (anz_values[i], hism_r, vec_r, sc_r)
    });
    let mut rows_out = Vec::new();
    let mut crossover: Option<usize> = None;
    for (anz, hism_r, vec_r, sc_r) in &measured {
        if crossover.is_none() && vec_r.cycles < sc_r.cycles {
            crossover = Some(*anz);
        }
        rows_out.push(vec![
            anz.to_string(),
            format!("{:.2}", hism_r.cycles_per_nnz()),
            format!("{:.2}", vec_r.cycles_per_nnz()),
            format!("{:.2}", sc_r.cycles_per_nnz()),
            (if vec_r.cycles < sc_r.cycles {
                "vector"
            } else {
                "scalar"
            })
            .into(),
        ]);
    }
    println!("Vector-vs-scalar CRS crossover (256 rows, ANZ swept; cycles/nnz)");
    println!(
        "{}",
        format_table(
            &["anz", "hism+stm", "crs(vector)", "crs(scalar)", "best crs"],
            &rows_out
        )
    );
    match crossover {
        Some(a) => println!(
            "crossover: vectorized CRS overtakes scalar CRS at ANZ ≈ {a} \
             (six 20-cycle startups per row amortized)"
        ),
        None => println!("no crossover in the swept range"),
    }
    write_csv(
        "results/crossover.csv",
        &["anz", "hism_stm", "crs_vector", "crs_scalar", "best_crs"],
        &rows_out,
    )
    .expect("write results/crossover.csv");
    eprintln!("wrote results/crossover.csv");
}
