//! `simcorr` — the sim-vs-silicon correlation harness.
//!
//! Runs every host-capable kernel over the deduplicated quick catalogue
//! on three legs — the cycle-accurate simulator, the forced-scalar host
//! backend, and the auto-dispatched SIMD host backend — asserts the
//! mandatory three-leg digest equality, and writes one CSV row per
//! (matrix, kernel) correlating simulated cycles against measured host
//! wall-clock. Row order is deterministic (matrices in catalogue order,
//! kernels in registry order); the wall-clock columns are measurements
//! and vary run to run, the cycle and digest columns do not.
//!
//! Exit status: `1` on any kernel failure, digest divergence between
//! legs, or a scalar-host leg that fails to beat the simulator's
//! wall-clock by at least 5x on the largest catalogue matrix (the
//! native tier exists to be fast; losing that property is a
//! regression). `0` otherwise.

use std::time::Instant;
use stm_bench::output::{format_table, write_csv};
use stm_bench::RunConfig;
use stm_core::kernels::registry::{self, Backend};
use stm_dsab::{experiment_sets, quick_catalogue, SuiteEntry};

/// One leg's measurement: the output digest, the simulated cycles the
/// report charged, and the best-of-`reps` wall-clock for the run stage.
struct Leg {
    digest: u64,
    cycles: u64,
    wall_ns: u64,
}

/// Runs `kernel` on `entry` under `backend`, timing only the run stage.
/// Host legs use the report's own `wall_ns` (which times exactly the
/// host kernel); the sim leg is timed around `run` here. The best of
/// `reps` repetitions is kept — the minimum is the standard estimator
/// for "how fast can this go" under scheduler noise.
fn run_leg(entry: &SuiteEntry, kernel: &str, backend: Backend, reps: usize) -> Result<Leg, String> {
    let mut ctx = RunConfig::default().ctx();
    ctx.backend = backend;
    let mut k = registry::create(kernel).ok_or_else(|| format!("unknown kernel {kernel:?}"))?;
    k.prepare(&entry.coo, &ctx)
        .map_err(|e| format!("{kernel} prepare: {e}"))?;
    let mut best: Option<Leg> = None;
    for _ in 0..reps.max(1) {
        let mut c = ctx.clone();
        let t0 = Instant::now();
        let report = k
            .run(&mut c)
            .map_err(|e| format!("{kernel} run ({}): {e}", backend.name()))?;
        let measured = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let wall_ns = report.report.wall_ns.unwrap_or(measured);
        let leg = Leg {
            digest: report.output_digest,
            cycles: report.report.cycles,
            wall_ns,
        };
        match &mut best {
            Some(b) if b.wall_ns <= leg.wall_ns => {}
            _ => best = Some(leg),
        }
    }
    Ok(best.expect("at least one rep"))
}

/// `--reps N` / `--reps=N` / `STM_SIMCORR_REPS=N` (default 3).
fn reps_from_env() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--reps" {
            return args.next().and_then(|n| n.parse().ok()).unwrap_or(3);
        }
        if let Some(n) = a.strip_prefix("--reps=") {
            return n.parse().unwrap_or(3);
        }
    }
    std::env::var("STM_SIMCORR_REPS")
        .ok()
        .and_then(|n| n.parse().ok())
        .unwrap_or(3)
}

const HEADERS: [&str; 10] = [
    "matrix",
    "nnz",
    "kernel",
    "sim_cycles",
    "sim_wall_ns",
    "scalar_wall_ns",
    "simd_wall_ns",
    "sim/scalar_wall",
    "ns_per_cycle",
    "digests",
];

fn main() {
    stm_bench::handle_help(
        "simcorr",
        "Three-leg sim-vs-host correlation over the quick catalogue.",
        &[(
            "--reps N",
            "host-leg repetitions, best-of (or STM_SIMCORR_REPS=N, default 3)",
        )],
    );
    let reps = reps_from_env();
    let sets = experiment_sets(&quick_catalogue(), 6);
    // The three per-axis sets overlap; dedup by name, catalogue order.
    let mut seen = std::collections::HashSet::new();
    let entries: Vec<&SuiteEntry> = sets.all().filter(|e| seen.insert(e.name.clone())).collect();
    let simd_isa = Backend::Simd.resolve().expect("simd resolves to an ISA");
    println!(
        "simcorr: {} matrices x {} kernels, {reps} host reps, simd leg runs {}",
        entries.len(),
        registry::HOST_CAPABLE.len(),
        simd_isa.name()
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut failures = 0usize;
    let largest = entries
        .iter()
        .max_by_key(|e| e.metrics.nnz)
        .expect("catalogue is not empty")
        .name
        .clone();
    let mut gate_violations = Vec::new();
    for entry in &entries {
        for &kernel in &registry::HOST_CAPABLE {
            let legs: Result<(Leg, Leg, Leg), String> = (|| {
                Ok((
                    run_leg(entry, kernel, Backend::Sim, 1)?,
                    run_leg(entry, kernel, Backend::Scalar, reps)?,
                    run_leg(entry, kernel, Backend::Simd, reps)?,
                ))
            })();
            let (sim, scalar, simd) = match legs {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("FAIL {}/{kernel}: {e}", entry.name);
                    failures += 1;
                    continue;
                }
            };
            let equal = sim.digest == scalar.digest && sim.digest == simd.digest;
            if !equal {
                eprintln!(
                    "DIVERGENCE {}/{kernel}: sim {:016x} scalar {:016x} {} {:016x}",
                    entry.name,
                    sim.digest,
                    scalar.digest,
                    simd_isa.name(),
                    simd.digest
                );
                failures += 1;
            }
            let ratio = sim.wall_ns as f64 / scalar.wall_ns.max(1) as f64;
            if entry.name == largest && ratio < 5.0 {
                gate_violations.push(format!(
                    "{}/{kernel}: scalar host only {ratio:.1}x faster than the simulator",
                    entry.name
                ));
            }
            rows.push(vec![
                entry.name.clone(),
                entry.metrics.nnz.to_string(),
                kernel.to_string(),
                sim.cycles.to_string(),
                sim.wall_ns.to_string(),
                scalar.wall_ns.to_string(),
                simd.wall_ns.to_string(),
                format!("{ratio:.2}"),
                format!("{:.4}", scalar.wall_ns as f64 / sim.cycles.max(1) as f64),
                if equal {
                    "equal".into()
                } else {
                    "DIVERGED".into()
                },
            ]);
        }
    }
    println!("{}", format_table(&HEADERS, &rows));
    write_csv("results/sim-correlation.csv", &HEADERS, &rows)
        .expect("write results/sim-correlation.csv");
    eprintln!("wrote results/sim-correlation.csv");
    for v in &gate_violations {
        eprintln!("SPEED GATE: {v}");
    }
    if failures > 0 || !gate_violations.is_empty() {
        eprintln!(
            "simcorr: {failures} failures/divergences, {} speed-gate violations",
            gate_violations.len()
        );
        std::process::exit(1);
    }
    println!(
        "simcorr: all {} rows three-leg equal; scalar host beat the simulator >=5x on {largest}",
        rows.len()
    );
}
