//! Three-way transposition comparison: the STM+HiSM mechanism vs the
//! *vectorized* CRS baseline (the paper's comparison) vs a *fully scalar*
//! CRS implementation (the "traditional scalar architecture" of the
//! paper's introduction). Shows how much of the win comes from
//! vectorization alone and how much from the format + functional unit.

use stm_bench::output::{format_table, write_csv};
use stm_bench::sets_from_env;
use stm_core::kernels::{transpose_crs, transpose_crs_scalar, transpose_hism};
use stm_core::StmConfig;
use stm_hism::{build, HismImage};
use stm_sparse::Csr;
use stm_vpsim::VpConfig;

fn main() {
    let (sets, tag) = sets_from_env();
    let vp = VpConfig::paper();
    let mut rows = Vec::new();
    for entry in &sets.by_locality {
        let h = build::from_coo(&entry.coo, 64).expect("suite matrix");
        let (_, hism) = transpose_hism(&vp, StmConfig::default(), &HismImage::encode(&h));
        let csr = Csr::from_coo(&entry.coo);
        let (_, vec_crs) = transpose_crs(&vp, &csr);
        let (_, sc_crs) = transpose_crs_scalar(&vp, &csr);
        rows.push(vec![
            entry.name.clone(),
            format!("{:.2}", hism.cycles_per_nnz()),
            format!("{:.2}", vec_crs.cycles_per_nnz()),
            format!("{:.2}", sc_crs.cycles_per_nnz()),
            format!("{:.1}", vec_crs.cycles as f64 / hism.cycles.max(1) as f64),
            format!("{:.1}", sc_crs.cycles as f64 / hism.cycles.max(1) as f64),
        ]);
    }
    println!("Transposition baselines over the locality set (suite: {tag}, cycles/nnz)");
    println!(
        "{}",
        format_table(
            &["matrix", "hism+stm", "crs(vector)", "crs(scalar)", "vs vec", "vs scalar"],
            &rows
        )
    );
    write_csv(
        "results/baselines.csv",
        &["matrix", "hism_stm", "crs_vector", "crs_scalar", "speedup_vs_vector", "speedup_vs_scalar"],
        &rows,
    )
    .expect("write results/baselines.csv");
    eprintln!("wrote results/baselines.csv");
}
