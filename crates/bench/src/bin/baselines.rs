//! Three-way transposition comparison: the STM+HiSM mechanism vs the
//! *vectorized* CRS baseline (the paper's comparison) vs a *fully scalar*
//! CRS implementation (the "traditional scalar architecture" of the
//! paper's introduction). Shows how much of the win comes from
//! vectorization alone and how much from the format + functional unit.

use stm_bench::output::{format_table, write_csv};
use stm_bench::{run_batch, run_kernel, sets_from_env, RunConfig};

fn main() {
    let (sets, tag) = sets_from_env();
    let cfg = RunConfig::from_env();
    let rows = run_batch(
        cfg.worker_count(sets.by_locality.len()),
        &sets.by_locality,
        |_, entry| {
            // The generated suite is trusted input — a failure here is a
            // harness bug, so abort loudly.
            let run = |kernel| {
                run_kernel(&cfg, kernel, entry)
                    .unwrap_or_else(|e| panic!("{}: {e}", entry.name))
                    .report
            };
            let hism = run("transpose_hism");
            let vec_crs = run("transpose_crs");
            let sc_crs = run("transpose_crs_scalar");
            vec![
                entry.name.clone(),
                format!("{:.2}", hism.cycles_per_nnz()),
                format!("{:.2}", vec_crs.cycles_per_nnz()),
                format!("{:.2}", sc_crs.cycles_per_nnz()),
                format!("{:.1}", vec_crs.cycles as f64 / hism.cycles.max(1) as f64),
                format!("{:.1}", sc_crs.cycles as f64 / hism.cycles.max(1) as f64),
            ]
        },
    );
    println!("Transposition baselines over the locality set (suite: {tag}, cycles/nnz)");
    println!(
        "{}",
        format_table(
            &[
                "matrix",
                "hism+stm",
                "crs(vector)",
                "crs(scalar)",
                "vs vec",
                "vs scalar"
            ],
            &rows
        )
    );
    write_csv(
        "results/baselines.csv",
        &[
            "matrix",
            "hism_stm",
            "crs_vector",
            "crs_scalar",
            "speedup_vs_vector",
            "speedup_vs_scalar",
        ],
        &rows,
    )
    .expect("write results/baselines.csv");
    eprintln!("wrote results/baselines.csv");
}
