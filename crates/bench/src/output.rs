//! Table rendering and CSV output for the figure binaries.

use crate::harness::{MatrixResult, RunStatus};
use std::io::Write;
use std::path::Path;

/// Renders an aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes a CSV file (creating the parent directory), headers first.
pub fn write_csv(
    path: impl AsRef<Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()
}

/// The standard per-matrix row of Figs. 11–13: name, the three metrics,
/// both kernels' cycles/nnz, the speedup, and the run status. A failed
/// kernel renders `-` in its numeric cells and `failed[stage]` in the
/// status cell; a matrix the soak pipeline degraded renders
/// `degraded[primary->fallback]` (no commas anywhere, so the CSV stays
/// one cell per column).
pub fn figure_rows(results: &[MatrixResult]) -> Vec<Vec<String>> {
    let per_nnz = |r: Option<&stm_core::TransposeReport>| match r {
        Some(r) => format!("{:.2}", r.cycles_per_nnz()),
        None => "-".to_string(),
    };
    results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.metrics.nnz.to_string(),
                format!("{:.3}", r.metrics.locality),
                format!("{:.2}", r.metrics.avg_nnz_per_row),
                per_nnz(r.hism.as_ref()),
                per_nnz(r.crs.as_ref()),
                match r.speedup() {
                    Some(s) => format!("{s:.2}"),
                    None => "-".to_string(),
                },
                match &r.status {
                    RunStatus::Ok => "ok".to_string(),
                    RunStatus::Degraded {
                        kernel, fallback, ..
                    } => format!("degraded[{kernel}->{fallback}]"),
                    RunStatus::Failed(f) => format!("failed[{}]", f.stage),
                },
            ]
        })
        .collect()
}

/// Prints the per-kernel trace roll-up table after a figure's main table
/// — a no-op when the run was not traced (`results` carry no roll-ups).
pub fn print_trace_rollup(results: &[MatrixResult]) {
    let rows: Vec<crate::trace::TraceRollup> =
        results.iter().flat_map(|r| r.traces.clone()).collect();
    if rows.is_empty() {
        return;
    }
    println!();
    println!("trace roll-up (final attempts only):");
    print!("{}", crate::trace::format_trace_rollup(&rows));
}

/// Header row matching [`figure_rows`].
pub const FIGURE_HEADERS: [&str; 8] = [
    "matrix",
    "nnz",
    "locality",
    "anz",
    "hism_cyc/nnz",
    "crs_cyc/nnz",
    "speedup",
    "status",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[2].ends_with("2"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("stm_bench_test_csv");
        let path = dir.join("t.csv");
        write_csv(&path, &["x", "y"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
