//! Table rendering and CSV output for the figure binaries.

use crate::harness::{MatrixResult, RunStatus};
use std::io::Write;
use std::path::Path;

/// Renders an aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes a CSV file (creating the parent directory), headers first.
pub fn write_csv(
    path: impl AsRef<Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()
}

/// The standard per-matrix row of Figs. 11–13: name, the three metrics,
/// both kernels' cycles/nnz, the speedup, the execution backend the run
/// was configured with (`RunConfig::backend`), and the run status. A
/// failed kernel renders `-` in its numeric cells and `failed[stage]` in
/// the status cell; a matrix the soak pipeline degraded renders
/// `degraded[primary->fallback]` (no commas anywhere, so the CSV stays
/// one cell per column).
pub fn figure_rows(results: &[MatrixResult], backend: &str) -> Vec<Vec<String>> {
    let per_nnz = |r: Option<&stm_core::TransposeReport>| match r {
        Some(r) => format!("{:.2}", r.cycles_per_nnz()),
        None => "-".to_string(),
    };
    results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.metrics.nnz.to_string(),
                format!("{:.3}", r.metrics.locality),
                format!("{:.2}", r.metrics.avg_nnz_per_row),
                per_nnz(r.hism.as_ref()),
                per_nnz(r.crs.as_ref()),
                match r.speedup() {
                    Some(s) => format!("{s:.2}"),
                    None => "-".to_string(),
                },
                backend.to_string(),
                match &r.status {
                    RunStatus::Ok => "ok".to_string(),
                    RunStatus::Degraded {
                        kernel, fallback, ..
                    } => format!("degraded[{kernel}->{fallback}]"),
                    RunStatus::Failed(f) => format!("failed[{}]", f.stage),
                    RunStatus::Corrupted {
                        kernel, backend, ..
                    } => match backend {
                        Some(b) => format!("corrupted[{kernel}->{b}]"),
                        None => format!("corrupted[{kernel}]"),
                    },
                },
            ]
        })
        .collect()
}

/// Prints the per-kernel trace roll-up table after a figure's main table
/// — a no-op when the run was not traced (`results` carry no roll-ups).
pub fn print_trace_rollup(results: &[MatrixResult]) {
    let rows: Vec<crate::trace::TraceRollup> =
        results.iter().flat_map(|r| r.traces.clone()).collect();
    if rows.is_empty() {
        return;
    }
    println!();
    println!("trace roll-up (final attempts only):");
    print!("{}", crate::trace::format_trace_rollup(&rows));
}

/// Per-matrix format-decision rows (see `RunConfig::format`): the
/// selection, the format it resolved to, the kernel that ran it, its
/// measured cycles, and the cost model's predicted cycles per format.
/// Fixed selections never consult the model, so their prediction cells
/// render `-`. Matrices without a format leg produce no row — the table
/// is empty (and [`print_format_decisions`] silent) for format-less
/// runs.
pub fn format_decision_rows(results: &[MatrixResult]) -> Vec<Vec<String>> {
    results
        .iter()
        .filter_map(|r| {
            let leg = r.format.as_ref()?;
            let mut row = vec![
                r.name.clone(),
                leg.selection.name().to_string(),
                leg.kind.name().to_string(),
                leg.kernel.to_string(),
                match &leg.report {
                    Some(rep) => rep.cycles.to_string(),
                    None => "-".to_string(),
                },
            ];
            for kind in stm_dsab::FormatKind::ALL {
                row.push(match &leg.decision {
                    Some(d) => d
                        .predicted
                        .iter()
                        .find(|(k, _)| *k == kind)
                        .map(|(_, c)| format!("{c:.0}"))
                        .unwrap_or_else(|| "-".to_string()),
                    None => "-".to_string(),
                });
            }
            Some(row)
        })
        .collect()
}

/// Header row matching [`format_decision_rows`].
pub const FORMAT_DECISION_HEADERS: [&str; 10] = [
    "matrix",
    "selection",
    "chosen",
    "kernel",
    "cycles",
    "pred_coo",
    "pred_csr",
    "pred_csc",
    "pred_jd",
    "pred_sell",
];

/// Prints the per-matrix format-decision table after a figure's main
/// table — a no-op when the run carried no format legs.
pub fn print_format_decisions(results: &[MatrixResult]) {
    let rows = format_decision_rows(results);
    if rows.is_empty() {
        return;
    }
    println!();
    println!("format decisions:");
    print!("{}", format_table(&FORMAT_DECISION_HEADERS, &rows));
}

/// Header row matching [`figure_rows`].
pub const FIGURE_HEADERS: [&str; 9] = [
    "matrix",
    "nnz",
    "locality",
    "anz",
    "hism_cyc/nnz",
    "crs_cyc/nnz",
    "speedup",
    "backend",
    "status",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[2].ends_with("2"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn format_decision_rows_cover_auto_and_fixed_legs() {
        let coo = stm_sparse::gen::random::uniform(64, 64, 300, 2);
        let metrics = stm_sparse::MatrixMetrics::compute(&coo);
        let set = vec![stm_dsab::SuiteEntry {
            name: "tiny".into(),
            coo,
            metrics,
        }];
        let run = |format| {
            crate::harness::run_set(
                &crate::harness::RunConfig {
                    jobs: Some(1),
                    format,
                    ..Default::default()
                },
                &set,
            )
        };
        assert!(format_decision_rows(&run(None)).is_empty());
        let fixed = format_decision_rows(&run(stm_dsab::FormatSel::parse("jd")));
        assert_eq!(fixed.len(), 1);
        assert_eq!(fixed[0].len(), FORMAT_DECISION_HEADERS.len());
        assert_eq!(&fixed[0][1..4], &["jd", "jd", "transpose_jd"]);
        assert_eq!(fixed[0][5], "-", "fixed legs carry no predictions");
        let auto = format_decision_rows(&run(Some(stm_dsab::FormatSel::Auto)));
        assert_eq!(auto[0][1], "auto");
        assert!(
            auto[0][5..].iter().all(|c| c.parse::<f64>().is_ok()),
            "auto rows predict every format: {auto:?}"
        );
        // Both render through the aligned table without panicking.
        format_table(&FORMAT_DECISION_HEADERS, &auto);
    }

    #[test]
    fn csv_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("stm_bench_test_csv");
        let path = dir.join("t.csv");
        write_csv(&path, &["x", "y"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
