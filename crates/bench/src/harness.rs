//! The batch experiment harness: kernels are selected *by name* through
//! the `stm-core` registry and executed over whole suites by a pool of
//! `std::thread::scope` workers.
//!
//! Layering:
//!
//! * [`run_batch`] — the generic batch runner: a fixed worker pool pulls
//!   item indices from a shared counter and writes each result into its
//!   own slot, so results always come back in input order no matter how
//!   the workers interleave;
//! * [`run_kernel`] — one registry kernel on one suite entry (each call
//!   constructs its own engine and coprocessor, so concurrent calls share
//!   nothing);
//! * [`run_matrix`] / [`run_set`] — the paper's experiment shape: HiSM
//!   and CRS transposition per matrix, batched over a set.
//!
//! The worker count comes from [`RunConfig::jobs`] (the bench binaries
//! wire it to `--jobs N`); `None` uses the machine's parallelism.
//!
//! Failures are *data*, not crashes: every kernel stage runs under
//! `catch_unwind`, typed [`KernelFailure`]s (and any panic, as a
//! last-resort backstop) land in the per-matrix [`RunStatus`], and a bad
//! matrix never takes down the rest of the batch. Set
//! [`RunConfig::strict`] to turn the first failure into a panic for
//! CI-style fail-fast runs.

use crate::trace::{export_trace, TraceRollup};
use stm_core::kernels::registry::{
    self, Backend, ExecCtx, KernelError, KernelFailure, KernelReport, Stage,
};
use stm_core::{StmConfig, TransposeReport};
use stm_dsab::{FormatDecision, FormatKind, FormatSel, SuiteEntry};
use stm_hism::FaultClass;
use stm_obs::{Recorder, TraceData};
use stm_vpsim::{TimingKind, VpConfig};

/// Machine + experiment configuration for a harness run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Vector processor parameters.
    pub vp: VpConfig,
    /// STM parameters (the paper's performance runs use `B = p = 4`,
    /// `L = 4`, `s = 64`).
    pub stm: StmConfig,
    /// Functionally verify every simulated result against the host
    /// oracles (slower; on by default — a cycle count for a wrong
    /// transpose is worthless).
    pub verify: bool,
    /// Timing model charging the cycles (paper machine by default).
    pub timing: TimingKind,
    /// Worker threads for [`run_set`]; `None` = machine parallelism.
    pub jobs: Option<usize>,
    /// Extra attempts after a failure before the matrix is reported as
    /// [`RunStatus::Failed`]. Kernels are deterministic, so this only
    /// papers over transient *host* trouble; deliberately injected
    /// faults are never retried.
    pub retries: usize,
    /// Panic on the first failed matrix instead of recording it —
    /// fail-fast for CI (`--strict` in the binaries).
    pub strict: bool,
    /// Corrupt one matrix of the set before running it (fault-injection
    /// experiments; see [`FaultSpec`]).
    pub fault: Option<FaultSpec>,
    /// Storage-format selection (`--format` / `STM_FORMAT` in the
    /// binaries). When set, every matrix additionally runs the chosen
    /// format's transpose kernel as a third leg ([`FormatLeg`]);
    /// [`FormatSel::Auto`] consults the cost-model autotuner per matrix.
    /// `None` keeps the classic HiSM + CRS experiment shape.
    pub format: Option<FormatSel>,
    /// Directory to write structured event traces into (`--trace DIR` /
    /// `STM_TRACE` in the binaries). `None` keeps tracing compiled out —
    /// kernels run with a no-op recorder and no files are written.
    pub trace: Option<std::path::PathBuf>,
    /// Execution backend (`--backend` / `STM_BACKEND` in the binaries):
    /// the cycle-accurate simulator by default, or the `stm-host`
    /// native tier (`scalar` / `simd` / `auto`) for host-capable
    /// kernels. Kernels without a host implementation always simulate.
    pub backend: Backend,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            vp: VpConfig::paper(),
            stm: StmConfig::default(),
            verify: true,
            timing: TimingKind::Paper,
            jobs: None,
            retries: 1,
            strict: false,
            fault: None,
            format: None,
            trace: None,
            backend: Backend::Sim,
        }
    }
}

impl RunConfig {
    /// Default configuration with the worker count and strictness taken
    /// from the command line / environment (see [`crate::jobs_from_env`]
    /// and [`crate::strict_from_env`]).
    pub fn from_env() -> Self {
        RunConfig {
            jobs: crate::jobs_from_env(),
            strict: crate::strict_from_env(),
            trace: crate::trace_dir_from_env(),
            format: crate::format_from_env(),
            backend: crate::backend_from_env(),
            ..RunConfig::default()
        }
    }

    /// The execution context kernels run under. The recorder starts
    /// disabled; [`run_kernel`] installs a fresh enabled one per attempt
    /// when [`RunConfig::trace`] is set.
    pub fn ctx(&self) -> ExecCtx {
        ExecCtx {
            vp: self.vp.clone(),
            stm: self.stm,
            timing: self.timing,
            obs: Recorder::disabled(),
            span: stm_obs::SpanCtx::root(),
            backend: self.backend,
        }
    }

    /// Worker threads to use for a batch of `items` work items.
    pub fn worker_count(&self, items: usize) -> usize {
        let jobs = self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
        jobs.max(1).min(items.max(1))
    }
}

/// One deliberate corruption applied during [`run_set`]: the matrix at
/// `index` has `class` injected (seeded by `seed`) into every kernel
/// that supports it, after `prepare` and before `run`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Set position of the matrix to corrupt.
    pub index: usize,
    /// Fault class to inject (see [`FaultClass`]).
    pub class: FaultClass,
    /// Seed choosing the exact corruption site.
    pub seed: u64,
}

/// Outcome of one matrix in a batch.
#[derive(Debug, Clone)]
pub enum RunStatus {
    /// Every kernel ran and verified.
    Ok,
    /// A primary kernel failed (or was skipped by an open circuit
    /// breaker) but its registry fallback completed and verified in its
    /// place — the resilient soak pipeline's graceful-degradation
    /// outcome. The plain batch harness never produces this variant.
    Degraded {
        /// The failing (or skipped) primary kernel.
        kernel: String,
        /// The fallback that produced the verified result
        /// (see `registry::fallback_for`).
        fallback: &'static str,
        /// The primary's failure — `None` when an open breaker skipped
        /// the primary without running it.
        failure: Option<KernelFailure>,
    },
    /// A kernel failed; the failure names the kernel, stage and typed
    /// error. Reports of kernels that did succeed are still present.
    Failed(KernelFailure),
    /// Silent data corruption: a primary kernel *succeeded* — no typed
    /// error, no failed check — but cross-execution digest comparison
    /// (the resilient pipeline's `--verify-mode dual`/`vote`) proved its
    /// output wrong. The corrupt result is quarantined, never served.
    /// The plain batch harness never produces this variant.
    Corrupted {
        /// The kernel whose output disagreed with the majority.
        kernel: String,
        /// The quarantined (wrong) canonical digest the primary produced.
        quarantined: u64,
        /// The canonical digest actually served — the majority digest
        /// when recovery succeeded, `None` when no majority existed and
        /// even the trusted fallback could not produce a result.
        served: Option<u64>,
        /// The verification leg (backend name) whose report was adopted
        /// in the primary's place, when one was.
        backend: Option<String>,
    },
}

impl RunStatus {
    /// `true` for [`RunStatus::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, RunStatus::Ok)
    }

    /// `true` for [`RunStatus::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, RunStatus::Degraded { .. })
    }

    /// `true` for [`RunStatus::Corrupted`] — a detected SDC.
    pub fn is_corrupted(&self) -> bool {
        matches!(self, RunStatus::Corrupted { .. })
    }

    /// The failure, if any. For a degraded matrix this is the primary's
    /// failure (absent when an open breaker skipped the primary). A
    /// corrupted matrix carries no [`KernelFailure`] — the primary
    /// *succeeded*; its output was simply wrong.
    pub fn failure(&self) -> Option<&KernelFailure> {
        match self {
            RunStatus::Ok => None,
            RunStatus::Degraded { failure, .. } => failure.as_ref(),
            RunStatus::Failed(f) => Some(f),
            RunStatus::Corrupted { .. } => None,
        }
    }
}

/// The optional third, format-driven transpose leg of a matrix run
/// (see [`RunConfig::format`]): which format the selection resolved to
/// for this matrix, the registry kernel that ran it, the autotuner's
/// per-format predictions when the selection was `auto`, and the
/// kernel's report.
#[derive(Debug, Clone)]
pub struct FormatLeg {
    /// The `--format` selection that produced the leg.
    pub selection: FormatSel,
    /// The format actually run (`selection` resolved on this matrix's
    /// metrics).
    pub kind: FormatKind,
    /// The registry transpose kernel of [`FormatLeg::kind`].
    pub kernel: &'static str,
    /// The cost model's per-format predictions — present only for
    /// `--format auto`, where they decided `kind`.
    pub decision: Option<FormatDecision>,
    /// Kernel report (`None` if the leg failed).
    pub report: Option<TransposeReport>,
}

/// Resolves a format selection on one matrix: the format to run plus,
/// for `auto`, the full decision it came from.
pub(crate) fn resolve_format(
    sel: FormatSel,
    metrics: &stm_sparse::MatrixMetrics,
) -> (FormatKind, Option<FormatDecision>) {
    match sel {
        FormatSel::Fixed(k) => (k, None),
        FormatSel::Auto => {
            let d = stm_dsab::choose(metrics);
            (d.chosen, Some(d))
        }
    }
}

/// Both kernels' results for one matrix.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Matrix name from the suite.
    pub name: String,
    /// D-SAB metrics of the matrix.
    pub metrics: stm_sparse::MatrixMetrics,
    /// HiSM + STM kernel report (`None` if that kernel failed).
    pub hism: Option<TransposeReport>,
    /// CRS baseline report (`None` if that kernel failed).
    pub crs: Option<TransposeReport>,
    /// The format-driven third leg — `None` unless [`RunConfig::format`]
    /// was set.
    pub format: Option<FormatLeg>,
    /// Whether the matrix completed cleanly.
    pub status: RunStatus,
    /// Per-kernel trace roll-ups — empty unless [`RunConfig::trace`] was
    /// set. Each entry summarizes only the *final* attempt of its kernel
    /// (abandoned retries are never aggregated).
    pub traces: Vec<TraceRollup>,
}

impl MatrixResult {
    /// The paper's headline quantity: CRS cycles / HiSM cycles. `None`
    /// when either kernel failed.
    pub fn speedup(&self) -> Option<f64> {
        let (h, c) = (self.hism.as_ref()?, self.crs.as_ref()?);
        Some(c.cycles as f64 / h.cycles.max(1) as f64)
    }
}

/// Runs `f` as one lifecycle stage: a typed error or a panic both become
/// a [`KernelFailure`] attributed to `stage`. Panic payloads are
/// classified by [`KernelError::from_panic`], so a deadline abort from
/// the engine's cycle-budget watchdog surfaces as the typed
/// [`KernelError::DeadlineExceeded`] rather than an opaque panic string.
pub(crate) fn isolate<T>(
    kernel: &str,
    stage: Stage,
    f: impl FnOnce() -> Result<T, KernelError>,
) -> Result<T, KernelFailure> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(error)) => Err(KernelFailure {
            kernel: kernel.to_string(),
            stage,
            error,
        }),
        Err(payload) => Err(KernelFailure {
            kernel: kernel.to_string(),
            stage,
            error: KernelError::from_panic(payload),
        }),
    }
}

pub(crate) fn attempt(
    cfg: &RunConfig,
    kernel: &str,
    entry: &SuiteEntry,
    fault: Option<&FaultSpec>,
    rec: &Recorder,
) -> Result<KernelReport, KernelFailure> {
    let mut ctx = cfg.ctx();
    ctx.obs = rec.clone();
    ctx.span = rec.span_ctx();
    let mut k = registry::create(kernel).ok_or_else(|| KernelFailure {
        kernel: kernel.to_string(),
        stage: Stage::Prepare,
        error: KernelError::Unknown(kernel.to_string()),
    })?;
    isolate(kernel, Stage::Prepare, || k.prepare(&entry.coo, &ctx))?;
    if let Some(f) = fault {
        if f.class == FaultClass::MidRunBitFlip {
            // Mid-run SDC is hosted by the *engine*, not the prepared
            // input: arm the flip on the context so it fires silently
            // during `run`, after every input check has passed. Kernels
            // that don't run on simulated memory (and host legs, which
            // never construct the engine) run clean — the spec corrupts
            // "every kernel that supports it".
            ctx.vp.mid_run_flip = k.arm_sdc(f.seed);
        } else {
            // A kernel that cannot host this fault class runs clean.
            match k.inject_fault(f.class, f.seed) {
                Ok(_) | Err(KernelError::FaultUnsupported { .. }) => {}
                Err(error) => {
                    return Err(KernelFailure {
                        kernel: kernel.to_string(),
                        stage: Stage::Prepare,
                        error,
                    })
                }
            }
        }
    }
    let report = isolate(kernel, Stage::Run, || k.run(&mut ctx))?;
    if cfg.verify {
        isolate(kernel, Stage::Verify, || {
            k.verify(&entry.coo, &report.output)
        })?;
    }
    stm_core::obs::record_lifecycle(&ctx.obs, &report, k.prepared_bytes());
    Ok(report)
}

/// One kernel's harness outcome: the (possibly failed) report, the number
/// of attempts made, and the *final* attempt's trace when tracing was on.
struct KernelRun {
    result: Result<KernelReport, KernelFailure>,
    attempts: u64,
    trace: Option<TraceData>,
}

fn run_kernel_inner(
    cfg: &RunConfig,
    kernel: &str,
    entry: &SuiteEntry,
    fault: Option<&FaultSpec>,
) -> KernelRun {
    // Deliberate corruption is deterministic — retrying it just fails
    // identically, so injected runs get exactly one attempt.
    let max_attempts = if fault.is_some() { 1 } else { 1 + cfg.retries };
    let mut last = None;
    for n in 1..=max_attempts {
        // A fresh recorder per attempt: an abandoned attempt's events and
        // counters must never leak into the trace (or the roll-ups) of
        // the attempt that actually produced the reported numbers.
        let rec = if cfg.trace.is_some() {
            Recorder::enabled_default()
        } else {
            Recorder::disabled()
        };
        let result = attempt(cfg, kernel, entry, fault, &rec);
        let trace = cfg.trace.is_some().then(|| rec.snapshot());
        match result {
            Ok(r) => {
                return KernelRun {
                    result: Ok(r),
                    attempts: n as u64,
                    trace,
                }
            }
            Err(e) => last = Some((e, trace)),
        }
    }
    let (error, trace) = last.expect("at least one attempt");
    KernelRun {
        result: Err(error),
        attempts: max_attempts as u64,
        trace,
    }
}

/// Runs the named registry kernel on one suite entry: prepare, run and
/// (when `cfg.verify` is set) functional verification against the host
/// oracle, each stage isolated by `catch_unwind` and retried up to
/// `cfg.retries` extra times.
pub fn run_kernel(
    cfg: &RunConfig,
    kernel: &str,
    entry: &SuiteEntry,
) -> Result<KernelReport, KernelFailure> {
    run_kernel_inner(cfg, kernel, entry, None).result
}

fn run_matrix_inner(
    cfg: &RunConfig,
    entry: &SuiteEntry,
    fault: Option<&FaultSpec>,
) -> MatrixResult {
    let hism = run_kernel_inner(cfg, "transpose_hism", entry, fault);
    let crs = run_kernel_inner(cfg, "transpose_crs", entry, fault);
    let resolved = cfg
        .format
        .map(|sel| (sel, resolve_format(sel, &entry.metrics)));
    let format_run = resolved
        .as_ref()
        .map(|(_, (kind, _))| run_kernel_inner(cfg, kind.transpose_kernel(), entry, fault));
    let status = match (&hism.result, &crs.result) {
        (Err(f), _) | (_, Err(f)) => RunStatus::Failed(f.clone()),
        _ => match format_run.as_ref().map(|r| &r.result) {
            Some(Err(f)) => RunStatus::Failed(f.clone()),
            _ => RunStatus::Ok,
        },
    };
    if cfg.strict {
        if let Some(f) = status.failure() {
            panic!("strict mode: {}: {f}", entry.name);
        }
    }
    let mut traces = Vec::new();
    if let Some(dir) = &cfg.trace {
        let mut legs = vec![("transpose_hism", &hism), ("transpose_crs", &crs)];
        if let (Some((_, (kind, _))), Some(run)) = (&resolved, &format_run) {
            // `--format csr` re-runs transpose_crs; exporting it twice
            // would overwrite the CRS leg's trace with an identical copy
            // and double its roll-up row.
            if kind.transpose_kernel() != "transpose_crs" {
                legs.push((kind.transpose_kernel(), run));
            }
        }
        for (kernel, run) in legs {
            if let Some(data) = &run.trace {
                export_trace(dir, &entry.name, kernel, data)
                    .unwrap_or_else(|e| panic!("writing trace under {}: {e}", dir.display()));
                traces.push(TraceRollup::of(&entry.name, kernel, data, run.attempts));
            }
        }
    }
    MatrixResult {
        name: entry.name.clone(),
        metrics: entry.metrics,
        hism: hism.result.ok().map(|r| r.report),
        crs: crs.result.ok().map(|r| r.report),
        format: resolved.map(|(selection, (kind, decision))| FormatLeg {
            selection,
            kind,
            kernel: kind.transpose_kernel(),
            decision,
            report: format_run.and_then(|r| r.result.ok()).map(|r| r.report),
        }),
        status,
        traces,
    }
}

/// Runs both transposition kernels on one suite entry.
pub fn run_matrix(cfg: &RunConfig, entry: &SuiteEntry) -> MatrixResult {
    run_matrix_inner(cfg, entry, None)
}

/// Maps `f` over `items` on a pool of `jobs` scoped worker threads.
///
/// Workers claim item indices from a shared atomic counter and write each
/// result into the slot for its index, so the returned vector is in input
/// order regardless of scheduling — `run_batch(1, ..)` and
/// `run_batch(n, ..)` return identical vectors for a deterministic `f`.
/// `f` receives `(index, &item)`. A panic in any worker propagates.
pub fn run_batch<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                **slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// Runs a whole experiment set on the configured worker pool. Results
/// keep the set's order (see [`run_batch`]); a [`RunConfig::fault`] spec
/// is applied to the matrix at its index.
pub fn run_set(cfg: &RunConfig, set: &[SuiteEntry]) -> Vec<MatrixResult> {
    run_batch(cfg.worker_count(set.len()), set, |i, entry| {
        let fault = cfg.fault.as_ref().filter(|f| f.index == i);
        run_matrix_inner(cfg, entry, fault)
    })
}

/// Min / arithmetic-mean / max speedup over a result set — the numbers
/// the paper quotes per figure ("the speedup is in the range from 1.8 to
/// 32.0 with an average of 16.5"). Failed matrices are excluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupSummary {
    /// Smallest speedup in the set.
    pub min: f64,
    /// Arithmetic mean.
    pub avg: f64,
    /// Largest speedup in the set.
    pub max: f64,
}

impl SpeedupSummary {
    /// Summarizes a result set. Returns zeros for an empty set (or one
    /// where every matrix failed).
    pub fn of(results: &[MatrixResult]) -> Self {
        let speedups: Vec<f64> = results.iter().filter_map(MatrixResult::speedup).collect();
        if speedups.is_empty() {
            return SpeedupSummary {
                min: 0.0,
                avg: 0.0,
                max: 0.0,
            };
        }
        SpeedupSummary {
            min: speedups.iter().copied().fold(f64::INFINITY, f64::min),
            avg: speedups.iter().sum::<f64>() / speedups.len() as f64,
            max: speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_sparse::{gen, MatrixMetrics};

    fn entry(name: &str, coo: stm_sparse::Coo) -> SuiteEntry {
        let metrics = MatrixMetrics::compute(&coo);
        SuiteEntry {
            name: name.into(),
            coo,
            metrics,
        }
    }

    #[test]
    fn run_matrix_verifies_and_reports() {
        let cfg = RunConfig::default();
        let e = entry("uniform", gen::random::uniform(200, 200, 1500, 3));
        let r = run_matrix(&cfg, &e);
        assert!(r.status.is_ok());
        let (hism, crs) = (r.hism.as_ref().unwrap(), r.crs.as_ref().unwrap());
        assert_eq!(hism.nnz, e.coo.nnz());
        assert_eq!(crs.nnz, e.coo.nnz());
        assert!(hism.cycles > 0 && crs.cycles > 0);
        assert!(r.speedup().unwrap() > 0.0);
    }

    #[test]
    fn a_fixed_format_leg_runs_and_reports() {
        let e = entry("uniform", gen::random::uniform(200, 200, 1500, 3));
        for sel in ["coo", "csr", "csc", "jd", "sell"] {
            let cfg = RunConfig {
                format: FormatSel::parse(sel),
                jobs: Some(1),
                ..RunConfig::default()
            };
            let r = run_matrix(&cfg, &e);
            assert!(r.status.is_ok(), "{sel}: {:?}", r.status);
            let leg = r.format.expect("format leg present");
            assert_eq!(leg.selection.name(), sel);
            assert_eq!(leg.kind.name(), sel);
            assert_eq!(leg.kernel, leg.kind.transpose_kernel());
            assert!(
                leg.decision.is_none(),
                "fixed formats never consult the model"
            );
            assert!(leg.report.expect("leg verified").cycles > 0);
        }
    }

    #[test]
    fn the_auto_leg_carries_the_decision_and_matches_its_kernel() {
        let cfg = RunConfig {
            format: Some(FormatSel::Auto),
            jobs: Some(1),
            ..RunConfig::default()
        };
        let e = entry("uniform", gen::random::uniform(128, 128, 900, 5));
        let r = run_matrix(&cfg, &e);
        assert!(r.status.is_ok());
        let leg = r.format.expect("format leg present");
        assert_eq!(leg.selection, FormatSel::Auto);
        let d = leg.decision.expect("auto records its decision");
        assert_eq!(d.chosen, leg.kind);
        assert_eq!(d.predicted.len(), FormatKind::ALL.len());
        // The leg re-ran the chosen format's kernel and its cycle count
        // matches a direct registry run.
        let direct = run_kernel(&cfg, leg.kernel, &e).unwrap();
        assert_eq!(leg.report.unwrap().cycles, direct.report.cycles);
    }

    #[test]
    fn no_format_flag_means_no_third_leg() {
        let e = entry("t", gen::structured::tridiagonal(64));
        let r = run_matrix(&RunConfig::default(), &e);
        assert!(r.format.is_none());
    }

    #[test]
    fn a_traced_format_leg_exports_its_own_trace() {
        let dir = std::env::temp_dir().join("stm_harness_format_trace_test");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = RunConfig {
            format: FormatSel::parse("sell"),
            trace: Some(dir.clone()),
            jobs: Some(1),
            ..RunConfig::default()
        };
        let e = entry("m", gen::random::uniform(96, 96, 500, 2));
        let results = run_set(&cfg, &[e]);
        let kernels: Vec<&str> = results[0].traces.iter().map(|t| t.kernel).collect();
        assert_eq!(
            kernels,
            vec!["transpose_hism", "transpose_crs", "transpose_sell"]
        );
        assert!(dir
            .join(format!(
                "{}.jsonl",
                crate::trace::trace_stem(&results[0].name, "transpose_sell")
            ))
            .exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_kernel_covers_every_registry_name() {
        let cfg = RunConfig::default();
        let e = entry("small", gen::random::uniform(48, 48, 200, 5));
        for &name in registry::names() {
            let r = run_kernel(&cfg, name, &e).unwrap();
            assert!(r.report.cycles > 0, "{name} charged no cycles");
        }
    }

    #[test]
    fn run_kernel_reports_unknown_names_as_failures() {
        let f = run_kernel(
            &RunConfig::default(),
            "bogus",
            &entry("m", stm_sparse::Coo::new(2, 2)),
        )
        .unwrap_err();
        assert_eq!(f.error, KernelError::Unknown("bogus".into()));
        assert_eq!(f.stage, Stage::Prepare);
    }

    #[test]
    fn isolate_turns_panics_into_typed_failures() {
        let f = isolate::<()>("t", Stage::Run, || panic!("boom {}", 7)).unwrap_err();
        assert_eq!(f.stage, Stage::Run);
        match f.error {
            KernelError::Panicked(msg) => assert!(msg.contains("boom 7"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn cycle_budget_surfaces_as_a_typed_deadline_failure() {
        let mut cfg = RunConfig {
            jobs: Some(1),
            ..RunConfig::default()
        };
        // Tight enough that any real matrix blows it on the first issue.
        cfg.vp.cycle_budget = Some(1);
        let e = entry("t", gen::structured::tridiagonal(96));
        let f = run_kernel(&cfg, "transpose_hism", &e).unwrap_err();
        assert_eq!(f.stage, Stage::Run);
        match f.error {
            KernelError::DeadlineExceeded(d) => {
                assert_eq!(d.budget, 1);
                assert!(d.cycles > 1);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn degraded_status_reports_the_primary_failure() {
        let failure = KernelFailure {
            kernel: "transpose_hism".into(),
            stage: Stage::Run,
            error: KernelError::Corrupt("injected".into()),
        };
        let s = RunStatus::Degraded {
            kernel: "transpose_hism".into(),
            fallback: "transpose_ref",
            failure: Some(failure),
        };
        assert!(!s.is_ok());
        assert!(s.is_degraded());
        assert_eq!(s.failure().unwrap().kernel, "transpose_hism");
        let skipped = RunStatus::Degraded {
            kernel: "transpose_crs".into(),
            fallback: "transpose_crs_scalar",
            failure: None,
        };
        assert!(skipped.is_degraded());
        assert!(skipped.failure().is_none());
    }

    #[test]
    fn run_set_preserves_order() {
        let cfg = RunConfig::default();
        let set = vec![
            entry("a", gen::structured::tridiagonal(100)),
            entry("b", gen::random::uniform(128, 128, 600, 1)),
            entry("c", gen::blocks::block_dense(128, 16, 6, 0.8, 2)),
        ];
        let results = run_set(&cfg, &set);
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(results.iter().all(|r| r.status.is_ok()));
    }

    #[test]
    fn run_batch_is_order_preserving_and_jobs_invariant() {
        let items: Vec<usize> = (0..37).collect();
        let serial = run_batch(1, &items, |i, &x| i * 1000 + x * x);
        for jobs in [2, 4, 16, 64] {
            assert_eq!(run_batch(jobs, &items, |i, &x| i * 1000 + x * x), serial);
        }
        assert!(run_batch::<usize, usize, _>(4, &[], |_, &x| x).is_empty());
    }

    #[test]
    fn explicit_jobs_counts_give_identical_sets() {
        let set = vec![
            entry("a", gen::structured::diagonal(150)),
            entry("b", gen::random::uniform(96, 96, 400, 2)),
            entry("c", gen::blocks::block_band(128, 16, 2, 0.7, 4)),
            entry("d", gen::structured::grid2d_5pt(10, 10)),
        ];
        let serial = run_set(
            &RunConfig {
                jobs: Some(1),
                ..RunConfig::default()
            },
            &set,
        );
        let parallel = run_set(
            &RunConfig {
                jobs: Some(4),
                ..RunConfig::default()
            },
            &set,
        );
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(
                s.hism.as_ref().unwrap().cycles,
                p.hism.as_ref().unwrap().cycles
            );
            assert_eq!(
                s.crs.as_ref().unwrap().cycles,
                p.crs.as_ref().unwrap().cycles
            );
        }
    }

    #[test]
    fn a_fault_spec_fails_exactly_its_matrix() {
        let set = vec![
            entry("a", gen::structured::tridiagonal(80)),
            entry("b", gen::random::uniform(96, 96, 400, 2)),
            entry("c", gen::blocks::block_dense(128, 16, 5, 0.8, 4)),
        ];
        let clean = run_set(&RunConfig::default(), &set);
        let cfg = RunConfig {
            fault: Some(FaultSpec {
                index: 1,
                class: FaultClass::PointerRetarget,
                seed: 42,
            }),
            jobs: Some(3),
            ..RunConfig::default()
        };
        let faulted = run_set(&cfg, &set);
        assert_eq!(faulted.len(), 3);
        assert!(faulted[0].status.is_ok());
        assert!(faulted[2].status.is_ok());
        let failure = faulted[1].status.failure().expect("matrix 1 must fail");
        assert!(
            !matches!(failure.error, KernelError::Panicked(_)),
            "fault must surface as a typed error, got {failure}"
        );
        // The untouched matrices are bit-identical to the clean run.
        for i in [0usize, 2] {
            assert_eq!(
                clean[i].hism.as_ref().unwrap().cycles,
                faulted[i].hism.as_ref().unwrap().cycles
            );
            assert_eq!(
                clean[i].crs.as_ref().unwrap().cycles,
                faulted[i].crs.as_ref().unwrap().cycles
            );
        }
    }

    #[test]
    fn strict_mode_panics_on_failure() {
        let set = vec![entry("a", gen::structured::tridiagonal(64))];
        let cfg = RunConfig {
            strict: true,
            fault: Some(FaultSpec {
                index: 0,
                class: FaultClass::Truncate,
                seed: 7,
            }),
            jobs: Some(1),
            ..RunConfig::default()
        };
        let r = std::panic::catch_unwind(|| run_set(&cfg, &set));
        assert!(r.is_err(), "strict mode must fail fast");
    }

    #[test]
    fn worker_count_clamps_sanely() {
        let cfg = RunConfig {
            jobs: Some(8),
            ..RunConfig::default()
        };
        assert_eq!(cfg.worker_count(3), 3);
        assert_eq!(cfg.worker_count(100), 8);
        assert_eq!(cfg.worker_count(0), 1);
        let zero = RunConfig {
            jobs: Some(0),
            ..RunConfig::default()
        };
        assert_eq!(zero.worker_count(10), 1);
    }

    #[test]
    fn hism_beats_crs_on_a_blocky_matrix() {
        // The paper's core claim, smoke-tested on a high-locality matrix.
        let cfg = RunConfig::default();
        let e = entry("blocky", gen::blocks::block_dense(512, 64, 12, 0.9, 7));
        let r = run_matrix(&cfg, &e);
        let speedup = r.speedup().unwrap();
        assert!(
            speedup > 2.0,
            "expected a clear HiSM win, got {speedup:.2}x"
        );
    }

    #[test]
    fn summary_statistics() {
        let cfg = RunConfig::default();
        let set = vec![
            entry("x", gen::structured::diagonal(300)),
            entry("y", gen::blocks::block_dense(256, 32, 8, 0.9, 9)),
        ];
        let results = run_set(&cfg, &set);
        let s = SpeedupSummary::of(&results);
        assert!(s.min <= s.avg && s.avg <= s.max);
        assert!(s.min > 0.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = SpeedupSummary::of(&[]);
        assert_eq!((s.min, s.avg, s.max), (0.0, 0.0, 0.0));
    }

    #[test]
    fn retry_budget_is_spent_only_on_failures_and_faults_get_one_attempt() {
        let cfg = RunConfig {
            retries: 2,
            jobs: Some(1),
            ..RunConfig::default()
        };
        let e = entry("m", gen::random::uniform(32, 32, 100, 1));
        // Unknown kernel: every attempt fails, so all 1 + retries run.
        let run = run_kernel_inner(&cfg, "bogus", &e, None);
        assert!(run.result.is_err());
        assert_eq!(run.attempts, 3);
        // A clean kernel succeeds on the first attempt.
        let ok = run_kernel_inner(&cfg, "transpose_hism", &e, None);
        assert!(ok.result.is_ok());
        assert_eq!(ok.attempts, 1);
        // Deterministic injected faults are never retried.
        let fault = FaultSpec {
            index: 0,
            class: FaultClass::PointerRetarget,
            seed: 9,
        };
        let faulted = run_kernel_inner(&cfg, "transpose_crs", &e, Some(&fault));
        assert!(faulted.result.is_err());
        assert_eq!(faulted.attempts, 1);
    }

    #[test]
    fn traced_runs_roll_up_only_the_final_attempt() {
        let dir = std::env::temp_dir().join("stm_harness_trace_retry_test");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = RunConfig {
            trace: Some(dir.clone()),
            retries: 3,
            jobs: Some(1),
            ..RunConfig::default()
        };
        let e = entry("m one", gen::random::uniform(64, 64, 300, 2));
        let run = run_kernel_inner(&cfg, "transpose_hism", &e, None);
        let report = run.result.expect("clean run");
        let data = run.trace.expect("tracing was on");
        // Exactly one lifecycle per trace: a retried (or aggregated)
        // recording would carry one run-span per attempt and the cycle
        // counter would overshoot the report.
        let runs = data
            .events
            .iter()
            .filter(|ev| ev.name == "run" && matches!(ev.kind, stm_obs::EventKind::Begin { .. }))
            .count();
        assert_eq!(runs, 1);
        assert_eq!(data.counter("stage.run.cycles"), report.report.cycles);

        // And the set-level export carries the same invariant.
        let results = run_set(&cfg, &[e]);
        assert_eq!(results[0].traces.len(), 2);
        for roll in &results[0].traces {
            assert_eq!(roll.attempts, 1, "{}", roll.kernel);
            assert_eq!(roll.dropped, 0, "{}", roll.kernel);
            let path = dir.join(format!(
                "{}.jsonl",
                crate::trace::trace_stem(&results[0].name, roll.kernel)
            ));
            let text = std::fs::read_to_string(&path).unwrap();
            let summary = stm_obs::jsonl::validate_jsonl(&text)
                .unwrap_or_else(|errs| panic!("{path:?}: {errs:?}"));
            assert_eq!(summary.run_spans, 1, "{}", roll.kernel);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_rows_are_excluded_from_the_summary() {
        let set = vec![
            entry("x", gen::structured::diagonal(128)),
            entry("y", gen::blocks::block_dense(128, 16, 5, 0.9, 9)),
        ];
        let cfg = RunConfig {
            fault: Some(FaultSpec {
                index: 0,
                class: FaultClass::LengthCorruption,
                seed: 3,
            }),
            ..RunConfig::default()
        };
        let results = run_set(&cfg, &set);
        assert!(!results[0].status.is_ok());
        let s = SpeedupSummary::of(&results);
        assert_eq!(s.min, s.max, "one surviving row");
        assert!(s.min > 0.0);
    }
}
