//! The batch experiment harness: kernels are selected *by name* through
//! the `stm-core` registry and executed over whole suites by a pool of
//! `std::thread::scope` workers.
//!
//! Layering:
//!
//! * [`run_batch`] — the generic batch runner: a fixed worker pool pulls
//!   item indices from a shared counter and writes each result into its
//!   own slot, so results always come back in input order no matter how
//!   the workers interleave;
//! * [`run_kernel`] — one registry kernel on one suite entry (each call
//!   constructs its own engine and coprocessor, so concurrent calls share
//!   nothing);
//! * [`run_matrix`] / [`run_set`] — the paper's experiment shape: HiSM
//!   and CRS transposition per matrix, batched over a set.
//!
//! The worker count comes from [`RunConfig::jobs`] (the bench binaries
//! wire it to `--jobs N`); `None` uses the machine's parallelism.

use stm_core::kernels::registry::{self, ExecCtx, KernelReport};
use stm_core::{StmConfig, TransposeReport};
use stm_dsab::SuiteEntry;
use stm_vpsim::{TimingKind, VpConfig};

/// Machine + experiment configuration for a harness run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Vector processor parameters.
    pub vp: VpConfig,
    /// STM parameters (the paper's performance runs use `B = p = 4`,
    /// `L = 4`, `s = 64`).
    pub stm: StmConfig,
    /// Functionally verify every simulated result against the host
    /// oracles (slower; on by default — a cycle count for a wrong
    /// transpose is worthless).
    pub verify: bool,
    /// Timing model charging the cycles (paper machine by default).
    pub timing: TimingKind,
    /// Worker threads for [`run_set`]; `None` = machine parallelism.
    pub jobs: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            vp: VpConfig::paper(),
            stm: StmConfig::default(),
            verify: true,
            timing: TimingKind::Paper,
            jobs: None,
        }
    }
}

impl RunConfig {
    /// Default configuration with the worker count taken from the command
    /// line / environment (see [`crate::jobs_from_env`]).
    pub fn from_env() -> Self {
        RunConfig {
            jobs: crate::jobs_from_env(),
            ..RunConfig::default()
        }
    }

    /// The execution context kernels run under.
    pub fn ctx(&self) -> ExecCtx {
        ExecCtx {
            vp: self.vp.clone(),
            stm: self.stm,
            timing: self.timing,
        }
    }

    /// Worker threads to use for a batch of `items` work items.
    pub fn worker_count(&self, items: usize) -> usize {
        let jobs = self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
        jobs.max(1).min(items.max(1))
    }
}

/// Both kernels' results for one matrix.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Matrix name from the suite.
    pub name: String,
    /// D-SAB metrics of the matrix.
    pub metrics: stm_sparse::MatrixMetrics,
    /// HiSM + STM kernel report.
    pub hism: TransposeReport,
    /// CRS baseline report.
    pub crs: TransposeReport,
}

impl MatrixResult {
    /// The paper's headline quantity: CRS cycles / HiSM cycles.
    pub fn speedup(&self) -> f64 {
        self.crs.cycles as f64 / self.hism.cycles.max(1) as f64
    }
}

/// Runs the named registry kernel on one suite entry.
///
/// Panics (with the matrix and kernel names) on an unknown kernel, a
/// failed prepare, or — when `cfg.verify` is set — a functional output
/// that disagrees with the host oracle.
pub fn run_kernel(cfg: &RunConfig, kernel: &str, entry: &SuiteEntry) -> KernelReport {
    let ctx = cfg.ctx();
    let mut k = registry::create(kernel).unwrap_or_else(|| panic!("unknown kernel {kernel:?}"));
    k.prepare(&entry.coo, &ctx)
        .unwrap_or_else(|e| panic!("{}: {kernel} prepare failed: {e}", entry.name));
    let mut ctx = ctx;
    let report = k.run(&mut ctx);
    if cfg.verify {
        k.verify(&entry.coo, &report.output)
            .unwrap_or_else(|e| panic!("{}: {kernel} verification failed: {e}", entry.name));
    }
    report
}

/// Runs both transposition kernels on one suite entry.
pub fn run_matrix(cfg: &RunConfig, entry: &SuiteEntry) -> MatrixResult {
    let hism = run_kernel(cfg, "transpose_hism", entry);
    let crs = run_kernel(cfg, "transpose_crs", entry);
    MatrixResult {
        name: entry.name.clone(),
        metrics: entry.metrics,
        hism: hism.report,
        crs: crs.report,
    }
}

/// Maps `f` over `items` on a pool of `jobs` scoped worker threads.
///
/// Workers claim item indices from a shared atomic counter and write each
/// result into the slot for its index, so the returned vector is in input
/// order regardless of scheduling — `run_batch(1, ..)` and
/// `run_batch(n, ..)` return identical vectors for a deterministic `f`.
/// `f` receives `(index, &item)`. A panic in any worker propagates.
pub fn run_batch<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                **slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// Runs a whole experiment set on the configured worker pool. Results
/// keep the set's order (see [`run_batch`]).
pub fn run_set(cfg: &RunConfig, set: &[SuiteEntry]) -> Vec<MatrixResult> {
    run_batch(cfg.worker_count(set.len()), set, |_, entry| {
        run_matrix(cfg, entry)
    })
}

/// Min / arithmetic-mean / max speedup over a result set — the numbers
/// the paper quotes per figure ("the speedup is in the range from 1.8 to
/// 32.0 with an average of 16.5").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupSummary {
    /// Smallest speedup in the set.
    pub min: f64,
    /// Arithmetic mean.
    pub avg: f64,
    /// Largest speedup in the set.
    pub max: f64,
}

impl SpeedupSummary {
    /// Summarizes a result set. Returns zeros for an empty set.
    pub fn of(results: &[MatrixResult]) -> Self {
        if results.is_empty() {
            return SpeedupSummary {
                min: 0.0,
                avg: 0.0,
                max: 0.0,
            };
        }
        let speedups: Vec<f64> = results.iter().map(MatrixResult::speedup).collect();
        SpeedupSummary {
            min: speedups.iter().copied().fold(f64::INFINITY, f64::min),
            avg: speedups.iter().sum::<f64>() / speedups.len() as f64,
            max: speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_sparse::{gen, MatrixMetrics};

    fn entry(name: &str, coo: stm_sparse::Coo) -> SuiteEntry {
        let metrics = MatrixMetrics::compute(&coo);
        SuiteEntry {
            name: name.into(),
            coo,
            metrics,
        }
    }

    #[test]
    fn run_matrix_verifies_and_reports() {
        let cfg = RunConfig::default();
        let e = entry("uniform", gen::random::uniform(200, 200, 1500, 3));
        let r = run_matrix(&cfg, &e);
        assert_eq!(r.hism.nnz, e.coo.nnz());
        assert_eq!(r.crs.nnz, e.coo.nnz());
        assert!(r.hism.cycles > 0 && r.crs.cycles > 0);
        assert!(r.speedup() > 0.0);
    }

    #[test]
    fn run_kernel_covers_every_registry_name() {
        let cfg = RunConfig::default();
        let e = entry("small", gen::random::uniform(48, 48, 200, 5));
        for &name in registry::names() {
            let r = run_kernel(&cfg, name, &e);
            assert!(r.report.cycles > 0, "{name} charged no cycles");
        }
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn run_kernel_rejects_unknown_names() {
        run_kernel(
            &RunConfig::default(),
            "bogus",
            &entry("m", stm_sparse::Coo::new(2, 2)),
        );
    }

    #[test]
    fn run_set_preserves_order() {
        let cfg = RunConfig::default();
        let set = vec![
            entry("a", gen::structured::tridiagonal(100)),
            entry("b", gen::random::uniform(128, 128, 600, 1)),
            entry("c", gen::blocks::block_dense(128, 16, 6, 0.8, 2)),
        ];
        let results = run_set(&cfg, &set);
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn run_batch_is_order_preserving_and_jobs_invariant() {
        let items: Vec<usize> = (0..37).collect();
        let serial = run_batch(1, &items, |i, &x| i * 1000 + x * x);
        for jobs in [2, 4, 16, 64] {
            assert_eq!(run_batch(jobs, &items, |i, &x| i * 1000 + x * x), serial);
        }
        assert!(run_batch::<usize, usize, _>(4, &[], |_, &x| x).is_empty());
    }

    #[test]
    fn explicit_jobs_counts_give_identical_sets() {
        let set = vec![
            entry("a", gen::structured::diagonal(150)),
            entry("b", gen::random::uniform(96, 96, 400, 2)),
            entry("c", gen::blocks::block_band(128, 16, 2, 0.7, 4)),
            entry("d", gen::structured::grid2d_5pt(10, 10)),
        ];
        let serial = run_set(
            &RunConfig {
                jobs: Some(1),
                ..RunConfig::default()
            },
            &set,
        );
        let parallel = run_set(
            &RunConfig {
                jobs: Some(4),
                ..RunConfig::default()
            },
            &set,
        );
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.hism.cycles, p.hism.cycles);
            assert_eq!(s.crs.cycles, p.crs.cycles);
        }
    }

    #[test]
    fn worker_count_clamps_sanely() {
        let cfg = RunConfig {
            jobs: Some(8),
            ..RunConfig::default()
        };
        assert_eq!(cfg.worker_count(3), 3);
        assert_eq!(cfg.worker_count(100), 8);
        assert_eq!(cfg.worker_count(0), 1);
        let zero = RunConfig {
            jobs: Some(0),
            ..RunConfig::default()
        };
        assert_eq!(zero.worker_count(10), 1);
    }

    #[test]
    fn hism_beats_crs_on_a_blocky_matrix() {
        // The paper's core claim, smoke-tested on a high-locality matrix.
        let cfg = RunConfig::default();
        let e = entry("blocky", gen::blocks::block_dense(512, 64, 12, 0.9, 7));
        let r = run_matrix(&cfg, &e);
        assert!(
            r.speedup() > 2.0,
            "expected a clear HiSM win, got {:.2}x",
            r.speedup()
        );
    }

    #[test]
    fn summary_statistics() {
        let cfg = RunConfig::default();
        let set = vec![
            entry("x", gen::structured::diagonal(300)),
            entry("y", gen::blocks::block_dense(256, 32, 8, 0.9, 9)),
        ];
        let results = run_set(&cfg, &set);
        let s = SpeedupSummary::of(&results);
        assert!(s.min <= s.avg && s.avg <= s.max);
        assert!(s.min > 0.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = SpeedupSummary::of(&[]);
        assert_eq!((s.min, s.avg, s.max), (0.0, 0.0, 0.0));
    }
}
