//! Running both transposition kernels over benchmark matrices and
//! summarizing speedups.

use stm_core::kernels::{transpose_crs, transpose_hism};
use stm_core::{StmConfig, TransposeReport};
use stm_dsab::SuiteEntry;
use stm_hism::{build, HismImage};
use stm_sparse::Csr;
use stm_vpsim::VpConfig;

/// Machine + experiment configuration for a harness run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Vector processor parameters.
    pub vp: VpConfig,
    /// STM parameters (the paper's performance runs use `B = p = 4`,
    /// `L = 4`, `s = 64`).
    pub stm: StmConfig,
    /// Functionally verify every simulated result against the host
    /// oracles (slower; on by default — a cycle count for a wrong
    /// transpose is worthless).
    pub verify: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { vp: VpConfig::paper(), stm: StmConfig::default(), verify: true }
    }
}

/// Both kernels' results for one matrix.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Matrix name from the suite.
    pub name: String,
    /// D-SAB metrics of the matrix.
    pub metrics: stm_sparse::MatrixMetrics,
    /// HiSM + STM kernel report.
    pub hism: TransposeReport,
    /// CRS baseline report.
    pub crs: TransposeReport,
}

impl MatrixResult {
    /// The paper's headline quantity: CRS cycles / HiSM cycles.
    pub fn speedup(&self) -> f64 {
        self.crs.cycles as f64 / self.hism.cycles.max(1) as f64
    }
}

/// Runs both kernels on one suite entry.
///
/// Panics (with the matrix name) if verification is enabled and either
/// kernel's simulated output disagrees with its host-side oracle.
pub fn run_matrix(cfg: &RunConfig, entry: &SuiteEntry) -> MatrixResult {
    // --- HiSM + STM ---------------------------------------------------
    let h = build::from_coo(&entry.coo, cfg.stm.s)
        .expect("suite matrices fit the section-size constraints");
    let image = HismImage::encode(&h);
    let (out_img, hism_report) = transpose_hism(&cfg.vp, cfg.stm, &image);
    if cfg.verify {
        let got = build::to_coo(&out_img.decode());
        let expect = entry.coo.transpose_canonical();
        assert!(
            got == expect,
            "HiSM kernel produced a wrong transpose for {}",
            entry.name
        );
    }

    // --- CRS baseline ---------------------------------------------------
    let csr = Csr::from_coo(&entry.coo);
    let (out_csr, crs_report) = transpose_crs(&cfg.vp, &csr);
    if cfg.verify {
        assert!(
            out_csr == csr.transpose_pissanetsky(),
            "CRS kernel produced a wrong transpose for {}",
            entry.name
        );
    }

    MatrixResult {
        name: entry.name.clone(),
        metrics: entry.metrics,
        hism: hism_report,
        crs: crs_report,
    }
}

/// Runs a whole experiment set, one worker thread per matrix (bounded by
/// the machine's parallelism). Results keep the set's order.
pub fn run_set(cfg: &RunConfig, set: &[SuiteEntry]) -> Vec<MatrixResult> {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut results: Vec<Option<MatrixResult>> = (0..set.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<MatrixResult>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(set.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= set.len() {
                    break;
                }
                let r = run_matrix(cfg, &set[i]);
                **slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    results.into_iter().map(|r| r.expect("worker filled every slot")).collect()
}

/// Min / arithmetic-mean / max speedup over a result set — the numbers
/// the paper quotes per figure ("the speedup is in the range from 1.8 to
/// 32.0 with an average of 16.5").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupSummary {
    /// Smallest speedup in the set.
    pub min: f64,
    /// Arithmetic mean.
    pub avg: f64,
    /// Largest speedup in the set.
    pub max: f64,
}

impl SpeedupSummary {
    /// Summarizes a result set. Returns zeros for an empty set.
    pub fn of(results: &[MatrixResult]) -> Self {
        if results.is_empty() {
            return SpeedupSummary { min: 0.0, avg: 0.0, max: 0.0 };
        }
        let speedups: Vec<f64> = results.iter().map(MatrixResult::speedup).collect();
        SpeedupSummary {
            min: speedups.iter().copied().fold(f64::INFINITY, f64::min),
            avg: speedups.iter().sum::<f64>() / speedups.len() as f64,
            max: speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_sparse::{gen, MatrixMetrics};

    fn entry(name: &str, coo: stm_sparse::Coo) -> SuiteEntry {
        let metrics = MatrixMetrics::compute(&coo);
        SuiteEntry { name: name.into(), coo, metrics }
    }

    #[test]
    fn run_matrix_verifies_and_reports() {
        let cfg = RunConfig::default();
        let e = entry("uniform", gen::random::uniform(200, 200, 1500, 3));
        let r = run_matrix(&cfg, &e);
        assert_eq!(r.hism.nnz, e.coo.nnz());
        assert_eq!(r.crs.nnz, e.coo.nnz());
        assert!(r.hism.cycles > 0 && r.crs.cycles > 0);
        assert!(r.speedup() > 0.0);
    }

    #[test]
    fn run_set_preserves_order() {
        let cfg = RunConfig::default();
        let set = vec![
            entry("a", gen::structured::tridiagonal(100)),
            entry("b", gen::random::uniform(128, 128, 600, 1)),
            entry("c", gen::blocks::block_dense(128, 16, 6, 0.8, 2)),
        ];
        let results = run_set(&cfg, &set);
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn hism_beats_crs_on_a_blocky_matrix() {
        // The paper's core claim, smoke-tested on a high-locality matrix.
        let cfg = RunConfig::default();
        let e = entry("blocky", gen::blocks::block_dense(512, 64, 12, 0.9, 7));
        let r = run_matrix(&cfg, &e);
        assert!(
            r.speedup() > 2.0,
            "expected a clear HiSM win, got {:.2}x",
            r.speedup()
        );
    }

    #[test]
    fn summary_statistics() {
        let cfg = RunConfig::default();
        let set = vec![
            entry("x", gen::structured::diagonal(300)),
            entry("y", gen::blocks::block_dense(256, 32, 8, 0.9, 9)),
        ];
        let results = run_set(&cfg, &set);
        let s = SpeedupSummary::of(&results);
        assert!(s.min <= s.avg && s.avg <= s.max);
        assert!(s.min > 0.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = SpeedupSummary::of(&[]);
        assert_eq!((s.min, s.avg, s.max), (0.0, 0.0, 0.0));
    }
}
