//! Retry with exponential backoff and deterministic jitter.
//!
//! Kernel runs in this repository are deterministic, so a retry only
//! papers over transient *host* trouble (scheduler hiccups, memory
//! pressure); a deterministic failure retries, fails identically, and
//! lands in the same final status with the attempt count recorded.
//! Because of that determinism the *number* of attempts a failing run
//! consumes is itself deterministic — which keeps the soak report digest
//! byte-stable across jobs counts and kill/resume boundaries.
//!
//! Two failure kinds are never retried:
//!
//! * deliberately injected chaos faults (the experiment's convention,
//!   matching the plain harness), and
//! * [`KernelError::DeadlineExceeded`] — re-running a run that blew its
//!   cycle budget burns wall-clock for a guaranteed identical abort.
//!
//! Jitter is full-jitter over the top half of the exponential window,
//! drawn from a SplitMix64 stream seeded by `(seed, key, attempt)` — no
//! global RNG, no wall clock, so the delay schedule is reproducible.

use stm_core::kernels::registry::KernelError;
use stm_sparse::rng::StdRng;

/// Retry tuning for the soak pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts for a retryable failure (1 = no retries).
    pub max_attempts: u32,
    /// Backoff base: the delay window before attempt 2 is
    /// `base_delay_ms`, doubling each further attempt.
    pub base_delay_ms: u64,
    /// Cap on the backoff window.
    pub max_delay_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            base_delay_ms: 2,
            max_delay_ms: 50,
            seed: 0x5eed_50a4,
        }
    }
}

impl RetryPolicy {
    /// Whether `error` is worth another attempt. Injected chaos faults
    /// (`injected`) and deadline aborts are deterministic by
    /// construction and never retry.
    pub fn should_retry(&self, error: &KernelError, injected: bool) -> bool {
        !injected && !matches!(error, KernelError::DeadlineExceeded(_))
    }

    /// The backoff delay before attempt `attempt` (2-based: the delay
    /// taken *after* attempt `attempt - 1` failed). Exponential window
    /// `base * 2^(attempt - 2)` capped at `max_delay_ms`, with full
    /// jitter over the window's top half so concurrent workers do not
    /// retry in lockstep. Deterministic in `(seed, key, attempt)`.
    pub fn delay_ms(&self, key: u64, attempt: u32) -> u64 {
        debug_assert!(attempt >= 2, "attempt 1 has no backoff");
        let exp = attempt.saturating_sub(2).min(62);
        let window = self
            .base_delay_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_delay_ms);
        if window == 0 {
            return 0;
        }
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt),
        );
        let half = window / 2;
        half + rng.gen_range(0..(window - half + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_vpsim::DeadlineExceeded;

    #[test]
    fn deterministic_schedule() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 8,
            max_delay_ms: 100,
            seed: 42,
        };
        for attempt in 2..=4 {
            assert_eq!(p.delay_ms(3, attempt), p.delay_ms(3, attempt));
        }
        // Different keys get different (decorrelated) schedules —
        // overwhelmingly likely for any sane seed; pinned here so a
        // jitter regression to a constant shows up.
        let a: Vec<u64> = (2..=4).map(|n| p.delay_ms(1, n)).collect();
        let b: Vec<u64> = (2..=4).map(|n| p.delay_ms(2, n)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn delay_stays_inside_the_exponential_window() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 4,
            max_delay_ms: 64,
            seed: 7,
        };
        for attempt in 2..=8u32 {
            let window = (4u64 << (attempt - 2)).min(64);
            for key in 0..16 {
                let d = p.delay_ms(key, attempt);
                assert!(
                    d >= window / 2 && d <= window,
                    "attempt {attempt} key {key}: {d} outside [{}, {window}]",
                    window / 2
                );
            }
        }
    }

    #[test]
    fn zero_base_means_no_sleeping() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 0,
            max_delay_ms: 0,
            seed: 1,
        };
        assert_eq!(p.delay_ms(0, 2), 0);
        assert_eq!(p.delay_ms(9, 3), 0);
    }

    #[test]
    fn injected_and_deadline_failures_never_retry() {
        let p = RetryPolicy::default();
        let corrupt = KernelError::Corrupt("x".into());
        assert!(p.should_retry(&corrupt, false));
        assert!(!p.should_retry(&corrupt, true));
        let deadline = KernelError::DeadlineExceeded(DeadlineExceeded {
            budget: 10,
            cycles: 11,
        });
        assert!(!p.should_retry(&deadline, false));
    }
}
