//! The resilient soak pipeline: bounded work queue with backpressure,
//! per-run deadlines, circuit-breaker fallback, retry with backoff, and
//! checkpoint/resume.
//!
//! [`run_soak`] pushes a suite through the registry's primary transpose
//! kernels (`transpose_hism`, `transpose_crs`) the way a long soak run
//! would: items are dispatched to `jobs` workers through a bounded
//! window of `queue_depth` in-flight items, every run is guarded by the
//! engine's cycle-budget watchdog ([`SoakConfig::deadline`]), failures
//! retry with deterministic exponential backoff, a per-kernel circuit
//! breaker sheds load onto the registry fallbacks
//! (`registry::fallback_for`) when a kernel fails repeatedly, and every
//! committed result is checkpointed so an interrupted soak resumes
//! without recomputing.
//!
//! ## Determinism
//!
//! The pipeline's observable results — every [`EntryRecord`], the
//! breaker decision stream, and therefore the final report
//! [`SoakReport::digest`] — are a pure function of the configuration and
//! the suite, independent of the worker count and of kill/resume
//! boundaries. The two mechanisms that make this true:
//!
//! * **in-order commit**: workers execute concurrently but results fold
//!   into breakers, records, counters and the checkpoint strictly in
//!   input order;
//! * **decision lag**: the breaker decision for item `i + W` (`W` =
//!   `queue_depth`) is computed when item `i` commits, and the first `W`
//!   decisions come from the initial state — so no decision can depend
//!   on which worker finished first (see [`breaker`]).
//!
//! Chaos faults, retry counts and backoff delays are all seeded; nothing
//! reads the wall clock.

pub mod backoff;
pub mod breaker;
pub mod checkpoint;

pub use backoff::RetryPolicy;
pub use breaker::{Breaker, BreakerConfig, BreakerState, Decision, Outcome, Transition};
pub use checkpoint::{
    digest, Checkpoint, EntryRecord, EntryStatus, FallbackRecord, SlotRecord, VerifyRecord, SCHEMA,
    SCHEMA_V1,
};

use crate::harness::{
    attempt, resolve_format, FaultSpec, FormatLeg, MatrixResult, RunConfig, RunStatus,
};
use crate::trace::export_trace;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};
use stm_core::kernels::registry::{self, KernelError, KernelFailure, KernelReport, Stage};
use stm_dsab::SuiteEntry;
use stm_hism::FaultClass;
use stm_obs::{Category, Lane, Recorder, TraceData};
use stm_sparse::rng::StdRng;

/// The primary kernels the soak pipeline exercises per matrix — the
/// paper's experiment shape. Each has a registry fallback
/// ([`registry::fallback_for`]) for graceful degradation.
pub const PRIMARY_KERNELS: [&str; 2] = ["transpose_hism", "transpose_crs"];

/// Chaos-soak fault injection: each suite item independently draws
/// against `rate_pct` from a stream seeded by `(seed, index)`; a hit
/// corrupts the *primary* kernels of that item (fallbacks run trusted)
/// with a uniformly chosen [`FaultClass`]. Purely seed-determined, so a
/// resumed run re-derives the same hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Injection probability per item, in percent (`0..=100`).
    pub rate_pct: u32,
    /// Seed of the per-item draw stream.
    pub seed: u64,
}

/// Mid-run silent-data-corruption injection: each suite item draws
/// against `rate_pct` (independently of [`ChaosSpec`]); a hit arms a
/// seeded [`FaultClass::MidRunBitFlip`] on the item's primary kernels —
/// a single bit of simulated memory flipped *during* the run, after
/// every input check has passed. Unlike chaos faults, the corruption is
/// silent by construction: no typed error fires, and only the
/// cross-execution digest comparison of [`VerifyMode::Dual`]/
/// [`VerifyMode::Vote`] (or the harness oracle, which production soaks
/// run without) can see it. Purely seed-determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdcSpec {
    /// Injection probability per item, in percent (`0..=100`).
    pub rate_pct: u32,
    /// Seed of the per-item draw stream.
    pub seed: u64,
}

/// Output-integrity verification tier for successful primary runs —
/// the `--verify-mode` knob of `stmsoak` (and the serve pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Trust the primary's output as-is.
    #[default]
    Off,
    /// Re-verify the output artifact's own checksums (HiSM image section
    /// seals). Catches at-rest corruption of the artifact, but **not**
    /// mid-run SDC: the output is sealed *after* the run, so a flip that
    /// lands before sealing is checksummed over. The documented blind
    /// tier — [`VerifyMode::Dual`]/[`VerifyMode::Vote`] exist because of
    /// it.
    Checksum,
    /// Re-execute on one alternate backend and compare format-independent
    /// canonical digests; on disagreement escalate to the third backend
    /// and let the 2-of-3 majority decide.
    Dual,
    /// Re-execute on both alternate backends up front: 2-of-3 majority
    /// voting across the simulator / scalar-host / SIMD-host legs.
    Vote,
}

impl VerifyMode {
    /// Stable lowercase name (`off`/`checksum`/`dual`/`vote`).
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Off => "off",
            VerifyMode::Checksum => "checksum",
            VerifyMode::Dual => "dual",
            VerifyMode::Vote => "vote",
        }
    }

    /// Parses [`VerifyMode::name`] output.
    pub fn from_name(name: &str) -> Option<VerifyMode> {
        match name {
            "off" => Some(VerifyMode::Off),
            "checksum" => Some(VerifyMode::Checksum),
            "dual" => Some(VerifyMode::Dual),
            "vote" => Some(VerifyMode::Vote),
            _ => None,
        }
    }
}

/// Configuration of one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// The underlying harness configuration (machine, timing, verify,
    /// `jobs`). `run.fault`, `run.retries`, `run.strict`, `run.trace`
    /// and `run.format` are ignored — chaos, retry, tracing and the
    /// format slot are governed by the soak fields below.
    pub run: RunConfig,
    /// Per-run cycle budget enforced by the engine's watchdog
    /// ([`stm_vpsim::VpConfig::cycle_budget`]); a run that exceeds it
    /// aborts with the typed [`KernelError::DeadlineExceeded`].
    pub deadline: Option<u64>,
    /// Bounded-queue capacity `W`: at most `W` items are dispatched but
    /// uncommitted at any moment (backpressure), and `W` is also the
    /// breaker decision lag (see module docs). Must be ≥ 1.
    pub queue_depth: usize,
    /// Circuit-breaker tuning (shared by every per-kernel breaker).
    pub breaker: BreakerConfig,
    /// Retry/backoff tuning.
    pub retry: RetryPolicy,
    /// Chaos-soak fault injection; `None` soaks clean.
    pub chaos: Option<ChaosSpec>,
    /// Checkpoint file: loaded (resume) when present, rewritten
    /// atomically after every commit.
    pub checkpoint: Option<PathBuf>,
    /// Directory for the pipeline's `resil`-lane trace export.
    pub trace: Option<PathBuf>,
    /// Stop (cleanly, checkpoint intact) once this many items have
    /// committed — the test/CI hook that simulates a mid-stream kill.
    pub stop_after: Option<usize>,
    /// Storage-format selection (`--format` in `stmsoak`). When set,
    /// every item runs a third slot: the selected format's transpose
    /// kernel (resolved per matrix for `auto`). The slot shares the
    /// deadline, chaos injection, retry policy and registry fallback of
    /// the primaries but has no circuit breaker — it is always
    /// attempted. Changes the checkpoint fingerprint and the report
    /// digest (the entry stream gains a slot).
    pub format: Option<stm_dsab::FormatSel>,
    /// Output-integrity verification tier for successful primaries
    /// (`--verify-mode` in `stmsoak`). Non-[`VerifyMode::Off`] values
    /// change the checkpoint fingerprint and the report digest (slots
    /// gain verification fields).
    pub verify_mode: VerifyMode,
    /// Mid-run silent-data-corruption injection; `None` injects nothing.
    /// Changes the fingerprint when set.
    pub sdc: Option<SdcSpec>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            run: RunConfig::default(),
            deadline: None,
            queue_depth: 8,
            breaker: BreakerConfig::default(),
            retry: RetryPolicy::default(),
            chaos: None,
            checkpoint: None,
            trace: None,
            stop_after: None,
            format: None,
            verify_mode: VerifyMode::Off,
            sdc: None,
        }
    }
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SoakConfig {
    /// Fingerprint binding a checkpoint to everything that shapes the
    /// result stream: the suite, machine/timing configuration, execution
    /// backend, deadline, queue depth, breaker, retry and chaos tuning.
    /// Deliberately excludes `run.jobs` — a checkpoint may be resumed
    /// with a different worker count.
    pub fn fingerprint(&self, set: &[SuiteEntry]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = fnv1a(h, b"soak/v1");
        for e in set {
            h = fnv1a(h, e.name.as_bytes());
            h = fnv1a(h, b"|");
        }
        let cfg = format!(
            "vp={:?}|stm={:?}|timing={}|verify={}|deadline={:?}|W={}|breaker={:?}|retry={:?}|chaos={:?}",
            self.run.vp,
            self.run.stm,
            self.run.timing.name(),
            self.run.verify,
            self.deadline,
            self.queue_depth,
            self.breaker,
            self.retry,
            self.chaos,
        );
        let h = fnv1a(h, cfg.as_bytes());
        // Appended (rather than folded into `cfg`) so format-less
        // checkpoints keep their pre-format fingerprints.
        let h = match self.format {
            Some(sel) => fnv1a(h, format!("|format={}", sel.name()).as_bytes()),
            None => h,
        };
        // Same append-only treatment for the execution backend: a host
        // run produces the same digests but different cycle numbers, so
        // resuming a sim checkpoint under `--backend scalar` (or vice
        // versa) must refuse; default-backend checkpoints keep their
        // pre-backend fingerprints.
        let h = match self.run.backend {
            registry::Backend::Sim => h,
            b => fnv1a(h, format!("|backend={}", b.name()).as_bytes()),
        };
        // The integrity plane follows the same append-only convention:
        // runs without it keep their pre-integrity fingerprints.
        let h = match self.verify_mode {
            VerifyMode::Off => h,
            m => fnv1a(h, format!("|verify_mode={}", m.name()).as_bytes()),
        };
        match self.sdc {
            None => h,
            Some(s) => fnv1a(h, format!("|sdc={},{}", s.rate_pct, s.seed).as_bytes()),
        }
    }

    /// The harness configuration actually used per attempt: the soak
    /// deadline becomes the engine cycle budget, and the harness's own
    /// fault/retry/trace features are disabled (the pipeline owns them).
    fn effective_run(&self) -> RunConfig {
        let mut run = self.run.clone();
        run.vp.cycle_budget = self.deadline;
        run.fault = None;
        run.retries = 0;
        run.strict = false;
        run.trace = None;
        run.format = None;
        run
    }
}

/// The per-item chaos draw: `None` for a clean item, or the fault spec
/// to inject into the item's primary kernels. Pure in `(spec, index)`.
pub fn chaos_fault(chaos: Option<&ChaosSpec>, index: usize) -> Option<FaultSpec> {
    let spec = chaos?;
    if spec.rate_pct == 0 {
        return None;
    }
    let mut rng =
        StdRng::seed_from_u64(spec.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    if rng.gen_range(0..100usize) >= spec.rate_pct as usize {
        return None;
    }
    let class = FaultClass::ALL[rng.gen_range(0..FaultClass::ALL.len())];
    Some(FaultSpec {
        index,
        class,
        seed: rng.next_u64(),
    })
}

/// The per-item SDC draw: `None` for a clean item, or a
/// [`FaultClass::MidRunBitFlip`] spec to arm on the item's primary
/// kernels. Pure in `(spec, index)`; the draw stream is independent of
/// [`chaos_fault`]'s. An SDC hit takes precedence over a chaos hit on
/// the same item.
pub fn sdc_fault(sdc: Option<&SdcSpec>, index: usize) -> Option<FaultSpec> {
    let spec = sdc?;
    if spec.rate_pct == 0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(
        spec.seed ^ 0x5dc0_11ec ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    if rng.gen_range(0..100usize) >= spec.rate_pct as usize {
        return None;
    }
    Some(FaultSpec {
        index,
        class: FaultClass::MidRunBitFlip,
        seed: rng.next_u64(),
    })
}

/// Completed soak run.
#[derive(Debug)]
pub struct SoakReport {
    /// One record per committed item, in input order — the canonical
    /// result stream ([`EntryRecord::canonical_line`] is what the digest
    /// and the checkpoint serialize).
    pub entries: Vec<EntryRecord>,
    /// FNV-1a digest over the canonical entry stream
    /// ([`checkpoint::digest`]). Identical across worker counts and
    /// kill/resume boundaries.
    pub digest: u64,
    /// How many leading entries were restored from a checkpoint rather
    /// than recomputed.
    pub resumed: usize,
    /// `true` when [`SoakConfig::stop_after`] ended the run before the
    /// suite was exhausted.
    pub halted: bool,
    /// Full harness results for the entries *executed in this process*
    /// (restored entries carry only their [`EntryRecord`]), keyed by
    /// suite index. Degradations surface here as
    /// [`RunStatus::Degraded`].
    pub live: Vec<(usize, MatrixResult)>,
    /// Every breaker state transition, as
    /// `(commit sequence, kernel, from, to)`.
    pub transitions: Vec<(u64, &'static str, BreakerState, BreakerState)>,
    /// The pipeline's `resil`-lane trace (queue-depth samples, breaker
    /// transitions, retry/degradation instants, `resil.*` counters).
    pub trace: TraceData,
}

impl SoakReport {
    /// Count of entries with the given status.
    pub fn count(&self, status: EntryStatus) -> usize {
        self.entries.iter().filter(|e| e.status == status).count()
    }
}

/// The three execution legs digests can be compared across. A primary
/// that ran on [`registry::Backend::Auto`] is attributed to the SIMD
/// leg (that is what `Auto` resolves to on every supported host).
const VERIFY_LEGS: [(&str, registry::Backend); 3] = [
    ("sim", registry::Backend::Sim),
    ("scalar", registry::Backend::Scalar),
    ("simd", registry::Backend::Simd),
];

/// The leg name the configured backend executes as.
fn backend_leg(b: registry::Backend) -> &'static str {
    match b {
        registry::Backend::Sim => "sim",
        registry::Backend::Scalar => "scalar",
        registry::Backend::Simd | registry::Backend::Auto => "simd",
    }
}

/// Integrity verification of one successful primary attempt.
///
/// * [`VerifyMode::Checksum`] re-verifies the output artifact's own
///   section seals (HiSM images only — the other output formats carry no
///   at-rest checksums, so their slots record no verification). Cheap,
///   but blind to mid-run SDC by design: the seal is computed *after*
///   the run, so a flip that lands before sealing is checksummed over.
/// * [`VerifyMode::Dual`] / [`VerifyMode::Vote`] re-execute the kernel
///   on alternate backends with **no** fault injection and compare
///   format-independent canonical digests. Dual runs one alternate and
///   escalates to the third leg only on disagreement; Vote runs both up
///   front. Either way the verdict is 2-of-3: a primary confirmed by any
///   independent leg is clean; a primary outvoted by two agreeing legs
///   (or one whose output does not even decode) is corrupted, and the
///   agreeing pair's report is adopted as the recovery. A 1-vs-1 tie —
///   one leg erred, the other merely disagrees — convicts nobody: no
///   majority, no verdict.
///
/// Returns `None` for [`VerifyMode::Off`], for Checksum on non-HiSM
/// outputs, and for Dual/Vote on kernels without a host implementation
/// (a single execution substrate has no independent leg).
fn verify_primary(
    run: &RunConfig,
    entry: &SuiteEntry,
    kernel: &'static str,
    mode: VerifyMode,
    primary: &KernelReport,
) -> Option<VerifyExec> {
    // The digest that gets quarantined when the verdict is corrupted:
    // canonical when the output still decodes, its format-level digest
    // otherwise (an undecodable image has no canonical form).
    let quarantine = || {
        primary
            .output
            .canonical_digest()
            .unwrap_or(primary.output_digest)
    };
    match mode {
        VerifyMode::Off => None,
        VerifyMode::Checksum => {
            let img = primary.output.as_hism()?;
            let corrupted = img.verify_integrity().is_err();
            Some(VerifyExec {
                mode,
                legs: Vec::new(),
                corrupted,
                quarantined: if corrupted { quarantine() } else { 0 },
                recovery: None,
            })
        }
        VerifyMode::Dual | VerifyMode::Vote => {
            if !registry::host_capable(kernel) {
                return None;
            }
            let primary_leg = backend_leg(run.backend);
            let alternates: Vec<(&'static str, registry::Backend)> = VERIFY_LEGS
                .iter()
                .copied()
                .filter(|(name, _)| *name != primary_leg)
                .collect();
            let reference = primary.output.canonical_digest();
            let run_leg = |(name, backend): (&'static str, registry::Backend)| {
                let mut alt = run.clone();
                alt.backend = backend;
                let result = attempt(&alt, kernel, entry, None, &Recorder::disabled())
                    .ok()
                    .and_then(|r| r.output.canonical_digest().map(|d| (r, d)));
                (name, result)
            };
            let mut legs: Vec<&'static str> = Vec::new();
            let mut results: Vec<(&'static str, Option<(KernelReport, u64)>)> = Vec::new();
            let upfront = if mode == VerifyMode::Vote { 2 } else { 1 };
            for &alt in alternates.iter().take(upfront) {
                legs.push(alt.0);
                results.push(run_leg(alt));
            }
            let confirmed = |results: &[(&'static str, Option<(KernelReport, u64)>)]| {
                reference.is_some_and(|rf| {
                    results
                        .iter()
                        .any(|(_, r)| matches!(r, Some((_, d)) if *d == rf))
                })
            };
            if mode == VerifyMode::Dual && !confirmed(&results) {
                // Disagreement (or an undecodable primary): escalate to
                // the third leg and let the majority decide.
                let alt = alternates[1];
                legs.push(alt.0);
                results.push(run_leg(alt));
            }
            if confirmed(&results) {
                return Some(VerifyExec {
                    mode,
                    legs,
                    corrupted: false,
                    quarantined: 0,
                    recovery: None,
                });
            }
            // No independent leg reproduces the primary's digest. A
            // conviction needs a majority: two executed legs agreeing
            // with each other, or a primary output that does not decode
            // at all (provably broken on its own).
            let executed: Vec<(&'static str, &KernelReport, u64)> = results
                .iter()
                .filter_map(|(n, r)| r.as_ref().map(|(rep, d)| (*n, rep, *d)))
                .collect();
            let majority = match executed.as_slice() {
                [(n1, r1, d1), (_, _, d2)] if d1 == d2 => Some((*n1, (*r1).clone())),
                _ => None,
            };
            let corrupted = reference.is_none() || majority.is_some();
            Some(VerifyExec {
                mode,
                legs,
                corrupted,
                quarantined: if corrupted { quarantine() } else { 0 },
                recovery: if corrupted { majority } else { None },
            })
        }
    }
}

/// Outcome of the integrity verification of one *successful* primary.
struct VerifyExec {
    mode: VerifyMode,
    /// Verification legs actually executed (leg name per re-execution).
    legs: Vec<&'static str>,
    /// The verdict: the primary's output is provably wrong (digest
    /// outvoted, or its own artifact checksums failed).
    corrupted: bool,
    /// The quarantined primary digest (canonical when the output still
    /// decodes, else its format-level digest) — recorded, never served.
    quarantined: u64,
    /// The agreeing leg whose report is served in the primary's place,
    /// when the majority produced one.
    recovery: Option<(&'static str, KernelReport)>,
}

/// One executed primary-kernel slot (plus its verification legs and its
/// fallback, when taken).
struct SlotExec {
    kernel: &'static str,
    decision: Decision,
    /// `None` when the breaker skipped the primary.
    primary: Option<Result<KernelReport, KernelFailure>>,
    attempts: u64,
    /// Integrity verification of a successful primary — `None` when the
    /// mode is [`VerifyMode::Off`], the primary did not succeed, or the
    /// kernel has a single leg (nothing to compare against).
    verify: Option<VerifyExec>,
    fallback: Option<(&'static str, Result<KernelReport, KernelFailure>)>,
}

impl SlotExec {
    fn outcome(&self) -> Outcome {
        match &self.primary {
            None => Outcome::Skipped,
            // A detected SDC feeds the breaker as a failure: a kernel
            // (or backend) that keeps producing outvoted digests should
            // shed load onto its fallback exactly like one that keeps
            // raising typed errors.
            Some(Ok(_)) if self.corrupted() => Outcome::Failure,
            Some(Ok(_)) => Outcome::Success,
            Some(Err(_)) => Outcome::Failure,
        }
    }

    fn corrupted(&self) -> bool {
        self.verify.as_ref().is_some_and(|v| v.corrupted)
    }

    fn record(&self) -> SlotRecord {
        let (cycles, stage, error) = match &self.primary {
            Some(Ok(r)) => (r.report.cycles, None, None),
            Some(Err(f)) => (0, Some(f.stage.to_string()), Some(f.error.to_string())),
            None => (0, None, None),
        };
        SlotRecord {
            kernel: self.kernel.to_string(),
            decision: self.decision,
            outcome: self.outcome(),
            attempts: self.attempts,
            cycles,
            stage,
            error,
            digest: self
                .verified()
                .and_then(|r| r.output.canonical_digest())
                .unwrap_or(0),
            verify: self.verify.as_ref().map(|v| checkpoint::VerifyRecord {
                mode: v.mode.name().to_string(),
                legs: v.legs.len() as u64,
                corrupted: v.corrupted,
                recovered: v
                    .recovery
                    .as_ref()
                    .map(|(leg, _)| (*leg).to_string())
                    .unwrap_or_default(),
            }),
            fallback: self.fallback.as_ref().map(|(k, r)| match r {
                Ok(rep) => FallbackRecord {
                    kernel: (*k).to_string(),
                    ok: true,
                    cycles: rep.report.cycles,
                    error: None,
                },
                Err(f) => FallbackRecord {
                    kernel: (*k).to_string(),
                    ok: false,
                    cycles: 0,
                    error: Some(f.error.to_string()),
                },
            }),
        }
    }

    /// The trusted report for this slot, from whichever execution
    /// produced one: the primary when its output survived verification,
    /// the majority leg adopted in its place when it did not, else the
    /// registry fallback.
    fn verified(&self) -> Option<&KernelReport> {
        if let Some(v) = &self.verify {
            if v.corrupted {
                return v
                    .recovery
                    .as_ref()
                    .map(|(_, r)| r)
                    .or(match &self.fallback {
                        Some((_, Ok(r))) => Some(r),
                        _ => None,
                    });
            }
        }
        match &self.primary {
            Some(Ok(r)) => Some(r),
            _ => match &self.fallback {
                Some((_, Ok(r))) => Some(r),
                _ => None,
            },
        }
    }
}

/// Terminal [`EntryStatus`] of a committed entry's slots. A detected
/// SDC outranks everything: an entry that served a wrong-then-recovered
/// (or unrecoverable) result is `Corrupted` even if every other slot is
/// clean — integrity events must never be absorbed into `Degraded`.
fn entry_status(slots: &[SlotRecord]) -> EntryStatus {
    if slots
        .iter()
        .any(|s| s.verify.as_ref().is_some_and(|v| v.corrupted))
    {
        return EntryStatus::Corrupted;
    }
    let mut degraded = false;
    for s in slots {
        let rescued = s.fallback.as_ref().is_some_and(|f| f.ok);
        match s.outcome {
            Outcome::Success => {}
            Outcome::Failure | Outcome::Skipped => {
                if rescued {
                    degraded = true;
                } else {
                    return EntryStatus::Failed;
                }
            }
        }
    }
    if degraded {
        EntryStatus::Degraded
    } else {
        EntryStatus::Ok
    }
}

/// [`RunStatus`] of a live (executed-in-process) entry, with full typed
/// failures. Precedence: any corrupted slot ⇒ `Corrupted`, else any
/// unrescued slot ⇒ `Failed`, else any rescued slot ⇒ `Degraded`, else
/// `Ok`.
fn live_status(slots: &[SlotExec]) -> RunStatus {
    for s in slots {
        if let Some(v) = &s.verify {
            if v.corrupted {
                return RunStatus::Corrupted {
                    kernel: s.kernel.to_string(),
                    quarantined: v.quarantined,
                    served: s.verified().and_then(|r| r.output.canonical_digest()),
                    backend: v.recovery.as_ref().map(|(leg, _)| (*leg).to_string()),
                };
            }
        }
    }
    for s in slots {
        if s.verified().is_none() {
            let failure = match (&s.primary, &s.fallback) {
                (Some(Err(f)), _) => f.clone(),
                (_, Some((_, Err(f)))) => f.clone(),
                // Skipped primary with no registered fallback — not
                // reachable for PRIMARY_KERNELS, but keep it typed.
                _ => KernelFailure {
                    kernel: s.kernel.to_string(),
                    stage: Stage::Run,
                    error: KernelError::Corrupt(
                        "breaker open and no fallback registered".to_string(),
                    ),
                },
            };
            return RunStatus::Failed(failure);
        }
    }
    for s in slots {
        if let Some((fb, Ok(_))) = &s.fallback {
            if !matches!(&s.primary, Some(Ok(_))) {
                return RunStatus::Degraded {
                    kernel: s.kernel.to_string(),
                    fallback: fb,
                    failure: match &s.primary {
                        Some(Err(f)) => Some(f.clone()),
                        _ => None,
                    },
                };
            }
        }
    }
    RunStatus::Ok
}

/// Static trace-event name for a breaker transition (event names are
/// `&'static str` throughout the obs layer).
fn transition_event_name(kernel: &str, to: BreakerState) -> &'static str {
    match (kernel, to) {
        ("transpose_hism", BreakerState::Closed) => "breaker.transpose_hism.closed",
        ("transpose_hism", BreakerState::Open) => "breaker.transpose_hism.open",
        ("transpose_hism", BreakerState::HalfOpen) => "breaker.transpose_hism.half_open",
        ("transpose_crs", BreakerState::Closed) => "breaker.transpose_crs.closed",
        ("transpose_crs", BreakerState::Open) => "breaker.transpose_crs.open",
        ("transpose_crs", BreakerState::HalfOpen) => "breaker.transpose_crs.half_open",
        (_, to) => match to {
            BreakerState::Closed => "breaker.closed",
            BreakerState::Open => "breaker.open",
            BreakerState::HalfOpen => "breaker.half_open",
        },
    }
}

/// Everything the committer mutates, under one mutex.
struct Shared {
    /// Next item index to dispatch.
    next: usize,
    /// Items committed so far (entries `0..committed` are final).
    committed: usize,
    /// Dispatched but not yet folded back (queue-depth sample value).
    in_flight: usize,
    /// `stop_after` tripped: stop dispatching, drop uncommitted work.
    halted: bool,
    /// Per-item breaker decisions, one slot per primary kernel;
    /// `decisions[i]` exists before item `i` can be dispatched.
    decisions: Vec<Vec<Decision>>,
    /// Out-of-order results parked until their turn to commit.
    pending: BTreeMap<usize, Vec<SlotExec>>,
    breakers: Vec<Breaker>,
    entries: Vec<EntryRecord>,
    live: Vec<(usize, MatrixResult)>,
    transitions: Vec<(u64, &'static str, BreakerState, BreakerState)>,
    /// First checkpoint-write error, if any (fails the run at the end).
    io_error: Option<String>,
}

impl Shared {
    /// Issues the breaker decisions for item `i`, in input order.
    fn issue_decisions(&mut self, i: usize, seq: u64) {
        debug_assert_eq!(self.decisions.len(), i);
        let d = self.breakers.iter_mut().map(|b| b.decide(seq)).collect();
        self.decisions.push(d);
    }

    fn drain_transitions(&mut self, rec: &Recorder) {
        for (k, breaker) in self.breakers.iter_mut().enumerate() {
            let kernel = PRIMARY_KERNELS[k];
            for (seq, from, to) in breaker.drain_transitions() {
                rec.instant(
                    Lane::Resil,
                    Category::Resil,
                    transition_event_name(kernel, to),
                    seq,
                );
                rec.add(
                    match to {
                        BreakerState::Open => "resil.breaker.trips",
                        BreakerState::HalfOpen => "resil.breaker.probes",
                        BreakerState::Closed => "resil.breaker.recoveries",
                    },
                    1,
                );
                self.transitions.push((seq, kernel, from, to));
            }
        }
    }

    /// Folds one committed entry into breakers, counters and records —
    /// identical for live and replayed (restored) entries, which is what
    /// keeps counters and transition streams equal across resume
    /// boundaries.
    fn fold_commit(
        &mut self,
        rec: &Recorder,
        entry: &EntryRecord,
        chaos_hit: bool,
        sdc_hit: bool,
        n: usize,
        w: usize,
    ) {
        let i = self.committed;
        let seq = i as u64;
        if chaos_hit {
            rec.add("resil.chaos.injected", 1);
        }
        if sdc_hit {
            rec.add("resil.sdc.injected", 1);
        }
        for (k, slot) in entry.slots.iter().enumerate() {
            // Only the primary slots feed a breaker; the optional format
            // slot (k ≥ PRIMARY_KERNELS.len()) is always attempted.
            if let Some(b) = self.breakers.get_mut(k) {
                b.commit(slot.decision, slot.outcome, seq);
            }
            if slot.attempts > 1 {
                rec.instant(Lane::Resil, Category::Resil, "resil.retry", seq);
                rec.add("resil.retry.attempts", slot.attempts - 1);
            }
            if let Some(fb) = &slot.fallback {
                rec.add("resil.fallback.runs", 1);
                if fb.ok {
                    rec.add("resil.fallback.rescues", 1);
                }
            }
            // Integrity counters fold from the *record*, so a resumed
            // run replays them identically to a live one.
            if let Some(v) = &slot.verify {
                rec.add("integrity.verify.slots", 1);
                rec.add("integrity.verify.legs", v.legs);
                if v.corrupted {
                    rec.instant(Lane::Resil, Category::Resil, "integrity.sdc.detected", seq);
                    rec.add("integrity.sdc.detected", 1);
                    if v.recovered.is_empty() {
                        rec.add("integrity.sdc.unrecovered", 1);
                    } else {
                        rec.add("integrity.sdc.recovered", 1);
                    }
                }
            }
            if slot
                .error
                .as_deref()
                .is_some_and(|e| e.starts_with("deadline:"))
            {
                rec.add("resil.deadline.exceeded", 1);
            }
        }
        rec.add("resil.items", 1);
        rec.add(
            match entry.status {
                EntryStatus::Ok => "resil.ok",
                EntryStatus::Degraded => "resil.degraded",
                EntryStatus::Failed => "resil.failed",
                EntryStatus::Corrupted => "resil.corrupted",
            },
            1,
        );
        if entry.status == EntryStatus::Degraded {
            rec.instant(Lane::Resil, Category::Resil, "resil.degraded", seq);
        }
        if entry.status == EntryStatus::Corrupted {
            rec.instant(Lane::Resil, Category::Resil, "resil.corrupted", seq);
        }
        self.committed += 1;
        if self.decisions.len() < n && self.decisions.len() < self.committed + w {
            self.issue_decisions(self.decisions.len(), seq);
        }
        self.drain_transitions(rec);
    }
}

/// Static trace-event name for a resilient slot span on the request
/// timeline (event names are `&'static str` throughout the obs layer).
fn slot_span_name(kernel: &str) -> &'static str {
    match kernel {
        "transpose_hism" => "resil.slot.transpose_hism",
        "transpose_crs" => "resil.slot.transpose_crs",
        _ => "resil.slot",
    }
}

/// Folds one *successful* attempt's recording into the request-scoped
/// recorder and advances the request clock past it.
///
/// Only the structural lanes survive — lifecycle stages, algorithm
/// phases and fault instants; the per-instruction lanes (ALU, memory
/// ports, STM) would overflow a long-lived server ring within a handful
/// of requests. Failed attempts are never absorbed: their abandoned
/// spans are unclosed and would corrupt the request tree.
fn absorb_structural(rec: &Recorder, att: &Recorder, clock: &mut u64) {
    if !rec.is_enabled() {
        return;
    }
    let mut data = att.snapshot();
    data.events
        .retain(|e| matches!(e.lane, Lane::Stage | Lane::Phase | Lane::Fault));
    // Any ring drops hit the high-volume instruction lanes the filter
    // removes; the retained structural story is orders of magnitude
    // below the attempt ring's capacity.
    data.dropped = 0;
    rec.absorb(&data, *clock);
    *clock = rec.max_ts().saturating_add(1);
}

/// Runs one primary-kernel slot: the breaker-decided primary attempt
/// loop (with backoff), then integrity verification of a successful
/// primary ([`verify_primary`]), then the registry fallback when the
/// slot still has no trusted result — the primary failed outright, or
/// verification convicted it without producing a majority recovery.
/// Fallbacks run trusted — no chaos injection — but under the same
/// deadline.
///
/// `rec` is the request-scoped recorder (disabled in the soak pipeline,
/// which traces at commit granularity instead): when enabled, the slot
/// records a `resil.slot.*` span plus retry/fallback instants on the
/// `resil` lane, and the *successful* attempt's structural kernel trace
/// is absorbed inside it on the request's own clock.
#[allow(clippy::too_many_arguments)]
fn run_slot(
    run: &RunConfig,
    retry: &RetryPolicy,
    entry: &SuiteEntry,
    index: usize,
    kernel: &'static str,
    decision: Decision,
    fault: Option<&FaultSpec>,
    mode: VerifyMode,
    rec: &Recorder,
) -> SlotExec {
    let traced = rec.is_enabled();
    // The request timeline keeps its own clock: every absorbed attempt
    // is shifted past everything the request has recorded so far.
    let mut clock = rec.max_ts();
    let slot_span =
        traced.then(|| rec.begin(Lane::Resil, Category::Resil, slot_span_name(kernel), clock));
    let attempt_rec = || {
        if traced {
            Recorder::enabled_default().with_ctx(rec.span_ctx())
        } else {
            Recorder::disabled()
        }
    };
    let mut attempts = 0u64;
    let primary = match decision {
        Decision::Skip => None,
        Decision::Run | Decision::Probe => {
            let injected = fault.is_some();
            // Injected corruption is deterministic: one attempt, like
            // the plain harness.
            let max_attempts = if injected {
                1
            } else {
                u64::from(retry.max_attempts.max(1))
            };
            let mut out = None;
            while out.is_none() {
                attempts += 1;
                let att = attempt_rec();
                match attempt(run, kernel, entry, fault, &att) {
                    Ok(r) => {
                        absorb_structural(rec, &att, &mut clock);
                        out = Some(Ok(r));
                    }
                    Err(f) => {
                        if attempts >= max_attempts || !retry.should_retry(&f.error, injected) {
                            out = Some(Err(f));
                        } else {
                            if traced {
                                rec.instant(Lane::Resil, Category::Resil, "resil.retry", clock);
                            }
                            let key = fnv1a(index as u64, kernel.as_bytes());
                            let delay = retry.delay_ms(key, (attempts + 1) as u32);
                            if delay > 0 {
                                std::thread::sleep(std::time::Duration::from_millis(delay));
                            }
                        }
                    }
                }
            }
            out
        }
    };
    let verify = match &primary {
        Some(Ok(r)) => verify_primary(run, entry, kernel, mode, r),
        _ => None,
    };
    if traced && verify.as_ref().is_some_and(|v| v.corrupted) {
        rec.instant(
            Lane::Resil,
            Category::Resil,
            "integrity.sdc.detected",
            clock,
        );
    }
    // The slot has a trusted result when the primary succeeded and
    // verification either passed, produced no verdict, or recovered a
    // majority report. Anything else falls back.
    let trusted = matches!(primary, Some(Ok(_)))
        && verify
            .as_ref()
            .is_none_or(|v| !v.corrupted || v.recovery.is_some());
    let fallback = if trusted {
        None
    } else {
        registry::fallback_for(kernel).map(|fb| {
            if traced {
                rec.instant(Lane::Resil, Category::Resil, "resil.fallback", clock);
            }
            // Fallbacks are the trusted leg: they always run on the
            // cycle-accurate simulator, even when the primary ran (and
            // failed) on the host backend.
            let mut sim = run.clone();
            sim.backend = registry::Backend::Sim;
            let att = attempt_rec();
            let result = attempt(&sim, fb, entry, None, &att);
            if result.is_ok() {
                absorb_structural(rec, &att, &mut clock);
            }
            (fb, result)
        })
    };
    if let Some(span) = slot_span {
        rec.end(
            Lane::Resil,
            Category::Resil,
            slot_span_name(kernel),
            clock,
            span,
        );
    }
    SlotExec {
        kernel,
        decision,
        primary,
        attempts,
        verify,
        fallback,
    }
}

/// The public outcome of one resilient kernel execution
/// ([`execute_slot`]): what the primary did, whether the registry
/// fallback rescued it, and the verified report from whichever kernel
/// produced one.
#[derive(Debug)]
pub struct SlotOutcome {
    /// The primary kernel the slot was asked to run.
    pub kernel: &'static str,
    /// The breaker decision the slot ran under.
    pub decision: Decision,
    /// What the primary actually did (commit this to the breaker).
    pub outcome: Outcome,
    /// Attempts the primary consumed (0 when skipped).
    pub attempts: u64,
    /// `true` when the primary did not produce the verified result but
    /// the registry fallback did — the graceful-degradation outcome.
    pub degraded: bool,
    /// The fallback kernel, when one was attempted.
    pub fallback: Option<&'static str>,
    /// The verified report, from the primary or the fallback.
    pub report: Option<KernelReport>,
    /// The terminal failure when nothing produced a verified result;
    /// for a degraded slot this is the *primary's* failure (absent when
    /// an open breaker skipped it).
    pub failure: Option<KernelFailure>,
    /// `true` when integrity verification convicted the primary's
    /// output: `report`, if present, came from the majority recovery leg
    /// or the fallback — never from the quarantined primary.
    pub corrupted: bool,
    /// Verification re-executions performed (0 under [`VerifyMode::Off`],
    /// for checksum-only verification, and for non-host-capable kernels).
    pub verify_legs: u64,
    /// The quarantined primary digest when `corrupted` (0 otherwise).
    pub quarantined: u64,
    /// The verification leg whose report was adopted in the corrupted
    /// primary's place (`None` when recovery came from the fallback or
    /// did not happen).
    pub recovered: Option<&'static str>,
}

/// Runs one kernel through the full resilient slot path — the
/// breaker-decided primary attempt loop with seeded backoff, then the
/// registry fallback when the primary produced no verified result — and
/// returns the public [`SlotOutcome`].
///
/// This is the single-request face of the soak pipeline's `run_slot`,
/// exported for the `stm-serve` request path: the service holds its own
/// per-kernel [`Breaker`]s, calls [`Breaker::decide`] for a decision,
/// executes through this function, and commits
/// [`SlotOutcome::outcome`] back. `index` only keys the retry-jitter
/// stream (use a request sequence number); `fault` injects a
/// deterministic corruption into the *primary* (fallbacks run trusted)
/// and, like everywhere else in the repo, is never retried. The
/// deadline, if any, is `run.vp.cycle_budget`.
///
/// `rec` is the request-scoped recorder the slot traces into (pass
/// [`Recorder::disabled`] to trace nothing): when enabled, the slot
/// appends a `resil.slot.*` span plus retry/fallback instants and the
/// successful attempt's structural kernel trace, all stamped with the
/// recorder's [`stm_obs::SpanCtx`] request id — the serve → resilient →
/// kernel leg of end-to-end request correlation.
#[allow(clippy::too_many_arguments)]
pub fn execute_slot(
    run: &RunConfig,
    retry: &RetryPolicy,
    entry: &SuiteEntry,
    index: usize,
    kernel: &'static str,
    decision: Decision,
    fault: Option<&FaultSpec>,
    mode: VerifyMode,
    rec: &Recorder,
) -> SlotOutcome {
    let exec = run_slot(run, retry, entry, index, kernel, decision, fault, mode, rec);
    let outcome = exec.outcome();
    let corrupted = exec.corrupted();
    let primary_ok = matches!(exec.primary, Some(Ok(_))) && !corrupted;
    let report = exec.verified().cloned();
    let degraded = !primary_ok && report.is_some();
    let failure = if report.is_some() {
        match (&exec.primary, degraded) {
            (Some(Err(f)), true) => Some(f.clone()),
            _ => None,
        }
    } else {
        match (&exec.primary, &exec.fallback) {
            (Some(Err(f)), _) => Some(f.clone()),
            (_, Some((_, Err(f)))) => Some(f.clone()),
            _ if corrupted => Some(KernelFailure {
                kernel: kernel.to_string(),
                stage: Stage::Verify,
                error: KernelError::Corrupt(
                    "output digest outvoted by independent re-execution".to_string(),
                ),
            }),
            _ => Some(KernelFailure {
                kernel: kernel.to_string(),
                stage: Stage::Run,
                error: KernelError::Corrupt("breaker open and no fallback registered".to_string()),
            }),
        }
    };
    let verify = exec.verify.as_ref();
    SlotOutcome {
        kernel,
        decision,
        outcome,
        attempts: exec.attempts,
        degraded,
        fallback: exec.fallback.as_ref().map(|(k, _)| *k),
        report,
        failure,
        corrupted,
        verify_legs: verify.map_or(0, |v| v.legs.len() as u64),
        quarantined: verify.map_or(0, |v| v.quarantined),
        recovered: verify.and_then(|v| v.recovery.as_ref().map(|(leg, _)| *leg)),
    }
}

/// Runs the soak pipeline over `set`. See the module docs for the
/// architecture; returns an error for checkpoint problems (unreadable,
/// wrong fingerprint, inconsistent with the configured breaker stream)
/// or checkpoint-write failures — kernel failures are *data* in the
/// report, never an `Err`.
pub fn run_soak(cfg: &SoakConfig, set: &[SuiteEntry]) -> Result<SoakReport, String> {
    let n = set.len();
    let w = cfg.queue_depth.max(1);
    let fingerprint = cfg.fingerprint(set);
    let run = cfg.effective_run();
    let rec = Recorder::enabled_default();

    let mut shared = Shared {
        next: 0,
        committed: 0,
        in_flight: 0,
        halted: false,
        decisions: Vec::with_capacity(n),
        pending: BTreeMap::new(),
        breakers: PRIMARY_KERNELS
            .iter()
            .map(|_| Breaker::new(cfg.breaker))
            .collect(),
        entries: Vec::with_capacity(n),
        live: Vec::new(),
        transitions: Vec::new(),
        io_error: None,
    };

    // Initial decision window from the breakers' initial state.
    for i in 0..n.min(w) {
        shared.issue_decisions(i, 0);
    }
    shared.drain_transitions(&rec);

    // Resume: replay the checkpointed prefix through the exact commit
    // path (breaker folds, decision issuance, counters, transitions),
    // verifying that the recorded decisions match the replayed stream.
    let mut resumed = 0;
    if let Some(path) = &cfg.checkpoint {
        if path.exists() {
            let ckpt = checkpoint::load(path)?;
            if ckpt.fingerprint != fingerprint {
                return Err(format!(
                    "checkpoint {path:?} was written by a different soak configuration \
                     (fingerprint 0x{:016x}, want 0x{fingerprint:016x})",
                    ckpt.fingerprint
                ));
            }
            if ckpt.entries.len() > n {
                return Err(format!(
                    "checkpoint {path:?} has {} entries but the suite has {n}",
                    ckpt.entries.len()
                ));
            }
            for entry in &ckpt.entries {
                let i = shared.committed;
                for (k, slot) in entry.slots.iter().enumerate() {
                    // The format slot has no breaker stream to replay —
                    // it is recorded as an unconditional run.
                    let Some(&replayed) = shared.decisions[i].get(k) else {
                        continue;
                    };
                    if replayed != slot.decision {
                        return Err(format!(
                            "checkpoint {path:?} entry {i} slot {k}: recorded decision {} \
                             but replay derives {} — stale or foreign checkpoint",
                            slot.decision.name(),
                            replayed.name()
                        ));
                    }
                }
                let sdc_hit = sdc_fault(cfg.sdc.as_ref(), i).is_some();
                let chaos_hit = !sdc_hit && chaos_fault(cfg.chaos.as_ref(), i).is_some();
                shared.fold_commit(&rec, entry, chaos_hit, sdc_hit, n, w);
                shared.entries.push(entry.clone());
            }
            resumed = shared.committed;
            shared.next = resumed;
        }
    }

    let stop_at = cfg.stop_after.unwrap_or(usize::MAX).min(n);
    if shared.committed >= stop_at {
        shared.halted = shared.committed < n;
    }

    let sync = (Mutex::new(shared), Condvar::new());
    let workers = run.worker_count(n.saturating_sub(resumed));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let (lock, cvar) = &sync;
                loop {
                    // Claim the next item, blocking while the bounded
                    // window is full (backpressure).
                    let claimed = {
                        let mut g = lock.lock().unwrap();
                        loop {
                            if g.halted || g.next >= n {
                                break None;
                            }
                            if g.next - g.committed < w {
                                let i = g.next;
                                g.next += 1;
                                g.in_flight += 1;
                                break Some((i, g.decisions[i].clone()));
                            }
                            g = cvar.wait(g).unwrap();
                        }
                    };
                    let Some((i, decisions)) = claimed else {
                        return;
                    };

                    // An SDC hit takes precedence over a chaos hit on
                    // the same item (the draws are independent streams).
                    let fault = sdc_fault(cfg.sdc.as_ref(), i)
                        .or_else(|| chaos_fault(cfg.chaos.as_ref(), i));
                    let mut slots: Vec<SlotExec> = PRIMARY_KERNELS
                        .iter()
                        .zip(&decisions)
                        .map(|(kernel, &decision)| {
                            run_slot(
                                &run,
                                &cfg.retry,
                                &set[i],
                                i,
                                kernel,
                                decision,
                                fault.as_ref(),
                                cfg.verify_mode,
                                &Recorder::disabled(),
                            )
                        })
                        .collect();
                    if let Some(sel) = cfg.format {
                        let (kind, _) = resolve_format(sel, &set[i].metrics);
                        slots.push(run_slot(
                            &run,
                            &cfg.retry,
                            &set[i],
                            i,
                            kind.transpose_kernel(),
                            Decision::Run,
                            fault.as_ref(),
                            cfg.verify_mode,
                            &Recorder::disabled(),
                        ));
                    }

                    let mut g = lock.lock().unwrap();
                    g.in_flight -= 1;
                    g.pending.insert(i, slots);
                    // Commit everything that is now contiguous, in input
                    // order, under the lock — the single place results
                    // become observable.
                    while !g.halted {
                        let next_commit = g.committed;
                        let Some(slots) = g.pending.remove(&next_commit) else {
                            break;
                        };
                        let seq = next_commit as u64;
                        let records: Vec<SlotRecord> = slots.iter().map(SlotExec::record).collect();
                        let entry = EntryRecord {
                            index: seq,
                            name: set[next_commit].name.clone(),
                            status: entry_status(&records),
                            slots: records,
                        };
                        rec.sample(
                            Lane::Resil,
                            "resil.queue.depth",
                            seq,
                            (g.in_flight + g.pending.len()) as f64,
                        );
                        rec.observe("resil.queue.depth", (g.in_flight + g.pending.len()) as u64);
                        let sdc_hit = sdc_fault(cfg.sdc.as_ref(), next_commit).is_some();
                        let chaos_hit =
                            !sdc_hit && chaos_fault(cfg.chaos.as_ref(), next_commit).is_some();
                        g.fold_commit(&rec, &entry, chaos_hit, sdc_hit, n, w);
                        let hism = slots[0].verified().map(|r| r.report.clone());
                        let crs = slots[1].verified().map(|r| r.report.clone());
                        let format = cfg.format.map(|sel| {
                            let (kind, decision) = resolve_format(sel, &set[next_commit].metrics);
                            FormatLeg {
                                selection: sel,
                                kind,
                                kernel: kind.transpose_kernel(),
                                decision,
                                report: slots
                                    .get(PRIMARY_KERNELS.len())
                                    .and_then(SlotExec::verified)
                                    .map(|r| r.report.clone()),
                            }
                        });
                        g.live.push((
                            next_commit,
                            MatrixResult {
                                name: entry.name.clone(),
                                metrics: set[next_commit].metrics,
                                hism,
                                crs,
                                format,
                                status: live_status(&slots),
                                traces: Vec::new(),
                            },
                        ));
                        g.entries.push(entry);
                        if let Some(path) = &cfg.checkpoint {
                            if let Err(e) = checkpoint::save(path, fingerprint, &g.entries) {
                                if g.io_error.is_none() {
                                    g.io_error = Some(format!("checkpoint write {path:?}: {e}"));
                                }
                                g.halted = true;
                            }
                        }
                        if g.committed >= stop_at && g.committed < n {
                            g.halted = true;
                        }
                    }
                    cvar.notify_all();
                }
            });
        }
    });

    let shared = sync.0.into_inner().unwrap();
    if let Some(e) = shared.io_error {
        return Err(e);
    }
    let digest = checkpoint::digest(&shared.entries);
    let report = SoakReport {
        digest,
        resumed,
        halted: shared.halted,
        live: shared.live,
        transitions: shared.transitions,
        entries: shared.entries,
        trace: rec.snapshot(),
    };
    if let Some(dir) = &cfg.trace {
        export_soak_trace(dir, &report).map_err(|e| format!("trace export {dir:?}: {e}"))?;
    }
    Ok(report)
}

/// Exports the soak report's `resil` trace into `dir` (stem
/// `soak.resil`) via the standard trace exporter; returns the exporter's
/// summary line. Used by the `stmsoak` bin and the soak tests.
pub fn export_soak_trace(dir: &std::path::Path, report: &SoakReport) -> std::io::Result<String> {
    export_trace(dir, "soak", "resil", &report.trace)
}
