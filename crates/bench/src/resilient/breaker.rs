//! Per-kernel circuit breaker with a deterministic decision stream.
//!
//! The soak pipeline runs items concurrently but *commits* their results
//! strictly in input order, and the breaker is only ever driven from
//! that commit path. Decisions are issued with a fixed lag: the decision
//! for item `i + W` (where `W` is the bounded queue's capacity) is
//! computed when item `i` commits, and the first `W` decisions are
//! issued up front from the initial state. The resulting call sequence —
//! `decide(0..W)`, then `commit(0), decide(W), commit(1), decide(W+1),
//! ...` — is a pure function of the input order, so the decision stream
//! (and therefore every run status and the final report digest) is
//! identical for any worker count.
//!
//! State machine:
//!
//! ```text
//!             ≥ threshold consecutive failures
//!   Closed ────────────────────────────────────▶ Open
//!     ▲                                           │ cooldown decisions
//!     │ probe success                             ▼ elapse (all Skip)
//!     └─────────────────────────────────────── HalfOpen
//!                 probe failure ──▶ back to Open (cooldown restarts)
//! ```
//!
//! In `HalfOpen` exactly one item gets a [`Decision::Probe`]; everything
//! else is skipped until the probe's outcome commits. Outcomes of items
//! whose decision was issued *before* a trip (the decision lag window)
//! commit while the breaker is already `Open`; they are ignored rather
//! than double-counted.

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive primary-kernel failures that trip the breaker open.
    pub threshold: u32,
    /// Number of decisions the breaker stays `Open` (skipping the
    /// primary) before letting a single probe through.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: 4,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: primaries run normally.
    Closed,
    /// Tripped: primaries are skipped, fallbacks run directly.
    Open,
    /// Cooldown elapsed: one probe is in flight to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (used in trace event names and reports).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What the pipeline should do with an item's primary kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Run the primary normally (breaker closed).
    Run,
    /// Skip the primary and go straight to the fallback (breaker open).
    Skip,
    /// Run the primary once as a half-open recovery probe.
    Probe,
}

impl Decision {
    /// Stable lowercase name (checkpoint serialization).
    pub fn name(self) -> &'static str {
        match self {
            Decision::Run => "run",
            Decision::Skip => "skip",
            Decision::Probe => "probe",
        }
    }

    /// Parses [`Decision::name`] output.
    pub fn from_name(name: &str) -> Option<Decision> {
        match name {
            "run" => Some(Decision::Run),
            "skip" => Some(Decision::Skip),
            "probe" => Some(Decision::Probe),
            _ => None,
        }
    }
}

/// What an item's primary slot actually did, fed back at commit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The primary ran and verified.
    Success,
    /// The primary ran and failed (all attempts exhausted).
    Failure,
    /// The primary never ran (decision was [`Decision::Skip`]).
    Skipped,
}

impl Outcome {
    /// Stable lowercase name (checkpoint serialization).
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Success => "success",
            Outcome::Failure => "failure",
            Outcome::Skipped => "skipped",
        }
    }

    /// Parses [`Outcome::name`] output.
    pub fn from_name(name: &str) -> Option<Outcome> {
        match name {
            "success" => Some(Outcome::Success),
            "failure" => Some(Outcome::Failure),
            "skipped" => Some(Outcome::Skipped),
            _ => None,
        }
    }
}

/// A recorded state transition: `(sequence, from, to)`. The sequence
/// number is the commit index at which the transition happened (the
/// initial-decision prefix uses sequence 0).
pub type Transition = (u64, BreakerState, BreakerState);

/// The circuit breaker itself. Pure and deterministic: state depends
/// only on the sequence of [`Breaker::decide`] / [`Breaker::commit`]
/// calls, never on wall-clock time.
#[derive(Debug, Clone)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive: u32,
    cooldown_left: u32,
    transitions: Vec<Transition>,
}

impl Breaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg,
            state: BreakerState::Closed,
            consecutive: 0,
            cooldown_left: 0,
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Every state transition so far, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions recorded since the caller last drained them.
    pub fn drain_transitions(&mut self) -> Vec<Transition> {
        std::mem::take(&mut self.transitions)
    }

    fn set_state(&mut self, to: BreakerState, seq: u64) {
        if self.state != to {
            self.transitions.push((seq, self.state, to));
            self.state = to;
        }
    }

    /// Issues the dispatch decision for the next item, in input order.
    /// `seq` is the commit index at which this decision is issued (used
    /// only to stamp transitions).
    pub fn decide(&mut self, seq: u64) -> Decision {
        match self.state {
            BreakerState::Closed => Decision::Run,
            BreakerState::Open => {
                if self.cooldown_left > 0 {
                    self.cooldown_left -= 1;
                    Decision::Skip
                } else {
                    self.set_state(BreakerState::HalfOpen, seq);
                    Decision::Probe
                }
            }
            // Probe in flight: hold everything else back until its
            // outcome commits.
            BreakerState::HalfOpen => Decision::Skip,
        }
    }

    /// Folds a committed item's `(decision, outcome)` pair back into the
    /// breaker, in input order. `seq` is the item's commit index.
    pub fn commit(&mut self, decision: Decision, outcome: Outcome, seq: u64) {
        match (decision, outcome) {
            (Decision::Probe, Outcome::Success) => {
                self.consecutive = 0;
                self.set_state(BreakerState::Closed, seq);
            }
            (Decision::Probe, Outcome::Failure) => {
                self.cooldown_left = self.cfg.cooldown;
                self.set_state(BreakerState::Open, seq);
            }
            (Decision::Run, Outcome::Failure) => {
                // Only count failures while Closed; a failure committing
                // after a trip belongs to the decision-lag window and
                // the breaker has already reacted to that streak.
                if self.state == BreakerState::Closed {
                    self.consecutive += 1;
                    if self.consecutive >= self.cfg.threshold {
                        self.cooldown_left = self.cfg.cooldown;
                        self.set_state(BreakerState::Open, seq);
                    }
                }
            }
            (Decision::Run, Outcome::Success) => {
                if self.state == BreakerState::Closed {
                    self.consecutive = 0;
                }
            }
            // Skipped items just drain through the window.
            (_, Outcome::Skipped) | (Decision::Skip, _) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(threshold: u32, cooldown: u32) -> Breaker {
        Breaker::new(BreakerConfig {
            threshold,
            cooldown,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut br = b(3, 2);
        for i in 0..3u64 {
            assert_eq!(br.decide(i), Decision::Run);
            br.commit(Decision::Run, Outcome::Failure, i);
        }
        assert_eq!(br.state(), BreakerState::Open);
        // Cooldown decisions are skips; then a probe.
        assert_eq!(br.decide(3), Decision::Skip);
        assert_eq!(br.decide(4), Decision::Skip);
        assert_eq!(br.decide(5), Decision::Probe);
        assert_eq!(br.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut br = b(3, 1);
        br.commit(Decision::Run, Outcome::Failure, 0);
        br.commit(Decision::Run, Outcome::Failure, 1);
        br.commit(Decision::Run, Outcome::Success, 2);
        br.commit(Decision::Run, Outcome::Failure, 3);
        br.commit(Decision::Run, Outcome::Failure, 4);
        assert_eq!(br.state(), BreakerState::Closed);
        br.commit(Decision::Run, Outcome::Failure, 5);
        assert_eq!(br.state(), BreakerState::Open);
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let mut br = b(1, 0);
        br.commit(Decision::Run, Outcome::Failure, 0);
        assert_eq!(br.state(), BreakerState::Open);
        // Zero cooldown: the very next decision probes.
        assert_eq!(br.decide(1), Decision::Probe);
        br.commit(Decision::Probe, Outcome::Failure, 1);
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.decide(2), Decision::Probe);
        br.commit(Decision::Probe, Outcome::Success, 2);
        assert_eq!(br.state(), BreakerState::Closed);
        assert_eq!(br.decide(3), Decision::Run);
    }

    #[test]
    fn while_half_open_everything_else_skips() {
        let mut br = b(1, 0);
        br.commit(Decision::Run, Outcome::Failure, 0);
        assert_eq!(br.decide(1), Decision::Probe);
        assert_eq!(br.decide(2), Decision::Skip);
        assert_eq!(br.decide(3), Decision::Skip);
        // Lag-window skips drain without disturbing the probe.
        br.commit(Decision::Skip, Outcome::Skipped, 2);
        assert_eq!(br.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn lagging_failures_do_not_double_trip() {
        let mut br = b(2, 10);
        br.commit(Decision::Run, Outcome::Failure, 0);
        br.commit(Decision::Run, Outcome::Failure, 1);
        assert_eq!(br.state(), BreakerState::Open);
        let trips_before = br.transitions().len();
        // In-flight items decided before the trip keep committing.
        br.commit(Decision::Run, Outcome::Failure, 2);
        br.commit(Decision::Run, Outcome::Success, 3);
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.transitions().len(), trips_before);
    }

    #[test]
    fn transitions_are_recorded_with_sequence_numbers() {
        let mut br = b(1, 0);
        br.commit(Decision::Run, Outcome::Failure, 7);
        assert_eq!(br.decide(8), Decision::Probe);
        br.commit(Decision::Probe, Outcome::Success, 8);
        assert_eq!(
            br.transitions(),
            &[
                (7, BreakerState::Closed, BreakerState::Open),
                (8, BreakerState::Open, BreakerState::HalfOpen),
                (8, BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
    }

    #[test]
    fn decision_and_outcome_names_round_trip() {
        for d in [Decision::Run, Decision::Skip, Decision::Probe] {
            assert_eq!(Decision::from_name(d.name()), Some(d));
        }
        for o in [Outcome::Success, Outcome::Failure, Outcome::Skipped] {
            assert_eq!(Outcome::from_name(o.name()), Some(o));
        }
        assert_eq!(Decision::from_name("bogus"), None);
        assert_eq!(Outcome::from_name("bogus"), None);
    }
}
