//! Checkpoint/resume for the soak pipeline.
//!
//! ## Schema: `stm-soak-checkpoint/v2`
//!
//! A checkpoint file is JSON lines with **byte-deterministic** layout —
//! fixed field order, no floats, one record per line, every line sealed
//! with a per-record checksum ([`stm_obs::journal::seal`]):
//!
//! ```text
//! {"schema":"stm-soak-checkpoint/v2","fingerprint":"0x…","crc":"0x…"}
//! {"index":0,"name":"...","status":"ok|degraded|failed|corrupted","slots":[...],"crc":"0x…"}
//! {"index":1, ...}
//! ```
//!
//! Each slot (one per primary kernel, fixed order) carries the breaker
//! decision, the primary outcome, attempt count, cycles, and — flattened
//! to keep the parser simple — the failure stage/error rendering, the
//! served canonical digest with the integrity-verification verdict, and
//! the fallback's result. Absent string fields serialize as `""`.
//!
//! `v1` files (no digest/verify fields, unsealed lines) still load:
//! absent integrity fields default to "not verified", and a line with no
//! seal is accepted as legacy. A line whose seal *fails* is detected
//! corruption and refuses to load — the `stmscrub` bin locates the
//! damage.
//!
//! Because the pipeline commits results strictly in input order, the
//! entries of a checkpoint always form the contiguous prefix `0..k` of
//! the suite; resume replays those `k` outcomes through the breaker
//! logic (rebuilding its exact state and pending-decision window) and
//! continues from item `k`. The `fingerprint` field binds a checkpoint
//! to the soak configuration that produced it — resuming under a
//! different suite, chaos spec, deadline, breaker or retry tuning is
//! refused rather than silently mixing incompatible runs.
//!
//! The **report digest** is FNV-1a over every entry's canonical line
//! (newline-terminated), so an interrupted-and-resumed soak reproducing
//! the uninterrupted digest proves the resumed half re-derived byte-for-
//! byte identical results.
//!
//! Writes are atomic (`<path>.tmp` + rename), so a kill mid-write leaves
//! the previous complete checkpoint in place.

use super::breaker::{Decision, Outcome};
use std::io::Write;
use std::path::Path;
use stm_obs::journal;
use stm_obs::json::Json;

/// Schema tag of the checkpoint header line.
pub const SCHEMA: &str = "stm-soak-checkpoint/v2";

/// The previous schema, still accepted by [`load`]: no per-slot
/// digest/verify fields, no record seals.
pub const SCHEMA_V1: &str = "stm-soak-checkpoint/v1";

/// Terminal status of one committed suite entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryStatus {
    /// Every primary kernel ran and verified.
    Ok,
    /// At least one primary failed or was skipped, and every such slot
    /// was rescued by its verified fallback.
    Degraded,
    /// At least one slot failed beyond rescue.
    Failed,
    /// At least one slot's output was convicted by integrity
    /// verification — a silent data corruption was detected (and, when a
    /// majority leg or the fallback produced a clean result, recovered).
    /// Outranks the other statuses.
    Corrupted,
}

impl EntryStatus {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            EntryStatus::Ok => "ok",
            EntryStatus::Degraded => "degraded",
            EntryStatus::Failed => "failed",
            EntryStatus::Corrupted => "corrupted",
        }
    }

    /// Parses [`EntryStatus::name`] output.
    pub fn from_name(name: &str) -> Option<EntryStatus> {
        match name {
            "ok" => Some(EntryStatus::Ok),
            "degraded" => Some(EntryStatus::Degraded),
            "failed" => Some(EntryStatus::Failed),
            "corrupted" => Some(EntryStatus::Corrupted),
            _ => None,
        }
    }
}

/// Integrity-verification verdict of one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyRecord {
    /// The [`super::VerifyMode`] name the slot ran under.
    pub mode: String,
    /// Verification re-executions performed.
    pub legs: u64,
    /// Whether the primary's output was convicted.
    pub corrupted: bool,
    /// The leg adopted in the convicted primary's place (`""` when
    /// recovery came from the fallback or did not happen).
    pub recovered: String,
}

/// Result of the fallback kernel in one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackRecord {
    /// The fallback kernel that ran.
    pub kernel: String,
    /// Whether it completed and verified.
    pub ok: bool,
    /// Its cycle count when it succeeded (0 otherwise).
    pub cycles: u64,
    /// Its failure rendering when it did not.
    pub error: Option<String>,
}

/// One primary-kernel slot of a committed entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotRecord {
    /// The primary kernel name.
    pub kernel: String,
    /// The breaker's dispatch decision for this slot.
    pub decision: Decision,
    /// What the primary actually did.
    pub outcome: Outcome,
    /// Attempts the primary consumed (0 when skipped).
    pub attempts: u64,
    /// The primary's cycle count when it succeeded (0 otherwise).
    pub cycles: u64,
    /// Failure stage rendering (`"prepare"`/`"run"`/`"verify"`) when the
    /// primary failed.
    pub stage: Option<String>,
    /// Failure error rendering when the primary failed.
    pub error: Option<String>,
    /// Format-independent canonical digest of the result this slot
    /// *served* (0 when nothing was served, or the output had no
    /// canonical form). Serialized as a hex string — the JSON number
    /// path routes through `f64`, which cannot hold all 64 bits.
    pub digest: u64,
    /// The integrity-verification verdict, when verification ran.
    pub verify: Option<VerifyRecord>,
    /// The fallback's result, when one was attempted.
    pub fallback: Option<FallbackRecord>,
}

/// One committed suite entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryRecord {
    /// Position in the suite (entries always form the prefix `0..k`).
    pub index: u64,
    /// Matrix name.
    pub name: String,
    /// Terminal status.
    pub status: EntryStatus,
    /// Per-primary-kernel slots, in registry order.
    pub slots: Vec<SlotRecord>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt(s: &Option<String>) -> String {
    esc(s.as_deref().unwrap_or(""))
}

impl EntryRecord {
    /// The canonical (byte-deterministic) serialization of this entry —
    /// the unit both the checkpoint file and the report digest are built
    /// from.
    pub fn canonical_line(&self) -> String {
        let slots: Vec<String> = self
            .slots
            .iter()
            .map(|s| {
                let (fb_kernel, fb_outcome, fb_cycles, fb_error) = match &s.fallback {
                    None => (String::new(), "", 0, String::new()),
                    Some(f) => (
                        esc(&f.kernel),
                        if f.ok { "ok" } else { "failed" },
                        f.cycles,
                        opt(&f.error),
                    ),
                };
                let (v_mode, v_legs, v_corrupted, v_recovered) = match &s.verify {
                    None => (String::new(), 0, 0, String::new()),
                    Some(v) => (
                        esc(&v.mode),
                        v.legs,
                        u64::from(v.corrupted),
                        esc(&v.recovered),
                    ),
                };
                format!(
                    "{{\"kernel\":\"{}\",\"decision\":\"{}\",\"outcome\":\"{}\",\"attempts\":{},\"cycles\":{},\"stage\":\"{}\",\"error\":\"{}\",\"digest\":\"0x{:016x}\",\"verify\":\"{}\",\"verify_legs\":{},\"corrupted\":{},\"recovered\":\"{}\",\"fallback\":\"{}\",\"fallback_outcome\":\"{}\",\"fallback_cycles\":{},\"fallback_error\":\"{}\"}}",
                    esc(&s.kernel),
                    s.decision.name(),
                    s.outcome.name(),
                    s.attempts,
                    s.cycles,
                    opt(&s.stage),
                    opt(&s.error),
                    s.digest,
                    v_mode,
                    v_legs,
                    v_corrupted,
                    v_recovered,
                    fb_kernel,
                    fb_outcome,
                    fb_cycles,
                    fb_error,
                )
            })
            .collect();
        format!(
            "{{\"index\":{},\"name\":\"{}\",\"status\":\"{}\",\"slots\":[{}]}}",
            self.index,
            esc(&self.name),
            self.status.name(),
            slots.join(",")
        )
    }

    fn parse(json: &Json) -> Result<EntryRecord, String> {
        let str_field = |j: &Json, k: &str| -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let u64_field = |j: &Json, k: &str| -> Result<u64, String> {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field {k:?}"))
        };
        let non_empty = |s: String| if s.is_empty() { None } else { Some(s) };
        let mut slots = Vec::new();
        for s in json
            .get("slots")
            .and_then(Json::as_array)
            .ok_or("missing slots array")?
        {
            let decision = str_field(s, "decision")?;
            let decision = Decision::from_name(&decision)
                .ok_or_else(|| format!("bad decision {decision:?}"))?;
            let outcome = str_field(s, "outcome")?;
            let outcome =
                Outcome::from_name(&outcome).ok_or_else(|| format!("bad outcome {outcome:?}"))?;
            // Integrity fields arrived with schema v2 — default them
            // (digest 0, no verification) so v1 files still parse.
            let digest = match s.get("digest").and_then(Json::as_str) {
                None => 0,
                Some(hex) => hex
                    .strip_prefix("0x")
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad digest {hex:?}"))?,
            };
            let verify = match s.get("verify").and_then(Json::as_str) {
                None | Some("") => None,
                Some(mode) => Some(VerifyRecord {
                    mode: mode.to_string(),
                    legs: u64_field(s, "verify_legs")?,
                    corrupted: match u64_field(s, "corrupted")? {
                        0 => false,
                        1 => true,
                        other => return Err(format!("bad corrupted flag {other}")),
                    },
                    recovered: str_field(s, "recovered")?,
                }),
            };
            let fb_kernel = str_field(s, "fallback")?;
            let fallback = if fb_kernel.is_empty() {
                None
            } else {
                let fb_outcome = str_field(s, "fallback_outcome")?;
                Some(FallbackRecord {
                    kernel: fb_kernel,
                    ok: match fb_outcome.as_str() {
                        "ok" => true,
                        "failed" => false,
                        other => return Err(format!("bad fallback_outcome {other:?}")),
                    },
                    cycles: u64_field(s, "fallback_cycles")?,
                    error: non_empty(str_field(s, "fallback_error")?),
                })
            };
            slots.push(SlotRecord {
                kernel: str_field(s, "kernel")?,
                decision,
                outcome,
                attempts: u64_field(s, "attempts")?,
                cycles: u64_field(s, "cycles")?,
                stage: non_empty(str_field(s, "stage")?),
                error: non_empty(str_field(s, "error")?),
                digest,
                verify,
                fallback,
            });
        }
        let status = str_field(json, "status")?;
        Ok(EntryRecord {
            index: u64_field(json, "index")?,
            name: str_field(json, "name")?,
            status: EntryStatus::from_name(&status)
                .ok_or_else(|| format!("bad status {status:?}"))?,
            slots,
        })
    }
}

/// FNV-1a over every entry's canonical line (newline-terminated), in
/// order — the soak report digest.
pub fn digest(entries: &[EntryRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in entries {
        for b in e.canonical_line().bytes().chain(std::iter::once(b'\n')) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A loaded checkpoint: the configuration fingerprint it was written
/// under and the committed prefix of entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the soak configuration that wrote the file.
    pub fingerprint: u64,
    /// Committed entries — validated to be the contiguous prefix `0..k`.
    pub entries: Vec<EntryRecord>,
}

/// Atomically writes a checkpoint (`<path>.tmp` then rename). Every
/// line — header included — is sealed with a per-record checksum.
pub fn save(path: &Path, fingerprint: u64, entries: &[EntryRecord]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        // Hex string, not a JSON number: the re-reader parses numbers
        // through f64, which cannot hold all 64 fingerprint bits.
        writeln!(
            f,
            "{}",
            journal::seal(&format!(
                "{{\"schema\":\"{SCHEMA}\",\"fingerprint\":\"0x{fingerprint:016x}\"}}"
            ))
        )?;
        for e in entries {
            writeln!(f, "{}", journal::seal(&e.canonical_line()))?;
        }
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Loads and validates a checkpoint file.
///
/// Checkpoint writes are atomic (tmp + rename), but the same schema is
/// also written append-only by consumers that flush line by line (the
/// `stm-serve` results log follows the pattern) — and a `kill -9` can
/// land mid-write, truncating the **final** line. A final line that
/// fails its seal or parse *and* is not newline-terminated is therefore
/// a torn record from an interrupted write: it is skipped with a
/// warning on stderr, and the intact prefix loads normally
/// ([`stm_obs::journal::read_journal`] is the shared reader). A bad
/// seal or malformed line anywhere else is corruption and errors.
/// Unsealed `v1` files load as legacy.
pub fn load(path: &Path) -> Result<Checkpoint, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    if text.is_empty() {
        return Err("empty checkpoint file".to_string());
    }
    let mut fingerprint: Option<u64> = None;
    let read = journal::read_journal(&text, |index, body| {
        let json = Json::parse(body).map_err(|e| e.to_string())?;
        if index == 0 {
            let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
            if schema != SCHEMA && schema != SCHEMA_V1 {
                return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
            }
            fingerprint = Some(
                json.get("fingerprint")
                    .and_then(Json::as_str)
                    .and_then(|s| s.strip_prefix("0x"))
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or("header missing fingerprint")?,
            );
            return Ok(None);
        }
        EntryRecord::parse(&json)
            .map(Some)
            .map_err(|e| format!("entry {}: {e}", index - 1))
    })
    .map_err(|e| format!("checkpoint {path:?}: {e}"))?;
    if let Some(torn) = &read.torn {
        eprintln!(
            "warning: checkpoint {path:?}: skipping torn final line \
             (truncated mid-write record): {torn}"
        );
    }
    let entries = read.records;
    for (i, entry) in entries.iter().enumerate() {
        if entry.index != i as u64 {
            return Err(format!(
                "entry {i} has index {} — checkpoint is not a contiguous prefix",
                entry.index
            ));
        }
    }
    Ok(Checkpoint {
        fingerprint: fingerprint.ok_or("empty checkpoint file")?,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<EntryRecord> {
        vec![
            EntryRecord {
                index: 0,
                name: "tri64".into(),
                status: EntryStatus::Ok,
                slots: vec![SlotRecord {
                    kernel: "transpose_hism".into(),
                    decision: Decision::Run,
                    outcome: Outcome::Success,
                    attempts: 1,
                    cycles: 1234,
                    stage: None,
                    error: None,
                    digest: 0xdead_beef_0bad_f00d,
                    verify: Some(VerifyRecord {
                        mode: "vote".into(),
                        legs: 2,
                        corrupted: false,
                        recovered: String::new(),
                    }),
                    fallback: None,
                }],
            },
            EntryRecord {
                index: 1,
                name: "weird \"name\"".into(),
                status: EntryStatus::Degraded,
                slots: vec![SlotRecord {
                    kernel: "transpose_hism".into(),
                    decision: Decision::Probe,
                    outcome: Outcome::Failure,
                    attempts: 2,
                    cycles: 0,
                    stage: Some("run".into()),
                    error: Some("corrupt: bad\nimage".into()),
                    digest: 0,
                    verify: None,
                    fallback: Some(FallbackRecord {
                        kernel: "transpose_ref".into(),
                        ok: true,
                        cycles: 999,
                        error: None,
                    }),
                }],
            },
            EntryRecord {
                index: 2,
                name: "sdc-hit".into(),
                status: EntryStatus::Corrupted,
                slots: vec![SlotRecord {
                    kernel: "transpose_hism".into(),
                    decision: Decision::Run,
                    outcome: Outcome::Failure,
                    attempts: 1,
                    cycles: 777,
                    stage: None,
                    error: None,
                    digest: 0x1111_2222_3333_4444,
                    verify: Some(VerifyRecord {
                        mode: "vote".into(),
                        legs: 2,
                        corrupted: true,
                        recovered: "scalar".into(),
                    }),
                    fallback: None,
                }],
            },
        ]
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let dir = std::env::temp_dir().join("stm-ckpt-roundtrip");
        let path = dir.join("soak.ckpt");
        let entries = sample_entries();
        save(&path, 77, &entries).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.fingerprint, 77);
        assert_eq!(loaded.entries, entries);
        // Re-saving the loaded entries reproduces the file byte for byte.
        let first = std::fs::read(&path).unwrap();
        save(&path, 77, &loaded.entries).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), first);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let entries = sample_entries();
        let d = digest(&entries);
        assert_eq!(d, digest(&entries));
        let mut reordered = entries.clone();
        reordered.swap(0, 1);
        assert_ne!(d, digest(&reordered));
        let mut tweaked = entries.clone();
        tweaked[0].slots[0].cycles += 1;
        assert_ne!(d, digest(&tweaked));
        assert_ne!(digest(&entries[..1]), d);
    }

    #[test]
    fn load_rejects_bad_schema_and_gaps() {
        let dir = std::env::temp_dir().join("stm-ckpt-reject");
        std::fs::create_dir_all(&dir).unwrap();
        let bad_schema = dir.join("schema.ckpt");
        std::fs::write(&bad_schema, "{\"schema\":\"nope/v0\",\"fingerprint\":1}\n").unwrap();
        assert!(load(&bad_schema)
            .unwrap_err()
            .contains("unsupported schema"));

        let gap = dir.join("gap.ckpt");
        let mut entries = sample_entries();
        entries[1].index = 5;
        let text = format!(
            "{{\"schema\":\"{SCHEMA}\",\"fingerprint\":\"0x0000000000000001\"}}\n{}\n{}\n",
            entries[0].canonical_line(),
            entries[1].canonical_line()
        );
        std::fs::write(&gap, text).unwrap();
        assert!(load(&gap).unwrap_err().contains("contiguous"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_torn_final_line_is_skipped_with_the_prefix_intact() {
        let dir = std::env::temp_dir().join("stm-ckpt-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let entries = sample_entries();
        let full = dir.join("full.ckpt");
        save(&full, 9, &entries).unwrap();
        let bytes = std::fs::read(&full).unwrap();

        // Truncate mid-way through the final record, as a kill -9 during
        // an append-style write would: every cut point that leaves a
        // non-empty partial line must load the intact one-entry prefix.
        let last_line_start = {
            let without_nl = &bytes[..bytes.len() - 1];
            without_nl.iter().rposition(|&b| b == b'\n').unwrap() + 1
        };
        for cut in [last_line_start + 1, last_line_start + 10, bytes.len() - 2] {
            let torn = dir.join("torn.ckpt");
            std::fs::write(&torn, &bytes[..cut]).unwrap();
            let loaded = load(&torn).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(loaded.fingerprint, 9);
            assert_eq!(loaded.entries, entries[..entries.len() - 1], "cut at {cut}");
        }

        // Losing only the trailing newline leaves a complete final
        // record: it parses, so nothing is skipped.
        let whole = dir.join("no-newline.ckpt");
        std::fs::write(&whole, &bytes[..bytes.len() - 1]).unwrap();
        assert_eq!(load(&whole).unwrap().entries, entries);

        // A newline-terminated garbage line is corruption, not a torn
        // write — it must still refuse.
        let bad = dir.join("bad.ckpt");
        let mut garbled = bytes[..last_line_start + 10].to_vec();
        garbled.push(b'\n');
        std::fs::write(&bad, &garbled).unwrap();
        assert!(load(&bad).is_err(), "complete garbage line must error");

        // And a garbage line in the *middle* errors even without a
        // trailing newline on the file.
        let mid = dir.join("mid.ckpt");
        let mut text = String::from_utf8(bytes.clone()).unwrap();
        text = text.replacen("\"status\":\"ok\"", "\"status\":", 1);
        std::fs::write(&mid, text.trim_end_matches('\n')).unwrap();
        assert!(load(&mid).is_err(), "torn tolerance is final-line only");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn status_names_round_trip() {
        for s in [
            EntryStatus::Ok,
            EntryStatus::Degraded,
            EntryStatus::Failed,
            EntryStatus::Corrupted,
        ] {
            assert_eq!(EntryStatus::from_name(s.name()), Some(s));
        }
        assert_eq!(EntryStatus::from_name("meh"), None);
    }

    #[test]
    fn v1_files_load_with_defaulted_integrity_fields() {
        let dir = std::env::temp_dir().join("stm-ckpt-v1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.ckpt");
        // A v1 file: v1 schema tag, no digest/verify fields, no seals.
        let text = format!(
            "{{\"schema\":\"{SCHEMA_V1}\",\"fingerprint\":\"0x000000000000002a\"}}\n\
             {{\"index\":0,\"name\":\"tri64\",\"status\":\"ok\",\"slots\":[\
             {{\"kernel\":\"transpose_hism\",\"decision\":\"run\",\"outcome\":\"success\",\
             \"attempts\":1,\"cycles\":1234,\"stage\":\"\",\"error\":\"\",\"fallback\":\"\",\
             \"fallback_outcome\":\"\",\"fallback_cycles\":0,\"fallback_error\":\"\"}}]}}\n"
        );
        std::fs::write(&path, text).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.fingerprint, 42);
        assert_eq!(loaded.entries.len(), 1);
        let slot = &loaded.entries[0].slots[0];
        assert_eq!(slot.digest, 0);
        assert_eq!(slot.verify, None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_flipped_bit_in_a_sealed_checkpoint_refuses_to_load() {
        let dir = std::env::temp_dir().join("stm-ckpt-sealed");
        let path = dir.join("soak.ckpt");
        save(&path, 7, &sample_entries()).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();
        assert!(good.lines().all(|l| l.contains("\"crc\":\"0x")));
        // Corrupt one digit of a mid-file record's cycle count: the line
        // still parses as valid JSON, but its seal convicts it.
        let rotten = good.replacen("\"cycles\":1234", "\"cycles\":1235", 1);
        assert_ne!(rotten, good);
        std::fs::write(&path, rotten).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
