//! Trace export for the batch harness: when [`crate::RunConfig::trace`]
//! names a directory, every kernel run records a structured event trace
//! (see `stm-obs`) and the harness writes three files per matrix/kernel
//! pair —
//!
//! * `<matrix>.<kernel>.jsonl` — one JSON object per line (meta, events,
//!   counters, histograms), the format `tracecheck` validates;
//! * `<matrix>.<kernel>.csv` — the same events as a flat table;
//! * `<matrix>.<kernel>.trace.json` — Chrome `trace_event` JSON, loadable
//!   in `about:tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Only the *final* attempt of a retried run is exported and rolled up —
//! cycles spent in abandoned attempts would otherwise inflate the
//! aggregates (see [`TraceRollup`]).

use crate::output::format_table;
use std::path::Path;
use stm_obs::TraceData;

/// Per-kernel trace roll-up row for the figure binaries' metrics table.
#[derive(Debug, Clone)]
pub struct TraceRollup {
    /// Matrix name from the suite.
    pub matrix: String,
    /// Registry kernel name.
    pub kernel: &'static str,
    /// Events captured in the final attempt's trace.
    pub events: u64,
    /// Events the ring buffer had to drop (0 = complete trace).
    pub dropped: u64,
    /// The `stage.run.cycles` counter (the engine's reported total).
    pub run_cycles: u64,
    /// Bytes touched across the prepare/run/verify stages.
    pub bytes: u64,
    /// Attempts the harness made (only the last one is traced).
    pub attempts: u64,
}

impl TraceRollup {
    /// Summarizes one kernel's final-attempt trace.
    pub fn of(matrix: &str, kernel: &'static str, data: &TraceData, attempts: u64) -> Self {
        TraceRollup {
            matrix: matrix.to_string(),
            kernel,
            events: data.events.len() as u64,
            dropped: data.dropped,
            run_cycles: data.counter("stage.run.cycles"),
            bytes: data.counter("stage.prepare.bytes")
                + data.counter("stage.run.bytes")
                + data.counter("stage.verify.bytes"),
            attempts,
        }
    }
}

/// File-name stem for one matrix/kernel trace: non-portable characters in
/// the matrix name are replaced so suite names can't escape the directory.
pub fn trace_stem(matrix: &str, kernel: &str) -> String {
    let clean: String = matrix
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect();
    format!("{clean}.{kernel}")
}

/// Writes the three export formats for one trace under `dir` (creating
/// it), returning the stem the files share.
pub fn export_trace(
    dir: &Path,
    matrix: &str,
    kernel: &str,
    data: &TraceData,
) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let stem = trace_stem(matrix, kernel);
    std::fs::write(dir.join(format!("{stem}.jsonl")), data.to_jsonl())?;
    std::fs::write(dir.join(format!("{stem}.csv")), data.to_csv())?;
    std::fs::write(
        dir.join(format!("{stem}.trace.json")),
        data.to_chrome_trace(),
    )?;
    Ok(stem)
}

/// Renders the per-run trace roll-up as an aligned table (the figure
/// binaries print this after their main table when `--trace` is active).
pub fn format_trace_rollup(rows: &[TraceRollup]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.matrix.clone(),
                r.kernel.to_string(),
                r.events.to_string(),
                r.dropped.to_string(),
                r.run_cycles.to_string(),
                r.bytes.to_string(),
                r.attempts.to_string(),
            ]
        })
        .collect();
    format_table(
        &[
            "matrix",
            "kernel",
            "events",
            "dropped",
            "run_cycles",
            "bytes",
            "attempts",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stems_are_filesystem_safe() {
        assert_eq!(trace_stem("a/b c", "k"), "a-b-c.k");
        assert_eq!(
            trace_stem("dw8192", "transpose_hism"),
            "dw8192.transpose_hism"
        );
    }

    #[test]
    fn export_writes_all_three_formats() {
        let rec = stm_obs::Recorder::enabled_default();
        let s = rec.begin(stm_obs::Lane::Stage, stm_obs::Category::Stage, "run", 0);
        rec.end(stm_obs::Lane::Stage, stm_obs::Category::Stage, "run", 5, s);
        rec.add("stage.run.cycles", 5);
        let data = rec.snapshot();
        let dir = std::env::temp_dir().join("stm_bench_trace_export_test");
        let stem = export_trace(&dir, "m one", "k", &data).unwrap();
        for ext in ["jsonl", "csv", "trace.json"] {
            let p = dir.join(format!("{stem}.{ext}"));
            assert!(p.is_file(), "{p:?} missing");
            assert!(std::fs::read_to_string(&p).unwrap().len() > 10);
        }
        let roll = TraceRollup::of("m one", "k", &data, 1);
        assert_eq!(roll.events, 2);
        assert_eq!(roll.run_cycles, 5);
        let rendered = format_trace_rollup(&[roll]);
        assert!(rendered.contains("run_cycles"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
