//! Trace invariant checker: structural properties every well-formed
//! recording must satisfy, used by the test suite and the `tracecheck`
//! bin.
//!
//! Invariants:
//!
//! 1. **Per-lane monotonicity** — timestamps on one lane never decrease.
//! 2. **Span nesting** — on each lane, `Begin`/`End` pairs form a proper
//!    LIFO: each `End` closes the innermost open span and carries its id.
//! 3. **Closure** — no span is left open at the end of the recording.
//! 4. **Causality** — an `End` never precedes its `Begin` in time.
//!
//! Request-correlated events (`req != 0`) form independent timelines:
//! every invariant is keyed by `(lane, request)`, so absorbed request
//! recordings (their own cycle clocks, starting at 0) coexist with the
//! host trace's own timeline.
//!
//! When the ring dropped events (`dropped > 0`), the oldest `Begin`s may
//! be gone, so only monotonicity (which survives arbitrary prefix loss)
//! is checked.

use std::collections::BTreeMap;

use crate::event::{EventKind, Lane};
use crate::recorder::TraceData;

/// Validate the structural invariants of a recording.
///
/// Returns `Ok(())` or the full list of violations (never panics).
pub fn validate(data: &TraceData) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    let mut last_ts: BTreeMap<(Lane, u64), u64> = BTreeMap::new();
    // Per-(lane, request) stack of open spans: (span id, name, begin ts).
    #[allow(clippy::type_complexity)]
    let mut open: BTreeMap<(Lane, u64), Vec<(u32, &'static str, u64)>> = BTreeMap::new();
    let lossy = data.dropped > 0;

    for (i, e) in data.events.iter().enumerate() {
        if let Some(&prev) = last_ts.get(&(e.lane, e.req)) {
            if e.ts < prev {
                errors.push(format!(
                    "event {i} ({} {:?}): timestamp {} goes backwards on lane {} req {} (prev {})",
                    e.name,
                    e.kind.as_str(),
                    e.ts,
                    e.lane.label(),
                    e.req,
                    prev
                ));
            }
        }
        last_ts.insert((e.lane, e.req), e.ts);

        if lossy {
            continue;
        }
        match e.kind {
            EventKind::Begin { span } => {
                open.entry((e.lane, e.req))
                    .or_default()
                    .push((span, e.name, e.ts));
            }
            EventKind::End { span } => match open.entry((e.lane, e.req)).or_default().pop() {
                None => errors.push(format!(
                    "event {i} ({}): End span {span} on lane {} req {} with no open span",
                    e.name,
                    e.lane.label(),
                    e.req
                )),
                Some((opened, name, begin_ts)) => {
                    if opened != span {
                        errors.push(format!(
                            "event {i} ({}): End span {span} on lane {} does not match \
                             innermost open span {opened} ({name}) — improper nesting",
                            e.name,
                            e.lane.label()
                        ));
                    }
                    if e.ts < begin_ts {
                        errors.push(format!(
                            "event {i} ({}): span {span} ends at {} before it began at {begin_ts}",
                            e.name, e.ts
                        ));
                    }
                }
            },
            EventKind::Complete { .. } | EventKind::Instant | EventKind::Sample { .. } => {}
        }
    }

    if !lossy {
        for ((lane, req), stack) in &open {
            for (span, name, ts) in stack {
                errors.push(format!(
                    "span {span} ({name}, begun at {ts}) on lane {} req {req} never closed",
                    lane.label()
                ));
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;
    use crate::recorder::Recorder;

    #[test]
    fn well_formed_trace_validates() {
        let r = Recorder::enabled(64);
        let a = r.begin(Lane::Stage, Category::Stage, "run", 0);
        let b = r.begin(Lane::Stage, Category::Stage, "phase", 2);
        r.complete(Lane::Alu, Category::Alu, "v_fadd", 1, 4, 64);
        r.end(Lane::Stage, Category::Stage, "phase", 5, b);
        r.end(Lane::Stage, Category::Stage, "run", 9, a);
        assert!(validate(&r.snapshot()).is_ok());
    }

    #[test]
    fn backwards_timestamp_is_caught() {
        let r = Recorder::enabled(64);
        r.complete(Lane::Alu, Category::Alu, "a", 10, 1, 0);
        r.complete(Lane::Alu, Category::Alu, "b", 5, 1, 0);
        let errs = validate(&r.snapshot()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("goes backwards")));
    }

    #[test]
    fn other_lane_is_independent() {
        let r = Recorder::enabled(64);
        r.complete(Lane::Alu, Category::Alu, "a", 10, 1, 0);
        r.complete(Lane::Mem(0), Category::Mem, "b", 5, 1, 0);
        assert!(validate(&r.snapshot()).is_ok());
    }

    #[test]
    fn unclosed_span_is_caught() {
        let r = Recorder::enabled(64);
        r.begin(Lane::Stage, Category::Stage, "run", 0);
        let errs = validate(&r.snapshot()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("never closed")));
    }

    #[test]
    fn crossed_spans_are_caught() {
        let r = Recorder::enabled(64);
        let a = r.begin(Lane::Stage, Category::Stage, "a", 0);
        let _b = r.begin(Lane::Stage, Category::Stage, "b", 1);
        // Close the OUTER span first: improper nesting.
        r.end(Lane::Stage, Category::Stage, "a", 2, a);
        let errs = validate(&r.snapshot()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("improper nesting")));
    }

    #[test]
    fn requests_are_independent_timelines() {
        use crate::event::SpanCtx;
        let r = Recorder::enabled(64);
        let a = r.with_ctx(SpanCtx::request(1));
        let b = r.with_ctx(SpanCtx::request(2));
        let s1 = a.begin(Lane::Stage, Category::Stage, "run", 100);
        a.end(Lane::Stage, Category::Stage, "run", 110, s1);
        // Request 2 restarts its clock at 0 on the same lane: legal,
        // the timelines are independent.
        let s2 = b.begin(Lane::Stage, Category::Stage, "run", 0);
        b.end(Lane::Stage, Category::Stage, "run", 5, s2);
        assert!(validate(&r.snapshot()).is_ok());
        // But within one request, time still cannot go backwards.
        a.instant(Lane::Stage, Category::Stage, "late", 50);
        let errs = validate(&r.snapshot()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("req 1")));
    }

    #[test]
    fn lossy_trace_only_checks_monotonicity() {
        let r = Recorder::enabled(1);
        let a = r.begin(Lane::Stage, Category::Stage, "run", 0);
        r.end(Lane::Stage, Category::Stage, "run", 5, a);
        // Ring of 1: the Begin was dropped; only End remains.
        let snap = r.snapshot();
        assert_eq!(snap.dropped, 1);
        assert!(validate(&snap).is_ok());
    }
}
