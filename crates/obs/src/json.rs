//! A minimal JSON parser — just enough to re-read our own exporter
//! output in the `tracecheck` bin and in tests, without a dependency.
//!
//! Supports the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Objects preserve key order.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up `key` in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":"x"}],"c":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn round_trips_exporter_output() {
        use crate::event::{Category, Lane};
        use crate::export::to_chrome_trace;
        use crate::recorder::Recorder;
        let r = Recorder::enabled(16);
        let s = r.begin(Lane::Stage, Category::Stage, "run", 0);
        r.end(Lane::Stage, Category::Stage, "run", 10, s);
        r.add("n", 3);
        let v = Json::parse(&to_chrome_trace(&r.snapshot())).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 3); // metadata + B + E
        assert_eq!(
            v.get("otherData")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("n")
                .unwrap()
                .as_u64(),
            Some(3)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"abc").is_err());
    }
}
