//! # stm-obs — cycle-level observability for the HiSM/STM simulator
//!
//! A first-party, zero-dependency tracing and metrics layer:
//!
//! * [`event`] — the event model: [`Lane`]s (logical timelines),
//!   [`Category`]s, and cycle-stamped [`TraceEvent`]s;
//! * [`recorder`] — the cloneable [`Recorder`] handle over a shared
//!   ring buffer plus counters/histograms; disabled recorders are
//!   true no-ops;
//! * [`metrics`] — deterministic named counters and log2 histograms;
//! * [`export`] — byte-deterministic JSONL, CSV, and Chrome
//!   `trace_event` exporters (open in `about:tracing` / Perfetto);
//! * [`check`] — structural invariant validation over a recording
//!   (per-lane monotonicity, LIFO span nesting, closure);
//! * [`profile`] — deterministic per-kernel profiles (phase attribution,
//!   per-FU stall tables, folded-stack export) from a recording or a
//!   JSONL export; the logic behind the `stmprof` bin;
//! * [`jsonl`] — re-validation of exported JSONL text (the logic
//!   behind the `tracecheck` bin);
//! * [`journal`] — durable-file plumbing shared by every line-oriented
//!   on-disk artifact: per-record checksum seals, the one torn-tail-
//!   tolerant reader, and the scrubber behind the `stmscrub` bin;
//! * [`telemetry`] — the live metrics plane: a lock-striped
//!   [`telemetry::MetricsRegistry`] (counters, gauges, sliding-window
//!   histograms) merged deterministically across worker shards, with a
//!   sorted Prometheus-compatible text exposition;
//! * [`json`] — a minimal JSON parser used to re-read exports.
//!
//! # Example
//!
//! ```
//! use stm_obs::{Category, Lane, Recorder};
//!
//! let rec = Recorder::enabled(1024);
//! let run = rec.begin(Lane::Stage, Category::Stage, "run", 0);
//! rec.complete(Lane::Mem(0), Category::Mem, "v_ld", 0, 36, 64);
//! rec.end(Lane::Stage, Category::Stage, "run", 36, run);
//! rec.add("mem.words", 64);
//!
//! let snap = rec.snapshot();
//! assert!(stm_obs::check::validate(&snap).is_ok());
//! let jsonl = stm_obs::export::to_jsonl(&snap);
//! assert!(stm_obs::jsonl::validate_jsonl(&jsonl).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod event;
pub mod export;
pub mod journal;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod telemetry;

pub use event::{Category, EventKind, Lane, SpanCtx, TraceEvent};
pub use metrics::{Histogram, Metrics};
pub use recorder::{Recorder, TraceData, DEFAULT_CAPACITY};
pub use telemetry::{MetricsRegistry, MetricsSnapshot};
