//! Exporters: JSON lines, CSV, and Chrome `trace_event` JSON.
//!
//! All three are pure functions from a [`TraceData`] snapshot to a
//! `String`, and all output is **byte-deterministic**: integers are
//! formatted exactly, floats with fixed 6-digit precision, counters and
//! histograms iterate in name order, and no hash-ordered container is
//! involved anywhere. Identical snapshots produce identical bytes.
//!
//! The Chrome format opens directly in `about:tracing` or
//! <https://ui.perfetto.dev>: one cycle is rendered as one microsecond,
//! each [`Lane`] becomes a named thread.

use crate::event::{EventKind, Lane, TraceEvent};
use crate::recorder::TraceData;

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float deterministically (fixed 6-digit precision).
fn num(v: f64) -> String {
    format!("{v:.6}")
}

fn event_fields(e: &TraceEvent) -> String {
    let mut s = format!(
        "\"ts\":{},\"lane\":\"{}\",\"tid\":{},\"cat\":\"{}\",\"name\":\"{}\",\"kind\":\"{}\"",
        e.ts,
        esc(&e.lane.label()),
        e.lane.tid(),
        e.cat.as_str(),
        esc(e.name),
        e.kind.as_str()
    );
    // Request-correlated events carry their originating request id; the
    // field is omitted when 0 so uncorrelated traces keep the pre-
    // correlation byte format.
    if e.req != 0 {
        s.push_str(&format!(",\"req\":{}", e.req));
    }
    match e.kind {
        EventKind::Begin { span } | EventKind::End { span } => {
            s.push_str(&format!(",\"span\":{span}"));
        }
        EventKind::Complete { dur, elements } => {
            s.push_str(&format!(",\"dur\":{dur},\"elements\":{elements}"));
        }
        EventKind::Instant => {}
        EventKind::Sample { value } => {
            s.push_str(&format!(",\"value\":{}", num(value)));
        }
    }
    s
}

/// Export as JSON lines: one `meta` line, then one line per event, then
/// one line per counter and per histogram (name order).
pub fn to_jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"events\":{},\"dropped\":{}}}\n",
        data.events.len(),
        data.dropped
    ));
    for e in &data.events {
        out.push_str(&format!("{{\"type\":\"event\",{}}}\n", event_fields(e)));
    }
    for (name, value) in &data.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
            esc(name),
            value
        ));
    }
    for (name, h) in &data.histograms {
        let buckets: Vec<String> = h
            .nonzero_buckets()
            .iter()
            .map(|(i, c)| format!("[{i},{c}]"))
            .collect();
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}\n",
            esc(name),
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            num(h.mean()),
            h.percentile(50).unwrap_or(0),
            h.percentile(95).unwrap_or(0),
            h.percentile(99).unwrap_or(0),
            buckets.join(",")
        ));
    }
    out
}

/// Export events as CSV with a fixed header; inapplicable fields are
/// left empty.
pub fn to_csv(data: &TraceData) -> String {
    let mut out = String::from("ts,lane,tid,cat,name,kind,span,dur,elements,value\n");
    for e in &data.events {
        let (span, dur, elements, value) = match e.kind {
            EventKind::Begin { span } | EventKind::End { span } => (
                span.to_string(),
                String::new(),
                String::new(),
                String::new(),
            ),
            EventKind::Complete { dur, elements } => (
                String::new(),
                dur.to_string(),
                elements.to_string(),
                String::new(),
            ),
            EventKind::Instant => (String::new(), String::new(), String::new(), String::new()),
            EventKind::Sample { value } => {
                (String::new(), String::new(), String::new(), num(value))
            }
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            e.ts,
            e.lane.label(),
            e.lane.tid(),
            e.cat.as_str(),
            e.name,
            e.kind.as_str(),
            span,
            dur,
            elements,
            value
        ));
    }
    out
}

/// Export as Chrome `trace_event` JSON (open in `about:tracing` or
/// Perfetto). Cycles are encoded as microseconds; every lane present in
/// the trace gets a `thread_name` metadata record.
pub fn to_chrome_trace(data: &TraceData) -> String {
    let mut lanes: Vec<Lane> = data.events.iter().map(|e| e.lane).collect();
    lanes.sort();
    lanes.dedup();

    let mut records: Vec<String> = Vec::with_capacity(data.events.len() + lanes.len());
    for lane in &lanes {
        records.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            lane.tid(),
            esc(&lane.label())
        ));
    }
    for e in &data.events {
        let head = format!(
            "\"pid\":0,\"tid\":{},\"ts\":{},\"cat\":\"{}\",\"name\":\"{}\"",
            e.lane.tid(),
            e.ts,
            e.cat.as_str(),
            esc(e.name)
        );
        // Request-tagged events carry the id as an extra arg; the arg
        // is absent when 0 so uncorrelated traces are byte-identical to
        // the pre-correlation format.
        let req = if e.req != 0 {
            format!(",\"req\":{}", e.req)
        } else {
            String::new()
        };
        let rec = match e.kind {
            EventKind::Begin { span } => {
                format!("{{\"ph\":\"B\",{head},\"args\":{{\"span\":{span}{req}}}}}")
            }
            EventKind::End { span } => {
                format!("{{\"ph\":\"E\",{head},\"args\":{{\"span\":{span}{req}}}}}")
            }
            EventKind::Complete { dur, elements } => format!(
                "{{\"ph\":\"X\",{head},\"dur\":{dur},\"args\":{{\"elements\":{elements}{req}}}}}"
            ),
            EventKind::Instant if e.req != 0 => {
                format!(
                    "{{\"ph\":\"i\",{head},\"s\":\"t\",\"args\":{{\"req\":{}}}}}",
                    e.req
                )
            }
            EventKind::Instant => format!("{{\"ph\":\"i\",{head},\"s\":\"t\"}}"),
            EventKind::Sample { value } => format!(
                "{{\"ph\":\"C\",{head},\"args\":{{\"value\":{}{req}}}}}",
                num(value)
            ),
        };
        records.push(rec);
    }
    let counters: Vec<String> = data
        .counters
        .iter()
        .map(|(name, value)| format!("\"{}\":{}", esc(name), value))
        .collect();
    let counters = counters.join(",");
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"clock\":\"cycles-as-us\",\"dropped\":{},\"counters\":{{{counters}}}}}}}\n",
        records.join(","),
        data.dropped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;
    use crate::recorder::Recorder;

    fn sample_data() -> TraceData {
        let r = Recorder::enabled(64);
        let run = r.begin(Lane::Stage, Category::Stage, "run", 0);
        r.complete(Lane::Mem(0), Category::Mem, "v_ld", 0, 36, 64);
        r.instant(Lane::Fault, Category::Fault, "mem.oob", 10);
        r.sample(Lane::StmBlock, "stm.buffer_utilization", 20, 0.5);
        r.end(Lane::Stage, Category::Stage, "run", 40, run);
        r.add("mem.oob_events", 1);
        r.observe("vector_length", 64);
        r.snapshot()
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_data();
        let b = sample_data();
        assert_eq!(to_jsonl(&a), to_jsonl(&b));
        assert_eq!(to_csv(&a), to_csv(&b));
        assert_eq!(to_chrome_trace(&a), to_chrome_trace(&b));
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let d = sample_data();
        let text = to_jsonl(&d);
        // meta + 5 events + 1 counter + 1 histogram.
        assert_eq!(text.lines().count(), 8);
        assert!(text.starts_with("{\"type\":\"meta\""));
        assert!(text.contains("\"kind\":\"begin\""));
        assert!(text.contains("\"type\":\"histogram\""));
        // Histogram lines carry the percentile summary (one value, 64,
        // so every percentile is exactly 64).
        assert!(text.contains("\"p50\":64,\"p95\":64,\"p99\":64"), "{text}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let d = sample_data();
        let text = to_csv(&d);
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "ts,lane,tid,cat,name,kind,span,dur,elements,value"
        );
        assert_eq!(lines.count(), d.events.len());
    }

    #[test]
    fn chrome_trace_marks_phases() {
        let d = sample_data();
        let text = to_chrome_trace(&d);
        for ph in [
            "\"ph\":\"M\"",
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
        ] {
            assert!(text.contains(ph), "missing {ph} in {text}");
        }
        assert!(text.contains("\"displayTimeUnit\""));
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn request_tag_is_emitted_only_when_nonzero() {
        use crate::event::SpanCtx;
        let r = Recorder::enabled(16);
        r.instant(Lane::Serve, Category::Serve, "plain", 0);
        let tagged = r.with_ctx(SpanCtx::request(0xbeef));
        let s = tagged.begin(Lane::Stage, Category::Stage, "run", 1);
        tagged.end(Lane::Stage, Category::Stage, "run", 2, s);
        let snap = r.snapshot();

        let jsonl = to_jsonl(&snap);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(!lines[1].contains("\"req\""), "{}", lines[1]);
        assert!(lines[2].contains("\"req\":48879"), "{}", lines[2]);

        let chrome = to_chrome_trace(&snap);
        assert!(chrome.contains("\"req\":48879"));
        // Untagged traces keep the pre-correlation byte format.
        let plain = Recorder::enabled(16);
        plain.instant(Lane::Serve, Category::Serve, "plain", 0);
        assert!(!to_jsonl(&plain.snapshot()).contains("req"));
        assert!(!to_chrome_trace(&plain.snapshot()).contains("req"));
    }
}
