//! Counters and histograms, kept outside the event ring so that ring
//! overflow (oldest events dropped) never corrupts aggregate metrics.

use std::collections::BTreeMap;

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket `i` counts observations `v` with `floor(log2(v)) == i - 1`
/// (bucket 0 counts `v == 0`). Cheap, allocation-free after creation,
/// and deterministic — good enough to see instruction-length and span
/// shape distributions without pulling in a dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let b = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-upper-bound estimate of the `p`-th percentile (`p` in
    /// `0..=100`; values above 100 clamp to 100): the upper bound of the
    /// log2 bucket holding the observation of rank `ceil(p/100 * count)`.
    /// Exact for `p = 100` (returns [`Histogram::max`]); `None` when the
    /// histogram holds no observations — an empty histogram has no
    /// percentiles, and a sentinel value would be indistinguishable from
    /// a real observation of that value.
    pub fn percentile(&self, p: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.min(100);
        // rank in 1..=count, computed without floating point.
        let rank = (p * self.count).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket 0 holds only zeros; bucket i (i >= 1) holds
                // values in [2^(i-1), 2^i - 1]. Clamp the upper bound
                // to the observed max so p100 is exact and estimates
                // never exceed any real observation.
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// Named counters and histograms with deterministic (sorted) iteration.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Add `delta` to the counter `name` (creating it at 0).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Record `value` into the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of counter `name`, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        // 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1024 -> 11.
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1)]
        );
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        for p in [0, 50, 95, 100] {
            assert_eq!(h.percentile(p), None);
        }
    }

    #[test]
    fn percentile_of_single_value_is_that_value() {
        let mut h = Histogram::default();
        h.observe(37);
        for p in [0, 1, 50, 95, 100, 200] {
            assert_eq!(h.percentile(p), Some(37), "p{p}");
        }
    }

    #[test]
    fn percentile_uses_bucket_upper_bounds() {
        let mut h = Histogram::default();
        // 100 observations: 50 of value 3 (bucket 2), 50 of 1000 (bucket 10).
        for _ in 0..50 {
            h.observe(3);
        }
        for _ in 0..50 {
            h.observe(1000);
        }
        assert_eq!(h.percentile(50), Some(3)); // bucket 2 upper bound = 3
        assert_eq!(h.percentile(95), Some(1000)); // bucket 10 upper bound 1023, clamped to max
        assert_eq!(h.percentile(100), Some(h.max()));
        assert_eq!(h.percentile(0), Some(3)); // rank clamps to 1
    }

    #[test]
    fn percentile_of_saturated_top_bucket() {
        // A value in bucket 64 (top bit set) must not overflow the
        // upper-bound shift; the estimate clamps to the observed max.
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        assert_eq!(h.percentile(50), Some(u64::MAX));
        assert_eq!(h.percentile(100), Some(u64::MAX));
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn percentile_never_exceeds_max() {
        let mut h = Histogram::default();
        for v in [0, 5, 9, 130, 70000] {
            h.observe(v);
        }
        for p in 0..=100 {
            assert!(h.percentile(p).unwrap() <= h.max());
        }
        assert_eq!(h.percentile(100), Some(70000));
    }

    #[test]
    fn counters_iterate_sorted() {
        let mut m = Metrics::default();
        m.add("z", 1);
        m.add("a", 2);
        m.add("z", 3);
        let got: Vec<_> = m.counters().collect();
        assert_eq!(got, vec![("a", 2), ("z", 4)]);
        assert_eq!(m.counter("z"), 4);
        assert_eq!(m.counter("missing"), 0);
    }
}
