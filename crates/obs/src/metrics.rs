//! Counters and histograms, kept outside the event ring so that ring
//! overflow (oldest events dropped) never corrupts aggregate metrics.

use std::collections::BTreeMap;

/// Number of buckets: zeros, one bucket per power-of-two upper bound
/// `2^0 ..= 2^63`, and one overflow bucket for `(2^63, u64::MAX]`.
const BUCKETS: usize = 66;

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 counts `v == 0`; bucket `i` (`1 <= i <= 64`) counts
/// observations in `(2^(i-2), 2^(i-1)]` — each bucket's upper bound is a
/// power of two and is **inclusive**, so a sample equal to a bucket's
/// top bound lands in that bucket, never the next one up. Bucket 65 is
/// the overflow bucket for `(2^63, u64::MAX]`. Cheap, allocation-free
/// after creation, and deterministic — good enough to see
/// instruction-length and span shape distributions without pulling in a
/// dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for one observation: `ceil(log2(v)) + 1` with zeros
    /// in bucket 0 and `(2^63, u64::MAX]` in the overflow bucket.
    fn bucket_index(value: u64) -> usize {
        match value {
            0 => 0,
            v => 65 - (v - 1).leading_zeros() as usize,
        }
    }

    /// Inclusive upper bound of bucket `i` (`0` for the zero bucket,
    /// `u64::MAX` for the overflow bucket).
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=64 => 1u64 << (i - 1),
            _ => u64::MAX,
        }
    }

    /// Record one observation. Count and sum saturate rather than wrap,
    /// so a long-lived histogram (a live telemetry window) degrades to a
    /// pinned maximum instead of corrupting its aggregates.
    pub fn observe(&mut self, value: u64) {
        let b = Self::bucket_index(value);
        self.buckets[b] = self.buckets[b].saturating_add(1);
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-upper-bound estimate of the `p`-th percentile (`p` in
    /// `0..=100`; values above 100 clamp to 100): the upper bound of the
    /// log2 bucket holding the observation of rank `ceil(p/100 * count)`.
    /// Exact for `p = 100` (returns [`Histogram::max`]); `None` when the
    /// histogram holds no observations — an empty histogram has no
    /// percentiles, and a sentinel value would be indistinguishable from
    /// a real observation of that value.
    pub fn percentile(&self, p: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.min(100);
        // rank in 1..=count, computed without floating point.
        let rank = (p * self.count).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket's inclusive upper bound to the
                // observed max so p100 is exact and estimates never
                // exceed any real observation.
                return Some(Self::bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one: bucket counts, count and
    /// sum saturating-add; min/max widen. Merging is associative and
    /// commutative, so per-shard histograms fold into one aggregate in
    /// any order with the same result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// Named counters and histograms with deterministic (sorted) iteration.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Add `delta` to the counter `name` (creating it at 0).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Record `value` into the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Merge a whole histogram into the histogram `name` (creating it
    /// empty), via [`Histogram::merge`].
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Current value of counter `name`, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        // 0 -> bucket 0; 1 -> 1; 2 -> 2; 3,4 -> 3 (upper bound 4);
        // 1024 -> 11 (upper bound 1024, inclusive).
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 1), (3, 2), (11, 1)]
        );
    }

    #[test]
    fn sample_on_top_bucket_bound_stays_in_that_bucket() {
        // A sample equal to a bucket's inclusive upper bound must land
        // in that bucket, not the next one up — in particular 2^63 (the
        // top regular bound) must not spill into the overflow bucket.
        let mut h = Histogram::default();
        h.observe(1u64 << 63);
        assert_eq!(h.nonzero_buckets(), vec![(64, 1)]);
        assert_eq!(Histogram::bucket_upper(64), 1u64 << 63);
        h.observe((1u64 << 63) + 1);
        assert_eq!(h.nonzero_buckets(), vec![(64, 1), (65, 1)]);
        assert_eq!(Histogram::bucket_upper(65), u64::MAX);
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        for p in [0, 50, 95, 100] {
            assert_eq!(h.percentile(p), None);
        }
    }

    #[test]
    fn percentile_of_single_value_is_that_value() {
        let mut h = Histogram::default();
        h.observe(37);
        for p in [0, 1, 50, 95, 100, 200] {
            assert_eq!(h.percentile(p), Some(37), "p{p}");
        }
    }

    #[test]
    fn percentile_uses_bucket_upper_bounds() {
        let mut h = Histogram::default();
        // 100 observations: 50 of value 3 (bucket 3), 50 of 1000 (bucket 11).
        for _ in 0..50 {
            h.observe(3);
        }
        for _ in 0..50 {
            h.observe(1000);
        }
        assert_eq!(h.percentile(50), Some(4)); // bucket 3 upper bound = 4
        assert_eq!(h.percentile(95), Some(1000)); // bucket 11 upper bound 1024, clamped to max
        assert_eq!(h.percentile(100), Some(h.max()));
        assert_eq!(h.percentile(0), Some(4)); // rank clamps to 1
    }

    #[test]
    fn percentile_of_saturated_top_bucket() {
        // A value in the overflow bucket must not overflow the
        // upper-bound shift; the estimate clamps to the observed max.
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        assert_eq!(h.percentile(50), Some(u64::MAX));
        assert_eq!(h.percentile(100), Some(u64::MAX));
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn merge_matches_concatenated_observation() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [0, 1, 7, 64, 1000, u64::MAX] {
            a.observe(v);
            all.observe(v);
        }
        for v in [2, 3, 64, 4096] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = Histogram::default();
        a.observe(u64::MAX);
        a.observe(u64::MAX);
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), u64::MAX); // saturated, not wrapped
        assert_eq!(a.nonzero_buckets(), vec![(65, 4)]);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::default();
        for v in [5, 9, 130] {
            a.observe(v);
        }
        let orig = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, orig);
        let mut empty = Histogram::default();
        empty.merge(&orig);
        assert_eq!(empty, orig);
    }

    /// Property test (hand-rolled deterministic generator): percentiles
    /// over two merged shards equal percentiles over the concatenated
    /// sample stream exactly, and both stay within bucket resolution
    /// (at most 2x) of the true rank-order percentile.
    #[test]
    fn merge_percentiles_match_concatenated_within_bucket_resolution() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            // SplitMix64 step — deterministic across platforms.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for trial in 0..50 {
            let n = 1 + (next() % 200) as usize;
            let split = next() as usize % (n + 1);
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix magnitudes: small, medium, and full-range values.
                let v = match next() % 4 {
                    0 => next() % 16,
                    1 => next() % 4096,
                    2 => next() % 1_000_000,
                    _ => next(),
                };
                samples.push(v);
            }
            let mut left = Histogram::default();
            let mut right = Histogram::default();
            let mut concat = Histogram::default();
            for (i, &v) in samples.iter().enumerate() {
                if i < split {
                    left.observe(v);
                } else {
                    right.observe(v);
                }
                concat.observe(v);
            }
            left.merge(&right);
            assert_eq!(left, concat, "trial {trial}: merged != concatenated");
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for p in [0u64, 25, 50, 90, 95, 99, 100] {
                let est = left.percentile(p).unwrap();
                assert_eq!(est, concat.percentile(p).unwrap(), "trial {trial} p{p}");
                let rank = (p * n as u64).div_ceil(100).max(1) as usize;
                let truth = sorted[rank - 1];
                assert!(est >= truth, "trial {trial} p{p}: {est} < true {truth}");
                assert!(
                    est <= truth.saturating_mul(2).max(truth),
                    "trial {trial} p{p}: {est} > 2x true {truth}"
                );
            }
        }
    }

    #[test]
    fn percentile_never_exceeds_max() {
        let mut h = Histogram::default();
        for v in [0, 5, 9, 130, 70000] {
            h.observe(v);
        }
        for p in 0..=100 {
            assert!(h.percentile(p).unwrap() <= h.max());
        }
        assert_eq!(h.percentile(100), Some(70000));
    }

    #[test]
    fn counters_iterate_sorted() {
        let mut m = Metrics::default();
        m.add("z", 1);
        m.add("a", 2);
        m.add("z", 3);
        let got: Vec<_> = m.counters().collect();
        assert_eq!(got, vec![("a", 2), ("z", 4)]);
        assert_eq!(m.counter("z"), 4);
        assert_eq!(m.counter("missing"), 0);
    }
}
