//! A dependency-free profiler over recorded span/counter streams.
//!
//! Consumes either a live [`TraceData`] snapshot or a re-parsed JSONL
//! export (the two views of the same recording are guaranteed to produce
//! identical profiles) and produces deterministic per-kernel reports:
//!
//! * per-phase self cycles with their share of the run span;
//! * the top-N hottest phases ([`KernelProfile::hot_phases`]);
//! * a per-functional-unit stall table rebuilt from the
//!   `stall.<unit>.<bucket>` counters the kernels emit — six disjoint
//!   buckets (`busy`, `chain_wait`, `port_wait`, `stm_wait`,
//!   `scalar_wait`, `idle`) that must sum to the engine's cycle total
//!   ([`KernelProfile::check_conservation`]);
//! * a folded-stack text export ([`KernelProfile::folded_stacks`]) in
//!   the `frame;frame;frame count` format flamegraph tools consume,
//!   lexicographically sorted so identical recordings export identical
//!   bytes.
//!
//! Stall buckets live in *counters*, which the ring buffer never drops,
//! so the unit table and its conservation check stay exact even when the
//! event ring overflowed; only phase spans (events) degrade on a
//! truncated trace.

use crate::json::Json;
use crate::recorder::TraceData;

/// The six stall-cause buckets, in canonical order.
pub const STALL_BUCKETS: [&str; 6] = [
    "busy",
    "chain_wait",
    "port_wait",
    "stm_wait",
    "scalar_wait",
    "idle",
];

/// One functional unit's cycles split by cause, rebuilt from the
/// `stall.<unit>.<bucket>` counters of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitStalls {
    /// Unit name (`mem0`, `mem1`, ..., `alu`, `stm`).
    pub unit: String,
    /// Cycles doing useful, unconstrained work.
    pub busy: u64,
    /// Extra occupancy waiting for chained operands.
    pub chain_wait: u64,
    /// Cycles stalled behind another instruction's port/FU reservation.
    pub port_wait: u64,
    /// Cycles stalled waiting for the STM unit.
    pub stm_wait: u64,
    /// Cycles behind serialized scalar work / loop overhead.
    pub scalar_wait: u64,
    /// Cycles with nothing to do.
    pub idle: u64,
}

impl UnitStalls {
    /// Sum of all six buckets; equals the engine total on a conserving
    /// trace.
    pub fn total(&self) -> u64 {
        self.busy + self.chain_wait + self.port_wait + self.stm_wait + self.scalar_wait + self.idle
    }

    /// The bucket values in [`STALL_BUCKETS`] order.
    pub fn buckets(&self) -> [u64; 6] {
        [
            self.busy,
            self.chain_wait,
            self.port_wait,
            self.stm_wait,
            self.scalar_wait,
            self.idle,
        ]
    }

    fn set(&mut self, bucket: &str, value: u64) -> bool {
        match bucket {
            "busy" => self.busy = value,
            "chain_wait" => self.chain_wait = value,
            "port_wait" => self.port_wait = value,
            "stm_wait" => self.stm_wait = value,
            "scalar_wait" => self.scalar_wait = value,
            "idle" => self.idle = value,
            _ => return false,
        }
        true
    }
}

/// Display rank: memory ports first (by index), then `alu`, `stm`, then
/// anything else by name — matching the simulator's breakdown order.
fn unit_rank(unit: &str) -> (u8, u64, String) {
    if let Some(idx) = unit.strip_prefix("mem") {
        if let Ok(n) = idx.parse::<u64>() {
            return (0, n, String::new());
        }
    }
    match unit {
        "alu" => (1, 0, String::new()),
        "stm" => (2, 0, String::new()),
        other => (3, 0, other.to_string()),
    }
}

/// Deterministic profile of one kernel run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelProfile {
    /// Kernel identity (registry name, or `<matrix>.<kernel>` file stem).
    pub kernel: String,
    /// Engine cycle total (`stage.run.cycles` counter).
    pub cycles: u64,
    /// Phases in execution order as `(name, self cycles)`.
    pub phases: Vec<(String, u64)>,
    /// Per-unit stall rows in display order (mem ports, alu, stm).
    pub units: Vec<UnitStalls>,
    /// Events the ring dropped — phase rows may be incomplete when > 0.
    pub dropped: u64,
    /// Engine instructions issued (`engine.instructions` counter).
    pub instructions: u64,
    /// Elements processed (`engine.elements` counter).
    pub elements: u64,
}

fn build(
    kernel: &str,
    dropped: u64,
    phases: Vec<(String, u64)>,
    counters: &[(String, u64)],
) -> KernelProfile {
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let mut units: Vec<UnitStalls> = Vec::new();
    for (name, value) in counters {
        let Some(rest) = name.strip_prefix("stall.") else {
            continue;
        };
        let Some((unit, bucket)) = rest.rsplit_once('.') else {
            continue;
        };
        let row = match units.iter_mut().find(|u| u.unit == unit) {
            Some(row) => row,
            None => {
                units.push(UnitStalls {
                    unit: unit.to_string(),
                    ..UnitStalls::default()
                });
                units.last_mut().expect("just pushed")
            }
        };
        row.set(bucket, *value);
    }
    units.sort_by_key(|u| unit_rank(&u.unit));
    KernelProfile {
        kernel: kernel.to_string(),
        cycles: counter("stage.run.cycles"),
        phases,
        units,
        dropped,
        instructions: counter("engine.instructions"),
        elements: counter("engine.elements"),
    }
}

impl KernelProfile {
    /// Profile a live recording.
    pub fn from_trace(kernel: &str, data: &TraceData) -> KernelProfile {
        let phases = data
            .events
            .iter()
            .filter_map(|e| match e.kind {
                crate::event::EventKind::Complete { dur, .. }
                    if e.lane == crate::event::Lane::Phase =>
                {
                    Some((e.name.to_string(), dur))
                }
                _ => None,
            })
            .collect();
        build(kernel, data.dropped, phases, &data.counters)
    }

    /// Profile a JSONL export (the `tracecheck` input format). Produces
    /// exactly the same profile as [`KernelProfile::from_trace`] on the
    /// snapshot the export came from.
    ///
    /// A *final* line that fails to parse is tolerated as a torn tail
    /// (a writer killed mid-append — the crash scenario the flight
    /// recorder exists for); mid-file corruption is still an error.
    pub fn from_jsonl(kernel: &str, text: &str) -> Result<KernelProfile, String> {
        let mut dropped = 0u64;
        let mut phases: Vec<(String, u64)> = Vec::new();
        let mut counters: Vec<(String, u64)> = Vec::new();
        let lines: Vec<&str> = text.lines().collect();
        let last = lines.len().saturating_sub(1);
        for (idx, line) in lines.into_iter().enumerate() {
            if line.is_empty() {
                continue;
            }
            let v = match Json::parse(line) {
                Ok(v) => v,
                Err(_) if idx == last => break, // torn tail
                Err(e) => return Err(format!("line {}: {e}", idx + 1)),
            };
            match v.get("type").and_then(Json::as_str) {
                Some("meta") => {
                    dropped = v.get("dropped").and_then(Json::as_u64).unwrap_or(0);
                }
                Some("event") => {
                    if v.get("lane").and_then(Json::as_str) == Some("phase")
                        && v.get("kind").and_then(Json::as_str) == Some("complete")
                    {
                        let name = v
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or_else(|| format!("line {}: phase without name", idx + 1))?;
                        let dur = v
                            .get("dur")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| format!("line {}: phase without dur", idx + 1))?;
                        phases.push((name.to_string(), dur));
                    }
                }
                Some("counter") => {
                    let name = v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {}: counter without name", idx + 1))?;
                    let value = v
                        .get("value")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("line {}: counter without value", idx + 1))?;
                    counters.push((name.to_string(), value));
                }
                Some("histogram") => {}
                other => return Err(format!("line {}: unknown record type {other:?}", idx + 1)),
            }
        }
        Ok(build(kernel, dropped, phases, &counters))
    }

    /// The `n` hottest phases: descending self cycles, name-ordered
    /// within ties (deterministic).
    pub fn hot_phases(&self, n: usize) -> Vec<(String, u64)> {
        let mut hot = self.phases.clone();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        hot.truncate(n);
        hot
    }

    /// Folded-stack lines (`frame;frame count`), lexicographically
    /// sorted, zero-count frames omitted. Two stack families:
    /// `<kernel>;run;<phase>` for phase self-cycles and
    /// `<kernel>;fu;<unit>;<cause>` for the stall taxonomy.
    pub fn folded_stacks(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (name, cycles) in &self.phases {
            if *cycles > 0 {
                lines.push(format!("{};run;{name} {cycles}", self.kernel));
            }
        }
        for u in &self.units {
            for (bucket, value) in STALL_BUCKETS.iter().zip(u.buckets()) {
                if value > 0 {
                    lines.push(format!("{};fu;{};{bucket} {value}", self.kernel, u.unit));
                }
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Checks cycle conservation: every unit's six buckets must sum to
    /// the engine total, and (on a lossless trace) phase self-cycles
    /// must partition the run span.
    pub fn check_conservation(&self) -> Result<(), String> {
        for u in &self.units {
            if u.total() != self.cycles {
                return Err(format!(
                    "{}: unit {} buckets sum to {} but the engine ran {} cycles",
                    self.kernel,
                    u.unit,
                    u.total(),
                    self.cycles
                ));
            }
        }
        if self.dropped == 0 && !self.phases.is_empty() {
            let sum: u64 = self.phases.iter().map(|(_, c)| c).sum();
            if sum != self.cycles {
                return Err(format!(
                    "{}: phase cycles {} do not partition the {}-cycle run",
                    self.kernel, sum, self.cycles
                ));
            }
        }
        Ok(())
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn align(headers: &[&str], rows: &[Vec<String>], indent: &str) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt = |cells: &[String]| -> String {
        let joined = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ");
        format!("{indent}{joined}\n")
    };
    let mut out = fmt(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        out.push_str(&fmt(row));
    }
    out
}

/// A set of kernel profiles rendered together (one traced figure run).
#[derive(Debug, Clone, Default)]
pub struct ProfileSet {
    /// The profiles, in input order.
    pub kernels: Vec<KernelProfile>,
}

impl ProfileSet {
    /// Renders the human-readable report: per kernel, the top-`top`
    /// phases with their run share and the per-unit stall table with a
    /// busy-utilization column.
    pub fn render_table(&self, top: usize) -> String {
        let mut out = String::new();
        for k in &self.kernels {
            out.push_str(&format!(
                "{}: {} cycles, {} instructions, {} elements",
                k.kernel, k.cycles, k.instructions, k.elements
            ));
            if k.dropped > 0 {
                out.push_str(&format!(
                    "  [TRUNCATED: {} events dropped — phase rows incomplete]",
                    k.dropped
                ));
            }
            out.push('\n');
            let hot = k.hot_phases(top);
            if !hot.is_empty() {
                let rows: Vec<Vec<String>> = hot
                    .iter()
                    .map(|(name, cycles)| {
                        vec![
                            name.clone(),
                            cycles.to_string(),
                            format!("{:.2}", pct(*cycles, k.cycles)),
                        ]
                    })
                    .collect();
                out.push_str(&align(&["phase", "cycles", "run%"], &rows, "  "));
            }
            if !k.units.is_empty() {
                let rows: Vec<Vec<String>> = k
                    .units
                    .iter()
                    .map(|u| {
                        let mut row = vec![u.unit.clone()];
                        row.extend(u.buckets().iter().map(u64::to_string));
                        row.push(format!("{:.2}", pct(u.busy, k.cycles)));
                        row
                    })
                    .collect();
                out.push_str(&align(
                    &[
                        "unit",
                        "busy",
                        "chain_wait",
                        "port_wait",
                        "stm_wait",
                        "scalar_wait",
                        "idle",
                        "busy%",
                    ],
                    &rows,
                    "  ",
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable CSV: one `total` row, one `phase` row per phase
    /// and one `unit` row per functional unit, per kernel.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "kernel,kind,name,cycles,busy,chain_wait,port_wait,stm_wait,scalar_wait,idle\n",
        );
        for k in &self.kernels {
            out.push_str(&format!("{},total,run,{},,,,,,\n", k.kernel, k.cycles));
            for (name, cycles) in &k.phases {
                out.push_str(&format!("{},phase,{name},{cycles},,,,,,\n", k.kernel));
            }
            for u in &k.units {
                let b = u.buckets();
                out.push_str(&format!(
                    "{},unit,{},{},{},{},{},{},{},{}\n",
                    k.kernel,
                    u.unit,
                    u.total(),
                    b[0],
                    b[1],
                    b[2],
                    b[3],
                    b[4],
                    b[5]
                ));
            }
        }
        out
    }

    /// All kernels' folded stacks merged and lexicographically sorted —
    /// byte-identical for identical recordings regardless of input
    /// order.
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = self
            .kernels
            .iter()
            .flat_map(|k| {
                k.folded_stacks()
                    .lines()
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Conservation over every kernel; the first violation is returned.
    pub fn check_conservation(&self) -> Result<(), String> {
        for k in &self.kernels {
            k.check_conservation()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, Lane};
    use crate::export::to_jsonl;
    use crate::recorder::Recorder;

    /// A recording shaped like a kernel lifecycle: stage + phase spans
    /// plus a conserving stall-counter set for two units.
    fn kernel_like(cycles: u64) -> TraceData {
        let r = Recorder::enabled(256);
        let run = r.begin(Lane::Stage, Category::Stage, "run", 0);
        r.complete(Lane::Phase, Category::Phase, "histogram", 0, 40, 0);
        r.complete(Lane::Phase, Category::Phase, "scatter", 40, cycles - 40, 0);
        r.end(Lane::Stage, Category::Stage, "run", cycles, run);
        r.add("stage.run.cycles", cycles);
        r.add("engine.instructions", 12);
        r.add("engine.elements", 640);
        for (unit, busy) in [("mem0", 60u64), ("alu", 30)] {
            r.add(&format!("stall.{unit}.busy"), busy);
            r.add(&format!("stall.{unit}.chain_wait"), 5);
            r.add(&format!("stall.{unit}.port_wait"), 0);
            r.add(&format!("stall.{unit}.stm_wait"), 10);
            r.add(&format!("stall.{unit}.scalar_wait"), 0);
            r.add(&format!("stall.{unit}.idle"), cycles - busy - 15);
        }
        r.snapshot()
    }

    #[test]
    fn trace_and_jsonl_views_agree() {
        let data = kernel_like(100);
        let live = KernelProfile::from_trace("k", &data);
        let parsed = KernelProfile::from_jsonl("k", &to_jsonl(&data)).unwrap();
        assert_eq!(live, parsed);
        assert_eq!(live.cycles, 100);
        assert_eq!(live.instructions, 12);
        assert_eq!(live.elements, 640);
        assert_eq!(
            live.phases,
            vec![("histogram".to_string(), 40), ("scatter".to_string(), 60)]
        );
        assert!(live.check_conservation().is_ok());
    }

    #[test]
    fn units_come_back_in_display_order() {
        let r = Recorder::enabled(64);
        r.add("stage.run.cycles", 10);
        for unit in ["stm", "alu", "mem1", "mem0"] {
            r.add(&format!("stall.{unit}.busy"), 10);
            for b in &STALL_BUCKETS[1..] {
                r.add(&format!("stall.{unit}.{b}"), 0);
            }
        }
        let p = KernelProfile::from_trace("k", &r.snapshot());
        let order: Vec<&str> = p.units.iter().map(|u| u.unit.as_str()).collect();
        assert_eq!(order, vec!["mem0", "mem1", "alu", "stm"]);
        assert!(p.check_conservation().is_ok());
    }

    #[test]
    fn conservation_violation_names_the_unit() {
        let r = Recorder::enabled(64);
        r.add("stage.run.cycles", 100);
        r.add("stall.mem0.busy", 30); // other buckets absent => 0
        let p = KernelProfile::from_trace("k", &r.snapshot());
        let err = p.check_conservation().unwrap_err();
        assert!(err.contains("mem0"), "{err}");
        assert!(err.contains("100"), "{err}");
    }

    #[test]
    fn phase_mismatch_is_caught_on_lossless_traces_only() {
        let r = Recorder::enabled(64);
        r.complete(Lane::Phase, Category::Phase, "only", 0, 30, 0);
        r.add("stage.run.cycles", 100);
        let mut p = KernelProfile::from_trace("k", &r.snapshot());
        assert!(p.check_conservation().unwrap_err().contains("partition"));
        // The same profile on a truncated trace skips the phase check:
        // the ring may have dropped phase events, counters stay exact.
        p.dropped = 3;
        assert!(p.check_conservation().is_ok());
    }

    #[test]
    fn hot_phases_order_and_truncate() {
        let p = KernelProfile {
            phases: vec![
                ("a".to_string(), 10),
                ("b".to_string(), 30),
                ("c".to_string(), 30),
                ("d".to_string(), 5),
            ],
            ..KernelProfile::default()
        };
        assert_eq!(
            p.hot_phases(3),
            vec![
                ("b".to_string(), 30),
                ("c".to_string(), 30),
                ("a".to_string(), 10)
            ]
        );
    }

    #[test]
    fn folded_stacks_are_sorted_and_deterministic() {
        let data = kernel_like(100);
        let p = KernelProfile::from_trace("k", &data);
        let folded = p.folded_stacks();
        assert_eq!(
            folded,
            KernelProfile::from_trace("k", &data).folded_stacks()
        );
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert!(lines.contains(&"k;run;histogram 40"));
        assert!(lines.contains(&"k;fu;mem0;busy 60"));
        // Zero buckets are omitted.
        assert!(!folded.contains("port_wait"));
        assert!(folded.ends_with('\n'));
    }

    #[test]
    fn set_renders_table_csv_and_merged_folded() {
        let set = ProfileSet {
            kernels: vec![
                KernelProfile::from_trace("m.b", &kernel_like(100)),
                KernelProfile::from_trace("m.a", &kernel_like(100)),
            ],
        };
        assert!(set.check_conservation().is_ok());
        let table = set.render_table(10);
        assert!(table.contains("m.a: 100 cycles"));
        assert!(table.contains("busy%"));
        let csv = set.to_csv();
        assert!(csv.starts_with("kernel,kind,name,cycles"));
        assert!(csv.contains("m.a,unit,mem0,100,60,5,0,10,0,25"));
        assert!(csv.contains("m.b,phase,scatter,60"));
        // Merged folded output is globally sorted: m.a lines precede m.b
        // even though m.b was profiled first.
        let folded = set.folded();
        let first_a = folded.find("m.a;").unwrap();
        let first_b = folded.find("m.b;").unwrap();
        assert!(first_a < first_b);
    }

    #[test]
    fn torn_tail_is_tolerated_only_at_the_end() {
        let data = kernel_like(100);
        let mut text = to_jsonl(&data);
        text.push_str("{\"type\":\"counter\",\"name\":\"x"); // killed mid-append
        let p = KernelProfile::from_jsonl("k", &text).unwrap();
        assert_eq!(p.cycles, 100);
        assert!(p.check_conservation().is_ok());
        // The same corruption mid-file is still an error.
        let broken = text.replacen("\"type\":\"meta\"", "\"type\":", 1);
        assert!(KernelProfile::from_jsonl("k", &broken).is_err());
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let p = KernelProfile::from_trace("k", &Recorder::enabled(16).snapshot());
        assert_eq!(p.cycles, 0);
        assert!(p.phases.is_empty() && p.units.is_empty());
        assert!(p.check_conservation().is_ok());
        assert_eq!(p.folded_stacks(), "");
    }
}
